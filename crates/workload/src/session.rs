//! Multi-query session workloads with skewed condition reuse.
//!
//! An answer cache only pays off when queries *repeat* conditions, so the
//! cache experiments need a workload model of a client session: a stream
//! of fusion queries drawn from a fixed pool with Zipf-skewed popularity
//! (a few favorite queries asked over and over, a long tail asked
//! rarely), interleaved with occasional source updates that invalidate
//! cached answers. Like [`crate::synth`], everything is a pure function
//! of the spec — same spec, same session, bit for bit.

use fusion_core::query::FusionQuery;
use fusion_stats::SplitMix64;
use fusion_types::SourceId;

use crate::synth::{synth_query, NUM_ATTRS};

/// Parameters of a session workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Conditions per query (1..=[`NUM_ATTRS`]).
    pub m: usize,
    /// Sources the scenario has (update events pick among these).
    pub n_sources: usize,
    /// Distinct queries in the pool.
    pub pool: usize,
    /// Query events in the session.
    pub n_queries: usize,
    /// Zipf exponent of the pool's popularity distribution: `0.0` is
    /// uniform, larger is more skewed toward the pool's first queries.
    pub skew: f64,
    /// Probability that a source update precedes a query event.
    pub update_rate: f64,
    /// Selectivity range the pool's conditions are drawn from.
    pub sel_range: (f64, f64),
    /// Master seed.
    pub seed: u64,
}

impl SessionSpec {
    /// A default session over `n_sources` sources: 2-condition queries,
    /// a pool of 8, 40 query events, skew 1.2, no updates.
    pub fn default_with(n_sources: usize, seed: u64) -> SessionSpec {
        SessionSpec {
            m: 2,
            n_sources,
            pool: 8,
            n_queries: 40,
            skew: 1.2,
            update_rate: 0.0,
            sel_range: (0.05, 0.4),
            seed,
        }
    }
}

/// One step of a session.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// The client asks a query from the pool.
    Query {
        /// Index into [`Session::pool`] (for reuse bookkeeping).
        index: usize,
        /// The query itself.
        query: FusionQuery,
    },
    /// A source's data changes: caches must invalidate its entries.
    Update {
        /// The updated source.
        source: SourceId,
    },
}

/// A generated session: the query pool and the event stream.
#[derive(Debug, Clone)]
pub struct Session {
    /// The distinct queries events draw from, in popularity order
    /// (index 0 is the most popular under the Zipf draw).
    pub pool: Vec<FusionQuery>,
    /// The per-query selectivity vectors behind [`Session::pool`]
    /// (`sels[k][i]` is pool query `k`'s condition-`i` selectivity).
    pub sels: Vec<Vec<f64>>,
    /// The event stream, in order.
    pub events: Vec<SessionEvent>,
}

impl Session {
    /// Query events in the session.
    pub fn n_queries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Query { .. }))
            .count()
    }

    /// Update events in the session.
    pub fn n_updates(&self) -> usize {
        self.events.len() - self.n_queries()
    }

    /// A compact fingerprint of the event stream: pool index for a
    /// query event, `-(source + 1)` for an update event. Two sessions
    /// with equal fingerprints over the same spec are identical.
    pub fn fingerprint(&self) -> Vec<i64> {
        self.events
            .iter()
            .map(|e| match e {
                SessionEvent::Query { index, .. } => *index as i64,
                SessionEvent::Update { source } => -((source.0 as i64) + 1),
            })
            .collect()
    }
}

/// Generates the session a spec describes. Deterministic: the stream is
/// a pure function of the spec.
///
/// # Panics
/// Panics if `m` is outside `1..=`[`NUM_ATTRS`], the pool is empty,
/// `n_sources` is zero with a positive update rate, or the selectivity
/// range is inverted.
pub fn generate_session(spec: &SessionSpec) -> Session {
    generate_session_for_tenant(spec, 0)
}

/// The per-tenant variant of [`generate_session`]: every tenant of a
/// spec shares the **same query pool** (drawn from `spec.seed` alone, so
/// cross-tenant cache sharing is possible), but draws its **own event
/// stream** from a tenant-salted stream — tenant 0 is exactly
/// [`generate_session`]. Tenants that must not overlap at all (isolation
/// tests) should vary `spec.seed` instead.
///
/// # Panics
/// As [`generate_session`].
pub fn generate_session_for_tenant(spec: &SessionSpec, tenant: u64) -> Session {
    assert!(
        (1..=NUM_ATTRS).contains(&spec.m),
        "m must be in 1..={NUM_ATTRS}"
    );
    assert!(spec.pool >= 1, "pool must be non-empty");
    assert!(
        spec.update_rate == 0.0 || spec.n_sources >= 1,
        "updates need at least one source"
    );
    let (lo, hi) = spec.sel_range;
    assert!(lo <= hi, "selectivity range is inverted");
    let mut rng = SplitMix64::new(spec.seed);

    // The pool: `pool` independent selectivity vectors.
    let sels: Vec<Vec<f64>> = (0..spec.pool)
        .map(|_| (0..spec.m).map(|_| rng.next_f64_range(lo, hi)).collect())
        .collect();
    let pool: Vec<FusionQuery> = sels.iter().map(|s| synth_query(s)).collect();

    // Tenant 0 continues the pool's stream (bit-compatible with the
    // original single-tenant generator); other tenants re-seed with a
    // tenant-salted key so their streams are independent draws over the
    // same pool.
    if tenant != 0 {
        rng = SplitMix64::new(spec.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tenant));
    }

    // Zipf CDF over pool ranks: weight(k) ∝ 1 / (k+1)^skew.
    let weights: Vec<f64> = (0..spec.pool)
        .map(|k| 1.0 / ((k + 1) as f64).powf(spec.skew))
        .collect();
    let total: f64 = weights.iter().sum();

    let mut events = Vec::with_capacity(spec.n_queries);
    for _ in 0..spec.n_queries {
        if spec.update_rate > 0.0 && rng.next_f64() < spec.update_rate {
            let source = SourceId(rng.next_below(spec.n_sources));
            events.push(SessionEvent::Update { source });
        }
        let mut u = rng.next_f64() * total;
        let mut index = spec.pool - 1;
        for (k, w) in weights.iter().enumerate() {
            if u < *w {
                index = k;
                break;
            }
            u -= w;
        }
        events.push(SessionEvent::Query {
            index,
            query: pool[index].clone(),
        });
    }
    Session { pool, sels, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(session: &Session, pool: usize) -> Vec<usize> {
        let mut c = vec![0usize; pool];
        for e in &session.events {
            if let SessionEvent::Query { index, .. } = e {
                c[*index] += 1;
            }
        }
        c
    }

    #[test]
    fn same_seed_same_session() {
        let spec = SessionSpec {
            update_rate: 0.2,
            ..SessionSpec::default_with(4, 7)
        };
        let a = generate_session(&spec);
        let b = generate_session(&spec);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.sels, b.sels);
        let other = SessionSpec { seed: 8, ..spec };
        assert_ne!(generate_session(&other).fingerprint(), a.fingerprint());
    }

    #[test]
    fn zipf_skew_prefers_low_ranks() {
        let spec = SessionSpec {
            n_queries: 400,
            skew: 1.5,
            ..SessionSpec::default_with(4, 3)
        };
        let s = generate_session(&spec);
        let c = counts(&s, spec.pool);
        // Rank 0 dominates the tail decisively at skew 1.5.
        assert!(c[0] > c[spec.pool - 1] * 2, "{c:?}");
        assert_eq!(c.iter().sum::<usize>(), 400);
        assert_eq!(s.n_queries(), 400);
        assert_eq!(s.n_updates(), 0);
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let spec = SessionSpec {
            n_queries: 800,
            skew: 0.0,
            pool: 4,
            ..SessionSpec::default_with(4, 11)
        };
        let c = counts(&generate_session(&spec), 4);
        for &n in &c {
            assert!((120..=280).contains(&n), "{c:?}");
        }
    }

    #[test]
    fn update_rate_injects_updates_in_range() {
        let spec = SessionSpec {
            n_queries: 300,
            update_rate: 0.3,
            ..SessionSpec::default_with(5, 13)
        };
        let s = generate_session(&spec);
        let updates = s.n_updates();
        assert!((40..=150).contains(&updates), "{updates}");
        for e in &s.events {
            if let SessionEvent::Update { source } = e {
                assert!(source.0 < 5);
            }
        }
    }

    #[test]
    fn tenant_zero_matches_single_tenant_generator() {
        let spec = SessionSpec {
            update_rate: 0.2,
            ..SessionSpec::default_with(4, 99)
        };
        let single = generate_session(&spec);
        let t0 = generate_session_for_tenant(&spec, 0);
        assert_eq!(single.fingerprint(), t0.fingerprint());
        assert_eq!(single.sels, t0.sels);
    }

    #[test]
    fn tenants_share_the_pool_but_not_the_stream() {
        let spec = SessionSpec {
            n_queries: 60,
            update_rate: 0.1,
            ..SessionSpec::default_with(4, 17)
        };
        let a = generate_session_for_tenant(&spec, 1);
        let b = generate_session_for_tenant(&spec, 2);
        // Same pool, bit for bit: cross-tenant reuse is possible.
        assert_eq!(a.sels, b.sels);
        // Independent event streams.
        assert_ne!(a.fingerprint(), b.fingerprint());
        // And each tenant is itself deterministic.
        let a2 = generate_session_for_tenant(&spec, 1);
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn pool_queries_are_well_formed() {
        let spec = SessionSpec::default_with(3, 21);
        let s = generate_session(&spec);
        assert_eq!(s.pool.len(), spec.pool);
        assert_eq!(s.sels.len(), spec.pool);
        for (q, sels) in s.pool.iter().zip(&s.sels) {
            assert_eq!(q.m(), spec.m);
            assert_eq!(sels.len(), spec.m);
            for &sel in sels {
                assert!((0.05..=0.4).contains(&sel));
            }
        }
    }
}
