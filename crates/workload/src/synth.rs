//! Parameterized synthetic populations — the experiment workhorse.
//!
//! A synthetic population models `n` autonomous sources over a shared
//! universe of items (entities). Each source holds a random subset of the
//! universe with independently drawn attribute values, so conditions on
//! distinct attributes are independent — the regime where the paper's
//! optimality theorem applies — while conditions on the same attribute
//! correlate.

use crate::scenario::Scenario;
use fusion_core::query::FusionQuery;
use fusion_net::{Link, LinkProfile, Network};
use fusion_source::{Capabilities, InMemoryWrapper, ProcessingProfile, SourceSet};
use fusion_stats::SplitMix64;
use fusion_types::{
    Attribute, CmpOp, Condition, Predicate, Relation, Schema, Tuple, Value, ValueType,
};

/// Number of independent numeric attributes in the synthetic schema
/// (bounding the number of mutually independent conditions).
pub const NUM_ATTRS: usize = 8;

/// Range of each numeric attribute: uniform in `0..ATTR_RANGE`.
pub const ATTR_RANGE: i64 = 10_000;

/// How source capabilities are assigned across the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapabilityMix {
    /// Every source supports native semijoins and full loads.
    AllFull,
    /// The first `frac` of sources lack native semijoins and emulate with
    /// the given binding batch size (§2.3).
    FractionEmulated {
        /// Fraction of sources without native semijoin, in `[0, 1]`.
        frac: f64,
        /// Bindings per emulated probe.
        batch: usize,
    },
}

/// Specification of a synthetic population.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Number of sources `n`.
    pub n_sources: usize,
    /// Universe of distinct items.
    pub domain_size: usize,
    /// Tuples per source (each a distinct item of the universe).
    pub rows_per_source: usize,
    /// RNG seed.
    pub seed: u64,
    /// Capability assignment.
    pub capability_mix: CapabilityMix,
    /// Link profile for every source (`None` → a deterministic mix of all
    /// profiles).
    pub link: Option<LinkProfile>,
    /// Source-side processing profile.
    pub processing: ProcessingProfile,
}

impl SynthSpec {
    /// A reasonable default population: `n` WAN sources, fully capable,
    /// 10k-item universe, 2k rows each.
    pub fn default_with(n_sources: usize, seed: u64) -> SynthSpec {
        SynthSpec {
            n_sources,
            domain_size: 10_000,
            rows_per_source: 2_000,
            seed,
            capability_mix: CapabilityMix::AllFull,
            link: Some(LinkProfile::Wan),
            processing: ProcessingProfile::indexed_db(),
        }
    }
}

/// The synthetic schema: merge attribute `M` plus [`NUM_ATTRS`] numeric
/// attributes `A1..A8`.
pub fn synth_schema() -> Schema {
    let mut attrs = vec![Attribute::new("M", ValueType::Str)];
    for k in 1..=NUM_ATTRS {
        attrs.push(Attribute::new(format!("A{k}"), ValueType::Int));
    }
    Schema::new(attrs, "M").expect("static schema is valid")
}

/// Builds a condition with the given target selectivity on attribute
/// `A{attr_no}` (1-based): `A{attr_no} < ⌈sel · range⌉`.
pub fn condition_with_selectivity(attr_no: usize, sel: f64) -> Condition {
    assert!((1..=NUM_ATTRS).contains(&attr_no), "attr out of range");
    let threshold = ((sel.clamp(0.0, 1.0)) * ATTR_RANGE as f64).round() as i64;
    Predicate::cmp(format!("A{attr_no}"), CmpOp::Lt, threshold).into()
}

/// Builds a fusion query with `m ≤ 8` mutually independent conditions of
/// the given selectivities (condition `i` targets attribute `A{i+1}`).
pub fn synth_query(selectivities: &[f64]) -> FusionQuery {
    assert!(
        (1..=NUM_ATTRS).contains(&selectivities.len()),
        "need 1..={NUM_ATTRS} conditions"
    );
    let conditions = selectivities
        .iter()
        .enumerate()
        .map(|(i, &s)| condition_with_selectivity(i + 1, s))
        .collect();
    FusionQuery::new(synth_schema(), conditions).expect("generated query is valid")
}

/// Generates the source relations of a population.
pub fn synth_relations(spec: &SynthSpec) -> Vec<Relation> {
    let schema = synth_schema();
    let mut rng = SplitMix64::new(spec.seed);
    (0..spec.n_sources)
        .map(|_| {
            // Each source holds a random subset of the universe, chosen by
            // a partial Fisher–Yates over item ids.
            let rows = spec.rows_per_source.min(spec.domain_size);
            let mut ids: Vec<usize> = (0..spec.domain_size).collect();
            for i in 0..rows {
                let j = rng.next_range(i, spec.domain_size);
                ids.swap(i, j);
            }
            let tuples: Vec<Tuple> = ids[..rows]
                .iter()
                .map(|&item| {
                    let mut values = Vec::with_capacity(1 + NUM_ATTRS);
                    values.push(Value::Str(format!("E{item:07}")));
                    for _ in 0..NUM_ATTRS {
                        values.push(Value::Int(rng.next_i64_range(0, ATTR_RANGE)));
                    }
                    Tuple::new(values)
                })
                .collect();
            Relation::from_rows(schema.clone(), tuples)
        })
        .collect()
}

/// Capabilities of source `j` of `n` under a mix.
pub fn capabilities_for(mix: CapabilityMix, j: usize, n: usize) -> Capabilities {
    match mix {
        CapabilityMix::AllFull => Capabilities::full(),
        CapabilityMix::FractionEmulated { frac, batch } => {
            let cutoff = (frac.clamp(0.0, 1.0) * n as f64).round() as usize;
            if j < cutoff {
                Capabilities::emulated(batch)
            } else {
                Capabilities::full()
            }
        }
    }
}

/// The link of source `j` under a spec.
fn link_for(spec: &SynthSpec, j: usize) -> Link {
    match spec.link {
        Some(p) => p.link(),
        None => {
            let all = LinkProfile::all();
            all[j % all.len()].link()
        }
    }
}

/// Builds the complete scenario for a spec and query selectivities.
pub fn synth_scenario(spec: &SynthSpec, selectivities: &[f64]) -> Scenario {
    let relations = synth_relations(spec);
    let n = spec.n_sources;
    let sources = SourceSet::new(
        relations
            .iter()
            .enumerate()
            .map(|(j, r)| {
                Box::new(InMemoryWrapper::new(
                    format!("S{}", j + 1),
                    r.clone(),
                    capabilities_for(spec.capability_mix, j, n),
                    spec.processing,
                    spec.seed.wrapping_add(j as u64),
                )) as Box<dyn fusion_source::Wrapper>
            })
            .collect(),
    );
    let network = Network::new((0..n).map(|j| link_for(spec, j)).collect());
    Scenario::new(
        format!("synth-n{}-m{}", n, selectivities.len()),
        synth_query(selectivities),
        relations,
        sources,
        network,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_match_spec_and_are_deterministic() {
        let spec = SynthSpec {
            n_sources: 3,
            domain_size: 500,
            rows_per_source: 100,
            seed: 5,
            capability_mix: CapabilityMix::AllFull,
            link: Some(LinkProfile::Wan),
            processing: ProcessingProfile::free(),
        };
        let a = synth_relations(&spec);
        let b = synth_relations(&spec);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), 100);
            assert_eq!(x.rows(), y.rows());
        }
        // Items within a source are distinct.
        assert_eq!(a[0].distinct_items().len(), 100);
    }

    #[test]
    fn conditions_hit_their_target_selectivity() {
        let spec = SynthSpec::default_with(1, 9);
        let rels = synth_relations(&spec);
        for target in [0.05, 0.3, 0.7] {
            let cond = condition_with_selectivity(1, target);
            let got =
                rels[0].select_items(&cond).unwrap().items.len() as f64 / rels[0].len() as f64;
            assert!((got - target).abs() < 0.05, "target {target}, got {got}");
        }
    }

    #[test]
    fn conditions_on_distinct_attributes_are_independent() {
        let spec = SynthSpec::default_with(1, 13);
        let rels = synth_relations(&spec);
        let c1 = condition_with_selectivity(1, 0.5);
        let c2 = condition_with_selectivity(2, 0.5);
        let both: Condition = Predicate::And(vec![c1.pred.clone(), c2.pred.clone()]).into();
        let p12 = rels[0].select_items(&both).unwrap().items.len() as f64 / rels[0].len() as f64;
        assert!((p12 - 0.25).abs() < 0.05, "joint {p12} ≉ 0.25");
    }

    #[test]
    fn capability_mix_assignment() {
        let mix = CapabilityMix::FractionEmulated {
            frac: 0.5,
            batch: 10,
        };
        let caps: Vec<bool> = (0..4)
            .map(|j| capabilities_for(mix, j, 4).native_semijoin)
            .collect();
        assert_eq!(caps, vec![false, false, true, true]);
        assert!(capabilities_for(CapabilityMix::AllFull, 0, 4).native_semijoin);
    }

    #[test]
    fn scenario_builds_and_answers() {
        let spec = SynthSpec {
            n_sources: 4,
            domain_size: 300,
            rows_per_source: 150,
            seed: 21,
            capability_mix: CapabilityMix::AllFull,
            link: None,
            processing: ProcessingProfile::free(),
        };
        let sc = synth_scenario(&spec, &[0.4, 0.4]);
        assert_eq!(sc.n(), 4);
        assert_eq!(sc.m(), 2);
        let truth = sc.ground_truth().unwrap();
        // With 4 sources × 150 rows over 300 items and 40% selectivities,
        // matches are all but guaranteed.
        assert!(!truth.is_empty());
        assert!(sc.domain_size <= 300.0);
    }

    #[test]
    #[should_panic(expected = "attr out of range")]
    fn condition_attr_bounds() {
        let _ = condition_with_selectivity(9, 0.5);
    }
}
