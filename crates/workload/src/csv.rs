//! A small CSV reader for loading user data into source relations.
//!
//! Supports the common subset: a header row naming the schema attributes
//! (any order, case-insensitive), double-quoted fields with `""` escapes,
//! and per-attribute typed parsing. Empty fields become SQL `NULL`.

use fusion_types::error::{FusionError, Result};
use fusion_types::{Relation, Schema, Tuple, Value, ValueType};

/// Parses CSV text into a relation over `schema`.
///
/// # Errors
/// Fails on malformed quoting, unknown or missing header columns, wrong
/// field counts, and values that do not parse as the attribute's type.
pub fn parse_csv(text: &str, schema: &Schema) -> Result<Relation> {
    let mut records = split_records(text)?;
    if records.is_empty() {
        return Err(FusionError::parse("CSV input has no header row"));
    }
    let header = records.remove(0);
    // Map each CSV column to a schema attribute index.
    let mut col_to_attr = Vec::with_capacity(header.len());
    for name in &header {
        let idx = schema
            .attributes()
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name.trim()))
            .ok_or_else(|| FusionError::parse(format!("unknown CSV column `{name}`")))?;
        col_to_attr.push(idx);
    }
    for attr_idx in 0..schema.arity() {
        if !col_to_attr.contains(&attr_idx) {
            return Err(FusionError::parse(format!(
                "CSV is missing column `{}`",
                schema.attribute(attr_idx).name
            )));
        }
    }
    let mut rows = Vec::with_capacity(records.len());
    for (lineno, record) in records.into_iter().enumerate() {
        if record.len() != header.len() {
            return Err(FusionError::parse(format!(
                "row {} has {} fields, expected {}",
                lineno + 2,
                record.len(),
                header.len()
            )));
        }
        let mut values = vec![Value::Null; schema.arity()];
        for (field, &attr_idx) in record.iter().zip(&col_to_attr) {
            values[attr_idx] = parse_value(field, schema.attribute(attr_idx).ty, lineno + 2)?;
        }
        rows.push(Tuple::new(values));
    }
    Ok(Relation::from_rows(schema.clone(), rows))
}

/// Reads and parses a CSV file.
///
/// # Errors
/// Propagates I/O failures (as execution errors) and parse failures.
pub fn load_csv(path: &std::path::Path, schema: &Schema) -> Result<Relation> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| FusionError::execution(format!("cannot read {}: {e}", path.display())))?;
    parse_csv(&text, schema)
}

/// Renders a relation as CSV text (header row in schema order, quoted
/// fields where needed, `NULL`s as empty fields). Inverse of
/// [`parse_csv`] up to float formatting.
pub fn to_csv(relation: &Relation) -> String {
    let schema = relation.schema();
    let mut out = String::new();
    let header: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in relation.rows() {
        for (i, v) in row.values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&csv_field(v));
        }
        out.push('\n');
    }
    out
}

fn csv_field(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') || s.contains('\n') || s.trim() != s {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
    }
}

fn parse_value(field: &str, ty: ValueType, lineno: usize) -> Result<Value> {
    let f = field.trim();
    if f.is_empty() {
        return Ok(Value::Null);
    }
    let err = |detail: String| FusionError::Parse {
        detail,
        offset: None,
    };
    match ty {
        ValueType::Int => f
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(format!("row {lineno}: `{f}` is not an integer"))),
        ValueType::Float => f
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("row {lineno}: `{f}` is not a number"))),
        ValueType::Bool => match f.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
            _ => Err(err(format!("row {lineno}: `{f}` is not a boolean"))),
        },
        ValueType::Str | ValueType::Null => Ok(Value::Str(f.to_string())),
    }
}

/// Splits CSV text into records of fields, honoring quotes.
fn split_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if field.trim().is_empty() {
                    field.clear();
                    in_quotes = true;
                } else {
                    return Err(FusionError::parse("quote inside unquoted CSV field"));
                }
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {}
            '\n' => {
                record.push(std::mem::take(&mut field));
                if !(record.len() == 1 && record[0].trim().is_empty()) {
                    records.push(std::mem::take(&mut record));
                } else {
                    record.clear();
                }
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(FusionError::parse("unterminated quoted CSV field"));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        if !(record.len() == 1 && record[0].trim().is_empty()) {
            records.push(record);
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::schema::dmv_schema;

    #[test]
    fn parses_typed_rows() {
        let rel = parse_csv("L,V,D\nJ55,dui,1993\nT21,sp,1994\n", &dmv_schema()).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0].get(2), &Value::Int(1993));
        assert_eq!(rel.rows()[1].get(0), &Value::str("T21"));
    }

    #[test]
    fn header_order_is_flexible() {
        let rel = parse_csv("D,L,V\n1993,J55,dui\n", &dmv_schema()).unwrap();
        assert_eq!(rel.rows()[0].get(0), &Value::str("J55"));
        assert_eq!(rel.rows()[0].get(2), &Value::Int(1993));
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let rel = parse_csv("L,V,D\n\"J,55\",\"say \"\"hi\"\"\",1990\n", &dmv_schema()).unwrap();
        assert_eq!(rel.rows()[0].get(0), &Value::str("J,55"));
        assert_eq!(rel.rows()[0].get(1), &Value::str("say \"hi\""));
    }

    #[test]
    fn empty_fields_are_null() {
        let rel = parse_csv("L,V,D\nJ55,,\n", &dmv_schema()).unwrap();
        assert_eq!(rel.rows()[0].get(1), &Value::Null);
        assert_eq!(rel.rows()[0].get(2), &Value::Null);
    }

    #[test]
    fn errors_are_descriptive() {
        let bad_col = parse_csv("L,V,Z\nJ55,dui,1\n", &dmv_schema()).unwrap_err();
        assert!(
            bad_col.to_string().contains("unknown CSV column"),
            "{bad_col}"
        );
        let missing = parse_csv("L,V\nJ55,dui\n", &dmv_schema()).unwrap_err();
        assert!(missing.to_string().contains("missing column"), "{missing}");
        let bad_int = parse_csv("L,V,D\nJ55,dui,abc\n", &dmv_schema()).unwrap_err();
        assert!(bad_int.to_string().contains("not an integer"), "{bad_int}");
        let bad_width = parse_csv("L,V,D\nJ55,dui\n", &dmv_schema()).unwrap_err();
        assert!(bad_width.to_string().contains("fields"), "{bad_width}");
        let unterminated = parse_csv("L,V,D\n\"J55,dui,1\n", &dmv_schema()).unwrap_err();
        assert!(
            unterminated.to_string().contains("unterminated"),
            "{unterminated}"
        );
    }

    #[test]
    fn windows_line_endings_and_no_trailing_newline() {
        let rel = parse_csv("L,V,D\r\nJ55,dui,1993\r\nT21,sp,1994", &dmv_schema()).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn round_trip_through_text() {
        let rel = parse_csv(
            "L,V,D\n\"J,55\",dui,1993\nT21,,1994\n\"a\"\"b\",sp,\n",
            &dmv_schema(),
        )
        .unwrap();
        let text = to_csv(&rel);
        let back = parse_csv(&text, &dmv_schema()).unwrap();
        assert_eq!(rel.rows(), back.rows());
    }

    #[test]
    fn blank_lines_skipped_and_empty_input_rejected() {
        let rel = parse_csv("L,V,D\n\nJ55,dui,1993\n\n", &dmv_schema()).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(parse_csv("", &dmv_schema()).is_err());
    }
}
