//! The paper's running DMV example (Figure 1) and a scaled-up variant.

use crate::scenario::Scenario;
use fusion_core::query::FusionQuery;
use fusion_net::{LinkProfile, Network};
use fusion_source::{Capabilities, InMemoryWrapper, ProcessingProfile, SourceSet};
use fusion_stats::SplitMix64;
use fusion_types::schema::dmv_schema;
use fusion_types::{tuple, Predicate, Relation, Tuple};

/// The three relations of Figure 1, exactly as printed.
pub fn figure1_relations() -> Vec<Relation> {
    let s = dmv_schema();
    vec![
        Relation::from_rows(
            s.clone(),
            vec![
                tuple!["J55", "dui", 1993i64],
                tuple!["T21", "sp", 1994i64],
                tuple!["T80", "dui", 1993i64],
            ],
        ),
        Relation::from_rows(
            s.clone(),
            vec![
                tuple!["T21", "dui", 1996i64],
                tuple!["J55", "sp", 1996i64],
                tuple!["T11", "sp", 1993i64],
            ],
        ),
        Relation::from_rows(
            s,
            vec![
                tuple!["T21", "sp", 1993i64],
                tuple!["S07", "sp", 1996i64],
                tuple!["S07", "sp", 1993i64],
            ],
        ),
    ]
}

/// The paper's fusion query: drivers with both a `dui` and an `sp`
/// violation, possibly recorded at different DMVs.
pub fn figure1_query() -> FusionQuery {
    FusionQuery::new(
        dmv_schema(),
        vec![
            Predicate::eq("V", "dui").into(),
            Predicate::eq("V", "sp").into(),
        ],
    )
    .expect("static query is valid")
}

/// The complete Figure 1 scenario: three fully capable DMV sources on WAN
/// links.
pub fn figure1_scenario() -> Scenario {
    let relations = figure1_relations();
    let sources = SourceSet::new(
        relations
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Box::new(InMemoryWrapper::new(
                    format!("DMV-{}", i + 1),
                    r.clone(),
                    Capabilities::full(),
                    ProcessingProfile::indexed_db(),
                    i as u64,
                )) as Box<dyn fusion_source::Wrapper>
            })
            .collect(),
    );
    let network = Network::uniform(relations.len(), LinkProfile::Wan.link());
    Scenario::new("dmv-figure1", figure1_query(), relations, sources, network)
}

/// Violation codes used by the scaled generator, roughly ordered by
/// frequency.
pub const VIOLATIONS: [&str; 6] = ["sp", "park", "signal", "dui", "reckless", "hit-and-run"];

/// A scaled DMV population: `n_states` sources, `drivers` distinct
/// licenses, `rows_per_state` violation records per state, deterministic
/// under `seed`. Violations are skewed: earlier codes in [`VIOLATIONS`]
/// are more frequent.
pub fn scaled_dmv_relations(
    n_states: usize,
    drivers: usize,
    rows_per_state: usize,
    seed: u64,
) -> Vec<Relation> {
    let schema = dmv_schema();
    let mut rng = SplitMix64::new(seed);
    // Zipf-ish weights 1/k.
    let weights: Vec<f64> = (1..=VIOLATIONS.len()).map(|k| 1.0 / k as f64).collect();
    let total_w: f64 = weights.iter().sum();
    (0..n_states)
        .map(|_| {
            let rows: Vec<Tuple> = (0..rows_per_state)
                .map(|_| {
                    let d = rng.next_below(drivers);
                    let mut pick = rng.next_f64_range(0.0, total_w);
                    let mut v = VIOLATIONS[0];
                    for (k, w) in weights.iter().enumerate() {
                        if pick < *w {
                            v = VIOLATIONS[k];
                            break;
                        }
                        pick -= w;
                    }
                    let year = rng.next_i64_range(1985, 2000);
                    tuple![format!("L{d:06}"), v, year]
                })
                .collect();
            Relation::from_rows(schema.clone(), rows)
        })
        .collect()
}

/// A scaled DMV scenario: the Figure 1 query over a larger population,
/// with a mix of link profiles.
pub fn scaled_dmv_scenario(
    n_states: usize,
    drivers: usize,
    rows_per_state: usize,
    seed: u64,
) -> Scenario {
    let relations = scaled_dmv_relations(n_states, drivers, rows_per_state, seed);
    let mut rng = SplitMix64::new(seed.wrapping_add(1));
    let profiles = LinkProfile::all();
    let links = (0..n_states)
        .map(|_| rng.choose(&profiles).link())
        .collect();
    let sources = SourceSet::new(
        relations
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Box::new(InMemoryWrapper::new(
                    format!("DMV-{}", i + 1),
                    r.clone(),
                    Capabilities::full(),
                    ProcessingProfile::indexed_db(),
                    seed.wrapping_add(i as u64),
                )) as Box<dyn fusion_source::Wrapper>
            })
            .collect(),
    );
    Scenario::new(
        format!("dmv-scaled-{n_states}x{rows_per_state}"),
        figure1_query(),
        relations,
        sources,
        Network::new(links),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::ItemSet;

    #[test]
    fn figure1_answer() {
        let s = figure1_scenario();
        assert_eq!(
            s.ground_truth().unwrap(),
            ItemSet::from_items(["J55", "T21"])
        );
        assert_eq!(s.n(), 3);
        assert_eq!(s.m(), 2);
        assert_eq!(s.domain_size, 5.0, "J55, T21, T80, T11, S07");
    }

    #[test]
    fn scaled_population_is_deterministic() {
        let a = scaled_dmv_relations(3, 100, 50, 42);
        let b = scaled_dmv_relations(3, 100, 50, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows(), y.rows());
        }
        let c = scaled_dmv_relations(3, 100, 50, 43);
        assert_ne!(a[0].rows(), c[0].rows());
    }

    #[test]
    fn scaled_population_shape() {
        let rels = scaled_dmv_relations(4, 1000, 200, 7);
        assert_eq!(rels.len(), 4);
        for r in &rels {
            assert_eq!(r.len(), 200);
        }
        // Skew: 'sp' should be the most common violation.
        let sp = rels[0]
            .select_items(&Predicate::eq("V", "sp").into())
            .unwrap()
            .items
            .len();
        let hr = rels[0]
            .select_items(&Predicate::eq("V", "hit-and-run").into())
            .unwrap()
            .items
            .len();
        assert!(sp > hr);
    }

    #[test]
    fn scaled_scenario_has_answers() {
        let s = scaled_dmv_scenario(4, 500, 400, 11);
        let truth = s.ground_truth().unwrap();
        assert!(!truth.is_empty(), "population is dense enough for matches");
        assert!(s.domain_size > 0.0);
    }
}
