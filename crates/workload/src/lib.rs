//! Deterministic scenarios and synthetic workloads.
//!
//! The conference version of the paper evaluates its ideas on worked
//! examples (the DMV scenario of Figure 1); the quantitative experiments
//! live in the extended version, which is no longer retrievable. This
//! crate supplies the substitute evaluation data:
//!
//! * [`dmv`] — the paper's running example, both the exact Figure 1
//!   relations and a scaled-up parameterized DMV population;
//! * [`biblio`] — the bibliographic-search scenario sketched in §1
//!   (documents with keyword records scattered across libraries);
//! * [`synth`] — fully parameterized synthetic populations: number of
//!   sources, item domain size, per-source cardinality, per-condition
//!   selectivities, capability heterogeneity, and link mixes — the knobs
//!   the paper's claims are about;
//! * [`session`] — multi-query session streams with Zipf-skewed query
//!   reuse and source-update events, the workload the answer-cache
//!   experiments replay;
//! * [`scenario`] — the bundle (query + relations + wrappers + network)
//!   every experiment and example consumes.
//!
//! Everything is seeded and exactly reproducible.

#![forbid(unsafe_code)]

pub mod biblio;
pub mod csv;
pub mod dmv;
pub mod scenario;
pub mod session;
pub mod synth;

pub use scenario::Scenario;
pub use session::{generate_session, Session, SessionEvent, SessionSpec};
pub use synth::{CapabilityMix, SynthSpec};
