//! Parser for the fusion-query SQL dialect (§1, §2.2).
//!
//! Fusion queries are written against the union view `U` of all source
//! relations:
//!
//! ```sql
//! SELECT u1.L
//! FROM U u1, U u2
//! WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'
//! ```
//!
//! The parser is a hand-written lexer + recursive-descent grammar covering
//! comparisons, `BETWEEN`, `IN`, `LIKE`, `IS [NOT] NULL`, `NOT`, and
//! `AND`/`OR` with standard precedence. After parsing, the WHERE clause is
//! checked against the fusion-query shape of §2.2: the top-level
//! conjunction must contain a merge-equality chain connecting all query
//! variables, and every remaining conjunct must reference exactly one
//! variable — those conjuncts become the conditions `c_1..c_m`.

#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod shape;

pub use ast::{Expr, ParsedQuery};
pub use parser::parse_query;
pub use shape::{into_fusion_shape, FusionShape};
