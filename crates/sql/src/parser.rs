//! Recursive-descent parser for the fusion-query dialect.

use crate::ast::{AttrRef, Expr, ParsedQuery};
use crate::lexer::{tokenize, Token, TokenKind};
use fusion_types::error::{FusionError, Result};
use fusion_types::{CmpOp, Value};

/// Parses a fusion-dialect SQL query.
///
/// # Errors
/// Fails with [`FusionError::Parse`] on syntax errors (with byte offsets).
pub fn parse_query(sql: &str) -> Result<ParsedQuery> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, detail: impl Into<String>) -> Result<T> {
        Err(FusionError::Parse {
            detail: detail.into(),
            offset: Some(self.peek().offset),
        })
    }

    fn eat_kw(&mut self, word: &str) -> bool {
        if self.peek().kind.is_kw(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> Result<()> {
        if self.eat_kw(word) {
            Ok(())
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => self.err(format!("expected {what}")),
        }
    }

    /// `SELECT ref FROM view alias (, view alias)* [WHERE expr]`
    fn query(&mut self) -> Result<ParsedQuery> {
        self.expect_kw("SELECT")?;
        // Projection is parsed as alias.attr; variable resolution happens
        // after FROM, so capture the raw pair first.
        let proj_alias = self.ident("projection variable")?;
        self.expect_kind(&TokenKind::Dot, "`.`")?;
        let proj_attr = self.ident("projection attribute")?;
        self.expect_kw("FROM")?;
        let mut view: Option<String> = None;
        let mut variables: Vec<String> = Vec::new();
        loop {
            let v = self.ident("union view name")?;
            match &view {
                None => view = Some(v),
                Some(existing) if existing.eq_ignore_ascii_case(&v) => {}
                Some(existing) => {
                    return self.err(format!(
                        "all FROM entries must use the same union view (`{existing}` vs `{v}`)"
                    ));
                }
            }
            let alias = self.ident("variable alias")?;
            if variables.iter().any(|a| a.eq_ignore_ascii_case(&alias)) {
                return self.err(format!("duplicate variable alias `{alias}`"));
            }
            variables.push(alias);
            if !matches!(self.peek().kind, TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        let where_clause = if self.eat_kw("WHERE") {
            self.or_expr(&variables)?
        } else {
            Expr::Const(true)
        };
        let proj_var = resolve_var(&variables, &proj_alias).ok_or_else(|| FusionError::Parse {
            detail: format!("projection variable `{proj_alias}` not in FROM"),
            offset: None,
        })?;
        Ok(ParsedQuery {
            projection: AttrRef {
                var: proj_var,
                attr: proj_attr,
            },
            variables,
            view: view.expect("at least one FROM entry"),
            where_clause,
        })
    }

    fn or_expr(&mut self, vars: &[String]) -> Result<Expr> {
        let mut parts = vec![self.and_expr(vars)?];
        while self.eat_kw("OR") {
            parts.push(self.and_expr(vars)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Expr::Or(parts)
        })
    }

    fn and_expr(&mut self, vars: &[String]) -> Result<Expr> {
        let mut parts = vec![self.not_expr(vars)?];
        while self.eat_kw("AND") {
            parts.push(self.not_expr(vars)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Expr::And(parts)
        })
    }

    fn not_expr(&mut self, vars: &[String]) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr(vars)?)))
        } else {
            self.primary(vars)
        }
    }

    fn primary(&mut self, vars: &[String]) -> Result<Expr> {
        match &self.peek().kind {
            TokenKind::LParen => {
                self.bump();
                let e = self.or_expr(vars)?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => {
                self.bump();
                Ok(Expr::Const(true))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => {
                self.bump();
                Ok(Expr::Const(false))
            }
            TokenKind::Ident(_) => self.atom(vars),
            _ => self.err("expected a condition"),
        }
    }

    /// An atom starting with a qualified reference.
    fn atom(&mut self, vars: &[String]) -> Result<Expr> {
        let lhs = self.attr_ref(vars)?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let e = Expr::IsNull { lhs };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let lo = self.literal()?;
            self.expect_kw("AND")?;
            let hi = self.literal()?;
            let e = Expr::Between { lhs, lo, hi };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_kw("IN") {
            self.expect_kind(&TokenKind::LParen, "`(`")?;
            let mut values = vec![self.literal()?];
            while matches!(self.peek().kind, TokenKind::Comma) {
                self.bump();
                values.push(self.literal()?);
            }
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            let e = Expr::InList { lhs, values };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_kw("LIKE") {
            let pattern = match &self.peek().kind {
                TokenKind::Str(s) => {
                    let s = s.clone();
                    self.bump();
                    s
                }
                _ => return self.err("expected a string pattern after LIKE"),
            };
            let e = Expr::Like { lhs, pattern };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if negated {
            return self.err("expected BETWEEN, IN, or LIKE after NOT");
        }
        // Comparison: ref op (literal | ref).
        let op = match self.peek().kind {
            TokenKind::Cmp(op) => {
                self.bump();
                op
            }
            _ => return self.err("expected a comparison operator"),
        };
        // Right side: another qualified reference → merge-chain candidate.
        if let TokenKind::Ident(_) = self.peek().kind {
            if matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Dot)
            ) {
                let right = self.attr_ref(vars)?;
                if op != CmpOp::Eq {
                    return self.err("only `=` is allowed between query variables");
                }
                return Ok(Expr::MergeEq { left: lhs, right });
            }
        }
        let rhs = self.literal()?;
        Ok(Expr::Cmp { lhs, op, rhs })
    }

    fn attr_ref(&mut self, vars: &[String]) -> Result<AttrRef> {
        let alias = self.ident("query variable")?;
        let Some(var) = resolve_var(vars, &alias) else {
            return self.err(format!("unknown query variable `{alias}`"));
        };
        self.expect_kind(&TokenKind::Dot, "`.` after query variable")?;
        let attr = self.ident("attribute name")?;
        Ok(AttrRef { var, attr })
    }

    fn literal(&mut self) -> Result<Value> {
        let negate = matches!(self.peek().kind, TokenKind::Minus);
        if negate {
            self.bump();
        }
        let v = match &self.peek().kind {
            TokenKind::Int(i) => Value::Int(*i),
            TokenKind::Float(f) => Value::Float(*f),
            TokenKind::Str(s) => Value::Str(s.clone()),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => Value::Null,
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Value::Bool(true),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Value::Bool(false),
            _ => return self.err("expected a literal"),
        };
        self.bump();
        match (negate, v) {
            (false, v) => Ok(v),
            (true, Value::Int(i)) => Ok(Value::Int(-i)),
            (true, Value::Float(f)) => Ok(Value::Float(-f)),
            (true, _) => self.err("`-` applies only to numeric literals"),
        }
    }
}

fn resolve_var(vars: &[String], alias: &str) -> Option<usize> {
    vars.iter().position(|v| v.eq_ignore_ascii_case(alias))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q = parse_query(
            "SELECT u1.L FROM U u1, U u2 \
             WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
        )
        .unwrap();
        assert_eq!(q.variables, vec!["u1", "u2"]);
        assert_eq!(q.view, "U");
        assert_eq!(
            q.projection,
            AttrRef {
                var: 0,
                attr: "L".into()
            }
        );
        match &q.where_clause {
            Expr::And(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[0], Expr::MergeEq { .. }));
                assert!(matches!(parts[1], Expr::Cmp { .. }));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parses_rich_predicates() {
        let q = parse_query(
            "SELECT u1.L FROM U u1 WHERE u1.D BETWEEN 1990 AND 1995 \
             AND u1.V IN ('dui', 'sp') AND u1.V LIKE 'd%' \
             AND u1.D IS NOT NULL AND NOT (u1.D = 1993 OR u1.D > -2)",
        )
        .unwrap();
        let Expr::And(parts) = &q.where_clause else {
            panic!("expected And");
        };
        assert_eq!(parts.len(), 5);
        assert!(matches!(parts[0], Expr::Between { .. }));
        assert!(matches!(parts[1], Expr::InList { .. }));
        assert!(matches!(parts[2], Expr::Like { .. }));
        assert!(matches!(parts[3], Expr::Not(_)));
        assert!(matches!(parts[4], Expr::Not(_)));
    }

    #[test]
    fn missing_where_is_const_true() {
        let q = parse_query("SELECT u1.L FROM U u1").unwrap();
        assert_eq!(q.where_clause, Expr::Const(true));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("select U1.l from u U1 where U1.v = 'x'").unwrap();
        assert_eq!(q.variables, vec!["U1"]);
    }

    #[test]
    fn or_and_precedence() {
        let q = parse_query("SELECT u1.L FROM U u1 WHERE u1.V = 'a' OR u1.V = 'b' AND u1.D = 1")
            .unwrap();
        // a OR (b AND d)
        let Expr::Or(parts) = &q.where_clause else {
            panic!("OR should be outermost");
        };
        assert_eq!(parts.len(), 2);
        assert!(matches!(parts[1], Expr::And(_)));
    }

    #[test]
    fn syntax_errors() {
        for bad in [
            "SELECT FROM U u1",
            "SELECT u1.L FROM U u1, V u2 WHERE u1.L = u2.L",
            "SELECT u1.L FROM U u1, U u1",
            "SELECT u3.L FROM U u1",
            "SELECT u1.L FROM U u1 WHERE u1.V <",
            "SELECT u1.L FROM U u1 WHERE u1.V = 'x' trailing",
            "SELECT u1.L FROM U u1 WHERE u2.V = 'x'",
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L < u2.L",
            "SELECT u1.L FROM U u1 WHERE u1.V NOT = 'x'",
            "SELECT u1.L FROM U u1 WHERE u1.V = -'x'",
        ] {
            assert!(parse_query(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn negative_literals() {
        let q = parse_query("SELECT u1.L FROM U u1 WHERE u1.D = -5").unwrap();
        match &q.where_clause {
            Expr::Cmp { rhs, .. } => assert_eq!(rhs, &Value::Int(-5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn is_null_and_is_not_null() {
        let q = parse_query("SELECT u1.L FROM U u1 WHERE u1.V IS NULL").unwrap();
        assert!(matches!(q.where_clause, Expr::IsNull { .. }));
        let q = parse_query("SELECT u1.L FROM U u1 WHERE u1.V IS NOT NULL").unwrap();
        assert!(matches!(q.where_clause, Expr::Not(_)));
    }
}
