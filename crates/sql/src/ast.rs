//! Parsed representation of a fusion-dialect query.

use fusion_types::{CmpOp, Value};

/// A qualified attribute reference `u1.V`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRef {
    /// Query-variable index (position in the FROM list).
    pub var: usize,
    /// Attribute name.
    pub attr: String,
}

/// A WHERE-clause expression, prior to fusion-shape analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `ref op literal`.
    Cmp {
        /// Left-hand attribute.
        lhs: AttrRef,
        /// Operator (already flipped if the literal was on the left).
        op: CmpOp,
        /// Literal right-hand side.
        rhs: Value,
    },
    /// `ref BETWEEN lo AND hi`.
    Between {
        /// Tested attribute.
        lhs: AttrRef,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `ref IN (v, ...)`.
    InList {
        /// Tested attribute.
        lhs: AttrRef,
        /// Member literals.
        values: Vec<Value>,
    },
    /// `ref LIKE 'pattern'`.
    Like {
        /// Tested attribute.
        lhs: AttrRef,
        /// LIKE pattern.
        pattern: String,
    },
    /// `ref IS NULL`.
    IsNull {
        /// Tested attribute.
        lhs: AttrRef,
    },
    /// `u_i.M = u_j.M` — a link of the merge-equality chain.
    MergeEq {
        /// Left reference.
        left: AttrRef,
        /// Right reference.
        right: AttrRef,
    },
    /// `TRUE` / `FALSE`.
    Const(bool),
}

/// A parsed query: projection, FROM variables, and WHERE expression.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// The projected attribute (`u1.M` → `(0, "M")`).
    pub projection: AttrRef,
    /// Alias of each query variable, in FROM order.
    pub variables: Vec<String>,
    /// Name of the union view (all FROM entries must use the same one).
    pub view: String,
    /// The WHERE expression (`Const(true)` when absent).
    pub where_clause: Expr,
}

impl Expr {
    /// Query variables referenced anywhere in this expression.
    pub fn referenced_vars(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| e.collect_vars(out)),
            Expr::Not(e) => e.collect_vars(out),
            Expr::Cmp { lhs, .. }
            | Expr::Between { lhs, .. }
            | Expr::InList { lhs, .. }
            | Expr::Like { lhs, .. }
            | Expr::IsNull { lhs } => out.push(lhs.var),
            Expr::MergeEq { left, right } => {
                out.push(left.var);
                out.push(right.var);
            }
            Expr::Const(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_vars_dedup_across_connectives() {
        let e = Expr::And(vec![
            Expr::Cmp {
                lhs: AttrRef {
                    var: 1,
                    attr: "V".into(),
                },
                op: CmpOp::Eq,
                rhs: Value::str("x"),
            },
            Expr::Or(vec![
                Expr::IsNull {
                    lhs: AttrRef {
                        var: 0,
                        attr: "D".into(),
                    },
                },
                Expr::Const(true),
            ]),
            Expr::MergeEq {
                left: AttrRef {
                    var: 0,
                    attr: "L".into(),
                },
                right: AttrRef {
                    var: 2,
                    attr: "L".into(),
                },
            },
        ]);
        assert_eq!(e.referenced_vars(), vec![0, 1, 2]);
    }
}
