//! Fusion-shape analysis: from a parsed WHERE clause to per-variable
//! conditions (§2.2).

use crate::ast::{Expr, ParsedQuery};
use fusion_types::error::{FusionError, Result};
use fusion_types::{Predicate, Schema};

/// The fusion shape of a query: one condition per query variable, in FROM
/// order. Feed these to `FusionQuery::new` in `fusion-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionShape {
    /// The merge attribute name (validated against the schema).
    pub merge_attr: String,
    /// Condition `c_i` for variable `u_{i+1}`; `Const(true)` when the
    /// query states no condition for that variable.
    pub conditions: Vec<Predicate>,
}

/// Validates that `query` has the fusion shape of §2.2 and extracts the
/// conditions:
///
/// * the projection must be the schema's merge attribute;
/// * the top-level conjunction must contain merge-equality links
///   (`u_i.M = u_j.M`) connecting **all** query variables (none needed
///   for a single variable);
/// * every other conjunct must reference exactly one variable; those
///   conjuncts, ANDed per variable, become `c_1..c_m`;
/// * merge-equalities may not appear under `OR`/`NOT`.
///
/// # Errors
/// Returns [`FusionError::NotAFusionQuery`] describing the first
/// violation, or type/attribute errors from predicate validation.
pub fn into_fusion_shape(query: &ParsedQuery, schema: &Schema) -> Result<FusionShape> {
    let merge = &schema.merge_attribute().name;
    let m = query.variables.len();
    if &query.projection.attr != merge {
        return Err(FusionError::NotAFusionQuery {
            detail: format!(
                "projection must be the merge attribute `{merge}`, got `{}`",
                query.projection.attr
            ),
        });
    }
    // Split the top-level conjunction.
    let conjuncts: Vec<&Expr> = match &query.where_clause {
        Expr::And(parts) => parts.iter().collect(),
        other => vec![other],
    };
    let mut dsu = Dsu::new(m);
    let mut per_var: Vec<Vec<Predicate>> = vec![Vec::new(); m];
    for c in conjuncts {
        match c {
            Expr::MergeEq { left, right } => {
                if &left.attr != merge || &right.attr != merge {
                    return Err(FusionError::NotAFusionQuery {
                        detail: format!(
                            "variable equality must be on the merge attribute `{merge}`"
                        ),
                    });
                }
                dsu.union(left.var, right.var);
            }
            Expr::Const(true) => {}
            other => {
                let vars = other.referenced_vars();
                if vars.len() != 1 {
                    return Err(FusionError::NotAFusionQuery {
                        detail: format!(
                            "each condition must reference exactly one query variable, \
                             found {} in `{other:?}`",
                            vars.len()
                        ),
                    });
                }
                let pred = to_predicate(other)?;
                per_var[vars[0]].push(pred);
            }
        }
    }
    // The merge chain must connect all variables.
    if m > 1 {
        let root = dsu.find(0);
        for v in 1..m {
            if dsu.find(v) != root {
                return Err(FusionError::NotAFusionQuery {
                    detail: format!(
                        "merge-equality chain does not connect variable `{}`",
                        query.variables[v]
                    ),
                });
            }
        }
    }
    let conditions: Vec<Predicate> = per_var
        .into_iter()
        .map(|mut preds| match preds.len() {
            0 => Predicate::Const(true),
            1 => preds.pop().expect("len checked"),
            _ => Predicate::And(preds),
        })
        .collect();
    for (i, c) in conditions.iter().enumerate() {
        c.check(schema).map_err(|e| FusionError::NotAFusionQuery {
            detail: format!("condition for `{}` invalid: {e}", query.variables[i]),
        })?;
    }
    Ok(FusionShape {
        merge_attr: merge.clone(),
        conditions,
    })
}

/// Converts a single-variable expression to a predicate.
fn to_predicate(e: &Expr) -> Result<Predicate> {
    Ok(match e {
        Expr::And(parts) => Predicate::And(parts.iter().map(to_predicate).collect::<Result<_>>()?),
        Expr::Or(parts) => Predicate::Or(parts.iter().map(to_predicate).collect::<Result<_>>()?),
        Expr::Not(inner) => Predicate::Not(Box::new(to_predicate(inner)?)),
        Expr::Cmp { lhs, op, rhs } => Predicate::Cmp {
            attr: lhs.attr.clone(),
            op: *op,
            value: rhs.clone(),
        },
        Expr::Between { lhs, lo, hi } => Predicate::Between {
            attr: lhs.attr.clone(),
            lo: lo.clone(),
            hi: hi.clone(),
        },
        Expr::InList { lhs, values } => Predicate::InList {
            attr: lhs.attr.clone(),
            values: values.clone(),
        },
        Expr::Like { lhs, pattern } => Predicate::Like {
            attr: lhs.attr.clone(),
            pattern: pattern.clone(),
        },
        Expr::IsNull { lhs } => Predicate::IsNull {
            attr: lhs.attr.clone(),
        },
        Expr::Const(b) => Predicate::Const(*b),
        Expr::MergeEq { .. } => {
            return Err(FusionError::NotAFusionQuery {
                detail: "merge-attribute equality may only appear at the top level of WHERE".into(),
            });
        }
    })
}

/// Minimal disjoint-set union for chain connectivity.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{CmpOp, Value};

    fn shape(sql: &str) -> Result<FusionShape> {
        into_fusion_shape(&parse_query(sql).unwrap(), &dmv_schema())
    }

    #[test]
    fn extracts_the_paper_conditions() {
        let s = shape(
            "SELECT u1.L FROM U u1, U u2 \
             WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
        )
        .unwrap();
        assert_eq!(s.merge_attr, "L");
        assert_eq!(
            s.conditions,
            vec![Predicate::eq("V", "dui"), Predicate::eq("V", "sp")]
        );
    }

    #[test]
    fn chain_may_be_transitive() {
        // u1 = u2, u2 = u3 connects all three.
        let s = shape(
            "SELECT u1.L FROM U u1, U u2, U u3 \
             WHERE u1.L = u2.L AND u2.L = u3.L \
             AND u1.V = 'a' AND u2.V = 'b' AND u3.V = 'c'",
        )
        .unwrap();
        assert_eq!(s.conditions.len(), 3);
    }

    #[test]
    fn disconnected_chain_rejected() {
        let err = shape(
            "SELECT u1.L FROM U u1, U u2, U u3 \
             WHERE u1.L = u2.L AND u1.V = 'a' AND u2.V = 'b' AND u3.V = 'c'",
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not connect"), "{err}");
    }

    #[test]
    fn multiple_conjuncts_per_variable_are_anded() {
        let s = shape("SELECT u1.L FROM U u1 WHERE u1.V = 'dui' AND u1.D > 1990").unwrap();
        assert_eq!(
            s.conditions,
            vec![Predicate::And(vec![
                Predicate::eq("V", "dui"),
                Predicate::cmp("D", CmpOp::Gt, 1990i64),
            ])]
        );
    }

    #[test]
    fn variable_without_condition_is_true() {
        let s = shape("SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'x'").unwrap();
        assert_eq!(s.conditions[1], Predicate::Const(true));
    }

    #[test]
    fn cross_variable_condition_rejected() {
        let err = shape(
            "SELECT u1.L FROM U u1, U u2 \
             WHERE u1.L = u2.L AND (u1.V = 'a' OR u2.V = 'b')",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("exactly one query variable"),
            "{err}"
        );
    }

    #[test]
    fn wrong_projection_rejected() {
        let err = shape("SELECT u1.V FROM U u1 WHERE u1.V = 'x'").unwrap_err();
        assert!(err.to_string().contains("merge attribute"), "{err}");
    }

    #[test]
    fn non_merge_equality_rejected() {
        let err =
            shape("SELECT u1.L FROM U u1, U u2 WHERE u1.V = u2.V AND u1.V = 'x'").unwrap_err();
        assert!(err.to_string().contains("merge attribute"), "{err}");
    }

    #[test]
    fn type_errors_surface() {
        let err = shape("SELECT u1.L FROM U u1 WHERE u1.V = 7").unwrap_err();
        assert!(matches!(err, FusionError::NotAFusionQuery { .. }), "{err}");
    }

    #[test]
    fn rich_predicates_convert() {
        let s = shape(
            "SELECT u1.L FROM U u1 WHERE u1.D BETWEEN 1990 AND 1995 \
             AND u1.V IN ('a','b') AND u1.V LIKE 'd%' AND NOT u1.V IS NULL",
        )
        .unwrap();
        let Predicate::And(parts) = &s.conditions[0] else {
            panic!("expected And");
        };
        assert_eq!(parts.len(), 4);
        assert_eq!(
            parts[1],
            Predicate::InList {
                attr: "V".into(),
                values: vec![Value::str("a"), Value::str("b")],
            }
        );
    }
}
