//! Tokenizer for the fusion-query SQL dialect.

use fusion_types::error::{FusionError, Result};
use fusion_types::CmpOp;

/// A lexical token with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Comparison operator.
    Cmp(CmpOp),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `-` (unary minus before a numeric literal).
    Minus,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True if this is the identifier `word`, case-insensitively.
    pub fn is_kw(&self, word: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(word))
    }
}

/// Tokenizes `input`.
///
/// # Errors
/// Fails on unterminated strings, malformed numbers, and unexpected
/// characters, reporting the byte offset.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let kind = match c {
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '.' => {
                i += 1;
                TokenKind::Dot
            }
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            '-' => {
                i += 1;
                TokenKind::Minus
            }
            '=' => {
                i += 1;
                TokenKind::Cmp(CmpOp::Eq)
            }
            '<' => {
                i += 1;
                match bytes.get(i).map(|b| *b as char) {
                    Some('=') => {
                        i += 1;
                        TokenKind::Cmp(CmpOp::Le)
                    }
                    Some('>') => {
                        i += 1;
                        TokenKind::Cmp(CmpOp::Ne)
                    }
                    _ => TokenKind::Cmp(CmpOp::Lt),
                }
            }
            '>' => {
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    TokenKind::Cmp(CmpOp::Ge)
                } else {
                    TokenKind::Cmp(CmpOp::Gt)
                }
            }
            '!' => {
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    TokenKind::Cmp(CmpOp::Ne)
                } else {
                    return Err(FusionError::Parse {
                        detail: "expected `=` after `!`".into(),
                        offset: Some(start),
                    });
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(FusionError::Parse {
                                detail: "unterminated string literal".into(),
                                offset: Some(start),
                            });
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut is_float = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.'
                        && !is_float
                        && bytes
                            .get(i + 1)
                            .is_some_and(|n| (*n as char).is_ascii_digit())
                    {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| FusionError::Parse {
                        detail: format!("bad float literal `{text}`"),
                        offset: Some(start),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| FusionError::Parse {
                        detail: format!("bad integer literal `{text}`"),
                        offset: Some(start),
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(input[start..i].to_string())
            }
            other => {
                return Err(FusionError::Parse {
                    detail: format!("unexpected character `{other}`"),
                    offset: Some(start),
                });
            }
        };
        out.push(Token {
            kind,
            offset: start,
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT u1.M, 42 3.5 'ab''c' <= <> != ( ) -"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("u1".into()),
                TokenKind::Dot,
                TokenKind::Ident("M".into()),
                TokenKind::Comma,
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Str("ab'c".into()),
                TokenKind::Cmp(CmpOp::Le),
                TokenKind::Cmp(CmpOp::Ne),
                TokenKind::Cmp(CmpOp::Ne),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Minus,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_disambiguation() {
        assert_eq!(
            kinds("< <= <> > >= ="),
            vec![
                TokenKind::Cmp(CmpOp::Lt),
                TokenKind::Cmp(CmpOp::Le),
                TokenKind::Cmp(CmpOp::Ne),
                TokenKind::Cmp(CmpOp::Gt),
                TokenKind::Cmp(CmpOp::Ge),
                TokenKind::Cmp(CmpOp::Eq),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn offsets_are_recorded() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn errors_carry_offsets() {
        match tokenize("a # b").unwrap_err() {
            FusionError::Parse { offset, .. } => assert_eq!(offset, Some(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
        assert_eq!(
            kinds("10.25"),
            vec![TokenKind::Float(10.25), TokenKind::Eof]
        );
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        assert!(TokenKind::Ident("select".into()).is_kw("SELECT"));
        assert!(TokenKind::Ident("WHERE".into()).is_kw("where"));
        assert!(!TokenKind::Ident("sel".into()).is_kw("SELECT"));
    }
}
