//! Phase-two retrieval planning: covering assignments for non-merge
//! attributes.
//!
//! The paper defers "two-phase retrieval of non-merge attributes" to
//! future work: after the M-value fusion converges, the mediator knows
//! *which* items survive but not their full records, and "we do not pay
//! the price of fetching full records until we know which ones are
//! needed". This module plans that second phase over genuinely
//! heterogeneous sources:
//!
//! - a [`CoverageCatalog`] declares, per source, which non-merge
//!   attributes the source can supply and for which items;
//! - [`plan_fetch`] computes the cheapest covering assignment — every
//!   surviving item gets every requested attribute from exactly one
//!   source — by greedy weighted set cover over the (item, attribute)
//!   universe, priced by [`NetworkCostModel::fetch_cost`] (batched round
//!   trips, projection support, paid-per-query fees);
//! - every plan carries an admissible lower bound
//!   ([`NetworkCostModel::fetch_attr_floor`], SPJU-style payload size
//!   reasoning: any covering plan must at least ship each assigned
//!   attribute value once), and [`certify_fetch_plan`] checks the
//!   partition discipline, batch bounds, and the bound itself;
//! - [`redundant_fetch_findings`] lints plans whose items are split
//!   across sources when a single source covers everything they need.
//!
//! Items already resident in the answer cache are priced at zero and
//! excluded from the universe; the runtime serves them without an
//! exchange.

use std::collections::BTreeSet;

use crate::analyze::{Diagnostic, Severity};
use crate::cost::NetworkCostModel;
use fusion_types::error::{FusionError, Result};
use fusion_types::{Cost, Item, ItemSet, Relation, Schema, SourceId};

/// What one source can supply in phase two: a set of non-merge
/// attribute indexes and the items it holds. An empty entry means the
/// source cannot participate (no fetch support, or simply no data).
#[derive(Debug, Clone, Default)]
pub struct SourceCoverage {
    /// Non-merge schema indexes the source can supply.
    pub attrs: BTreeSet<usize>,
    /// Items the source holds records for.
    pub items: ItemSet,
}

/// Per-source attribute coverage, the planner's map of the federation.
///
/// Builders drop sources whose capabilities cannot serve fetches, so an
/// entry in the catalog is a source the runtime may actually dispatch
/// to.
#[derive(Debug, Clone)]
pub struct CoverageCatalog {
    entries: Vec<SourceCoverage>,
}

/// The non-merge attribute indexes of a schema, ascending.
pub fn non_merge_attrs(schema: &Schema) -> Vec<usize> {
    (0..schema.arity())
        .filter(|&a| a != schema.merge_index())
        .collect()
}

impl CoverageCatalog {
    /// An empty catalog over `n_sources` sources (no coverage anywhere).
    pub fn new(n_sources: usize) -> CoverageCatalog {
        CoverageCatalog {
            entries: vec![SourceCoverage::default(); n_sources],
        }
    }

    /// Exact coverage from ground-truth relations: source `j` covers
    /// every non-merge attribute for exactly the items it holds.
    /// Sources whose `fetchable[j]` is false get no coverage.
    pub fn from_relations(
        schema: &Schema,
        relations: &[Relation],
        fetchable: &[bool],
    ) -> CoverageCatalog {
        let all: BTreeSet<usize> = non_merge_attrs(schema).into_iter().collect();
        CoverageCatalog {
            entries: relations
                .iter()
                .enumerate()
                .map(|(j, r)| {
                    if fetchable.get(j).copied().unwrap_or(false) {
                        SourceCoverage {
                            attrs: all.clone(),
                            items: r.distinct_items(),
                        }
                    } else {
                        SourceCoverage::default()
                    }
                })
                .collect(),
        }
    }

    /// Replica assumption: every fetchable source covers every
    /// non-merge attribute for every item in `universe`. The mediator
    /// server uses this when it has no per-source ground truth; a
    /// source that turns out not to hold an item simply returns no row
    /// for it.
    pub fn assume_full(schema: &Schema, universe: &ItemSet, fetchable: &[bool]) -> CoverageCatalog {
        let all: BTreeSet<usize> = non_merge_attrs(schema).into_iter().collect();
        CoverageCatalog {
            entries: fetchable
                .iter()
                .map(|&f| {
                    if f {
                        SourceCoverage {
                            attrs: all.clone(),
                            items: universe.clone(),
                        }
                    } else {
                        SourceCoverage::default()
                    }
                })
                .collect(),
        }
    }

    /// Overrides one source's coverage (heterogeneity axes for tests,
    /// benchmarks, and scenario builders).
    pub fn set(&mut self, source: SourceId, attrs: BTreeSet<usize>, items: ItemSet) {
        self.entries[source.0] = SourceCoverage { attrs, items };
    }

    /// Number of sources the catalog describes.
    pub fn n_sources(&self) -> usize {
        self.entries.len()
    }

    /// The coverage entry of `source`.
    pub fn entry(&self, source: SourceId) -> &SourceCoverage {
        &self.entries[source.0]
    }

    /// Whether `source` can supply attribute `attr` for `item`.
    pub fn covers(&self, source: SourceId, item: &Item, attr: usize) -> bool {
        let e = &self.entries[source.0];
        e.attrs.contains(&attr) && e.items.contains(item)
    }
}

/// One batched per-source fetch exchange group of a [`FetchPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FetchAssignment {
    /// The source to fetch from.
    pub source: SourceId,
    /// The M-values shipped to the source.
    pub items: ItemSet,
    /// The projection list (non-merge schema indexes, ascending) the
    /// exchange requests; the merge attribute rides along implicitly.
    pub attrs: Vec<usize>,
    /// Exact coverage responsibility: for each item, the attributes
    /// *this* assignment supplies in the assembled record, sorted by
    /// item. A superset of nothing: the union over assignments
    /// partitions the (item, attribute) universe.
    pub covers: Vec<(Item, Vec<usize>)>,
    /// Round trips (`⌈|items| / fetch_batch⌉`).
    pub batches: usize,
    /// The cost model's price for this exchange group.
    pub est_cost: Cost,
}

/// A phase-two retrieval plan: batched per-source fetch exchanges that
/// cover every surviving (item, attribute) pair exactly once, plus the
/// items the cache already covers and the pairs nothing can supply.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchPlan {
    /// Requested non-merge attribute indexes, ascending.
    pub attrs: Vec<usize>,
    /// Schema arity the payloads were priced against.
    pub arity: usize,
    /// Items served from the answer cache at zero exchange cost.
    pub cached: ItemSet,
    /// The covering assignment, in the order the greedy chose it.
    pub assignments: Vec<FetchAssignment>,
    /// (item, attributes) pairs no fetchable source covers; executing
    /// the plan yields a `Subset`-complete record set naming these.
    pub missing: Vec<(Item, Vec<usize>)>,
    /// Total estimated cost of all assignments.
    pub planned_cost: Cost,
    /// Admissible lower bound on *any* covering plan's cost (cached
    /// items contribute zero).
    pub lower_bound: f64,
}

impl FetchPlan {
    /// Whether the plan covers the whole universe (nothing missing).
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Plans the cheapest covering assignment for `answer`: every item not
/// in `cached` gets every attribute in `attrs` from exactly one source,
/// chosen by greedy weighted set cover (cost per newly covered pair,
/// ties to the lower source id). `attrs` are non-merge schema indexes;
/// `arity` is the schema arity the cost model prices payloads against.
///
/// Pairs no fetchable source covers land in [`FetchPlan::missing`]
/// instead of failing the plan: phase two degrades to a sound subset
/// exactly like phase one does under dead sources.
pub fn plan_fetch(
    answer: &ItemSet,
    attrs: &[usize],
    catalog: &CoverageCatalog,
    model: &NetworkCostModel,
    arity: usize,
    cached: &ItemSet,
) -> FetchPlan {
    let mut req: Vec<usize> = attrs.to_vec();
    req.sort_unstable();
    req.dedup();
    let cached_covered = answer.intersect(cached);
    let work: Vec<Item> = answer.difference(&cached_covered).iter().cloned().collect();
    let n = catalog.n_sources();
    let usable: Vec<bool> = (0..n)
        .map(|j| model.fetch_attr_floor(SourceId(j), arity).is_finite())
        .collect();

    // Split the universe into coverable pairs (the greedy's input) and
    // missing pairs, and price the admissible floor of the former.
    let mut remaining: Vec<BTreeSet<usize>> = Vec::with_capacity(work.len());
    let mut missing: Vec<(Item, Vec<usize>)> = Vec::new();
    let mut lower_bound = 0.0;
    for item in &work {
        let mut have = BTreeSet::new();
        let mut miss = Vec::new();
        for &a in &req {
            let floor = (0..n)
                .filter(|&j| usable[j] && catalog.covers(SourceId(j), item, a))
                .map(|j| model.fetch_attr_floor(SourceId(j), arity))
                .fold(f64::INFINITY, f64::min);
            if floor.is_finite() {
                have.insert(a);
                lower_bound += floor;
            } else {
                miss.push(a);
            }
        }
        if !miss.is_empty() {
            missing.push((item.clone(), miss));
        }
        remaining.push(have);
    }

    let mut assignments = Vec::new();
    let mut planned_cost = Cost::ZERO;
    loop {
        // Score every source by cost per newly covered (item, attr).
        let mut best: Option<(f64, usize)> = None;
        for (j, &ok) in usable.iter().enumerate().take(n) {
            if !ok {
                continue;
            }
            let cov = catalog.entry(SourceId(j));
            let mut gain = 0usize;
            let mut k = 0usize;
            let mut union: BTreeSet<usize> = BTreeSet::new();
            for (idx, item) in work.iter().enumerate() {
                if remaining[idx].is_empty() || !cov.items.contains(item) {
                    continue;
                }
                let need: Vec<usize> = remaining[idx]
                    .iter()
                    .filter(|a| cov.attrs.contains(a))
                    .copied()
                    .collect();
                if !need.is_empty() {
                    gain += need.len();
                    k += 1;
                    union.extend(need);
                }
            }
            if gain == 0 {
                continue;
            }
            let cost = model.fetch_cost(SourceId(j), k, union.len(), arity);
            let ratio = cost.value() / gain as f64;
            if best.is_none_or(|(r, _)| ratio < r) {
                best = Some((ratio, j));
            }
        }
        let Some((_, j)) = best else { break };

        // Commit the winner: exact per-item responsibility, then remove
        // the covered pairs from the universe.
        let cov = catalog.entry(SourceId(j));
        let mut covers: Vec<(Item, Vec<usize>)> = Vec::new();
        let mut union: BTreeSet<usize> = BTreeSet::new();
        for (idx, item) in work.iter().enumerate() {
            if remaining[idx].is_empty() || !cov.items.contains(item) {
                continue;
            }
            let need: Vec<usize> = remaining[idx]
                .iter()
                .filter(|a| cov.attrs.contains(a))
                .copied()
                .collect();
            if need.is_empty() {
                continue;
            }
            for a in &need {
                remaining[idx].remove(a);
            }
            union.extend(need.iter().copied());
            covers.push((item.clone(), need));
        }
        let items: ItemSet = covers.iter().map(|(i, _)| i.clone()).collect();
        let caps = model.source_capabilities(SourceId(j));
        let est_cost = model.fetch_cost(SourceId(j), items.len(), union.len(), arity);
        planned_cost += est_cost;
        assignments.push(FetchAssignment {
            source: SourceId(j),
            items: items.clone(),
            attrs: union.into_iter().collect(),
            covers,
            batches: caps.fetch_batches_for(items.len()),
            est_cost,
        });
    }

    FetchPlan {
        attrs: req,
        arity,
        cached: cached_covered,
        assignments,
        missing,
        planned_cost,
        lower_bound,
    }
}

/// A verified phase-two plan certificate: the covering assignment
/// partitions the universe, respects the catalog and the batch bounds,
/// and its price dominates the admissible lower bound.
#[derive(Debug, Clone, Copy)]
pub struct FetchCertificate {
    /// (item, attribute) pairs covered by assignments.
    pub pairs_covered: usize,
    /// Number of fetch exchange groups.
    pub n_assignments: usize,
    /// Total round trips over all assignments.
    pub round_trips: usize,
    /// The plan's admissible lower bound.
    pub lower_bound: f64,
    /// The plan's estimated cost.
    pub planned: Cost,
}

/// Checks a [`FetchPlan`] against its inputs.
///
/// # Errors
/// Fails when any (item, attribute) pair of `answer` (outside the
/// cached set) is covered zero or multiple times, when an assignment
/// claims coverage its catalog entry cannot supply, when a batch count
/// disagrees with the source's `fetch_batch` bound, or when the planned
/// cost undercuts the admissible lower bound.
pub fn certify_fetch_plan(
    plan: &FetchPlan,
    answer: &ItemSet,
    catalog: &CoverageCatalog,
    model: &NetworkCostModel,
) -> Result<FetchCertificate> {
    let mut covered: std::collections::BTreeMap<(Item, usize), usize> =
        std::collections::BTreeMap::new();
    let mut round_trips = 0usize;
    for (t, asg) in plan.assignments.iter().enumerate() {
        let caps = model.source_capabilities(asg.source);
        if !caps.record_fetch {
            return Err(FusionError::execution(format!(
                "fetch plan assignment {} targets source R{} which cannot serve fetches",
                t + 1,
                asg.source.0 + 1
            )));
        }
        if asg.batches != caps.fetch_batches_for(asg.items.len()) {
            return Err(FusionError::execution(format!(
                "fetch plan assignment {} claims {} batches for {} items (bound {})",
                t + 1,
                asg.batches,
                asg.items.len(),
                caps.fetch_batch
            )));
        }
        round_trips += asg.batches;
        for (item, attrs) in &asg.covers {
            if !asg.items.contains(item) {
                return Err(FusionError::execution(format!(
                    "fetch plan assignment {} covers {item} without requesting it",
                    t + 1
                )));
            }
            for &a in attrs {
                if !catalog.covers(asg.source, item, a) {
                    return Err(FusionError::execution(format!(
                        "fetch plan assignment {} claims attribute {a} of {item} \
                         beyond source R{}'s coverage",
                        t + 1,
                        asg.source.0 + 1
                    )));
                }
                *covered.entry((item.clone(), a)).or_insert(0) += 1;
            }
        }
    }
    for ((item, a), count) in &covered {
        if *count != 1 {
            return Err(FusionError::execution(format!(
                "fetch plan covers attribute {a} of {item} {count} times"
            )));
        }
    }
    let missing: std::collections::BTreeSet<(Item, usize)> = plan
        .missing
        .iter()
        .flat_map(|(i, attrs)| attrs.iter().map(move |&a| (i.clone(), a)))
        .collect();
    for item in answer {
        if plan.cached.contains(item) {
            continue;
        }
        for &a in &plan.attrs {
            let key = (item.clone(), a);
            if missing.contains(&key) {
                continue;
            }
            if !covered.contains_key(&key) {
                return Err(FusionError::execution(format!(
                    "fetch plan leaves attribute {a} of {item} uncovered and unreported"
                )));
            }
        }
    }
    if plan.planned_cost.value() + 1e-9 < plan.lower_bound {
        return Err(FusionError::execution(format!(
            "fetch plan cost {} undercuts its admissible lower bound {}",
            plan.planned_cost, plan.lower_bound
        )));
    }
    Ok(FetchCertificate {
        pairs_covered: covered.len(),
        n_assignments: plan.assignments.len(),
        round_trips,
        lower_bound: plan.lower_bound,
        planned: plan.planned_cost,
    })
}

/// Lints a [`FetchPlan`] for redundant split fetches: an item whose
/// attributes are supplied by two or more sources when a single one of
/// the involved sources covers every attribute the item needs. The
/// greedy can produce such splits when batching economics favor them,
/// so the finding is a warning, not an error. `step` is the 1-based
/// index of the *second* assignment touching the item.
pub fn redundant_fetch_findings(plan: &FetchPlan, catalog: &CoverageCatalog) -> Vec<Diagnostic> {
    let mut per_item: std::collections::BTreeMap<&Item, Vec<(usize, &FetchAssignment)>> =
        std::collections::BTreeMap::new();
    for (t, asg) in plan.assignments.iter().enumerate() {
        for (item, _) in &asg.covers {
            per_item.entry(item).or_default().push((t, asg));
        }
    }
    let mut out = Vec::new();
    for (item, touched) in per_item {
        if touched.len() < 2 {
            continue;
        }
        let all_attrs: BTreeSet<usize> = touched
            .iter()
            .flat_map(|(_, asg)| {
                asg.covers
                    .iter()
                    .find(|(i, _)| i == item)
                    .map(|(_, attrs)| attrs.clone())
                    .unwrap_or_default()
            })
            .collect();
        let full_cover = touched.iter().find(|(_, asg)| {
            let e = catalog.entry(asg.source);
            e.items.contains(item) && all_attrs.iter().all(|a| e.attrs.contains(a))
        });
        if let Some((_, winner)) = full_cover {
            let second = touched[1].0;
            out.push(Diagnostic {
                rule: "redundant-phase2-fetch",
                severity: Severity::Warning,
                step: second + 1,
                message: format!(
                    "item {item} is fetched from {} sources but R{} covers all \
                     of its requested attributes alone",
                    touched.len(),
                    winner.source.0 + 1
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::FusionQuery;
    use fusion_net::{LinkProfile, Network};
    use fusion_source::{Capabilities, InMemoryWrapper, ProcessingProfile, SourceSet};
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Predicate, Tuple};

    /// A consistent replicated world: one global relation, each source
    /// holding a slice of its rows.
    fn global_rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                tuple![
                    format!("L{i:03}"),
                    if i % 3 == 0 { "dui" } else { "sp" },
                    (1990 + (i % 10)) as i64
                ]
            })
            .collect()
    }

    fn world(caps: &[Capabilities], slices: &[std::ops::Range<usize>]) -> (SourceSet, Network) {
        let s = dmv_schema();
        let rows = global_rows(40);
        let sources = SourceSet::new(
            caps.iter()
                .zip(slices)
                .enumerate()
                .map(|(j, (c, r))| {
                    Box::new(InMemoryWrapper::new(
                        format!("R{}", j + 1),
                        Relation::from_rows(s.clone(), rows[r.clone()].to_vec()),
                        *c,
                        ProcessingProfile::free(),
                        j as u64,
                    )) as Box<dyn fusion_source::Wrapper>
                })
                .collect(),
        );
        let network = Network::uniform(caps.len(), LinkProfile::Wan.link());
        (sources, network)
    }

    fn model_of(sources: &SourceSet, network: &Network) -> NetworkCostModel {
        let q = FusionQuery::new(dmv_schema(), vec![Predicate::eq("V", "dui").into()]).unwrap();
        NetworkCostModel::new(sources, network, &q, None)
    }

    fn relations(sources: &SourceSet) -> Vec<Relation> {
        // Rebuild the ground truth the same way `world` sliced it.
        let s = dmv_schema();
        let rows = global_rows(40);
        let n = sources.len();
        let per = 40 / n;
        (0..n)
            .map(|j| Relation::from_rows(s.clone(), rows[j * per..(j + 1) * per].to_vec()))
            .collect()
    }

    fn answer_of(rels: &[Relation]) -> ItemSet {
        rels.iter()
            .map(Relation::distinct_items)
            .fold(ItemSet::empty(), |a, b| a.union(&b))
    }

    #[test]
    fn full_overlap_plans_one_source_and_certifies() {
        let caps = [Capabilities::full(), Capabilities::full()];
        let (sources, network) = world(&caps, &[0..40, 0..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rows = global_rows(40);
        let rel = Relation::from_rows(schema.clone(), rows);
        let answer = rel.distinct_items();
        let catalog =
            CoverageCatalog::from_relations(&schema, &[rel.clone(), rel.clone()], &[true, true]);
        let plan = plan_fetch(
            &answer,
            &non_merge_attrs(&schema),
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        assert!(plan.is_complete());
        assert_eq!(plan.assignments.len(), 1, "one replica suffices");
        let cert = certify_fetch_plan(&plan, &answer, &catalog, &model).unwrap();
        assert_eq!(cert.pairs_covered, answer.len() * 2);
        assert!(plan.planned_cost.value() >= plan.lower_bound);
        assert!(redundant_fetch_findings(&plan, &catalog).is_empty());
    }

    #[test]
    fn disjoint_attribute_coverage_splits_and_partitions() {
        let caps = [Capabilities::full(), Capabilities::full()];
        let (sources, network) = world(&caps, &[0..40, 0..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rows = global_rows(40);
        let rel = Relation::from_rows(schema.clone(), rows);
        let answer = rel.distinct_items();
        let mut catalog = CoverageCatalog::new(2);
        catalog.set(SourceId(0), [1].into(), answer.clone());
        catalog.set(SourceId(1), [2].into(), answer.clone());
        let plan = plan_fetch(
            &answer,
            &[1, 2],
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        assert!(plan.is_complete());
        assert_eq!(plan.assignments.len(), 2);
        certify_fetch_plan(&plan, &answer, &catalog, &model).unwrap();
        // No single source covers both attributes: the split is forced,
        // not redundant.
        assert!(redundant_fetch_findings(&plan, &catalog).is_empty());
    }

    #[test]
    fn uncoverable_attributes_are_named_missing() {
        let caps = [Capabilities::full()];
        let (sources, network) = world(&caps, &[0..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rel = Relation::from_rows(schema.clone(), global_rows(40));
        let answer = rel.distinct_items();
        let mut catalog = CoverageCatalog::new(1);
        catalog.set(SourceId(0), [1].into(), answer.clone());
        let plan = plan_fetch(
            &answer,
            &[1, 2],
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        assert!(!plan.is_complete());
        assert_eq!(plan.missing.len(), answer.len());
        assert!(plan.missing.iter().all(|(_, a)| a == &vec![2]));
        certify_fetch_plan(&plan, &answer, &catalog, &model).unwrap();
    }

    #[test]
    fn cached_items_are_excluded_and_priced_zero() {
        let caps = [Capabilities::full()];
        let (sources, network) = world(&caps, &[0..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rel = Relation::from_rows(schema.clone(), global_rows(40));
        let answer = rel.distinct_items();
        let catalog = CoverageCatalog::from_relations(&schema, &[rel.clone()], &[true]);
        let cached: ItemSet = answer.iter().take(20).cloned().collect();
        let cold = plan_fetch(
            &answer,
            &[1, 2],
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        let warm = plan_fetch(&answer, &[1, 2], &catalog, &model, schema.arity(), &cached);
        assert_eq!(warm.cached.len(), 20);
        assert!(warm.planned_cost < cold.planned_cost);
        assert!(warm.lower_bound < cold.lower_bound);
        certify_fetch_plan(&warm, &answer, &catalog, &model).unwrap();
    }

    #[test]
    fn paid_tier_shifts_the_covering_choice() {
        let paid = Capabilities::full().with_fee_millis(50_000);
        let caps = [paid, Capabilities::full()];
        let (sources, network) = world(&caps, &[0..40, 0..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rel = Relation::from_rows(schema.clone(), global_rows(40));
        let answer = rel.distinct_items();
        let catalog =
            CoverageCatalog::from_relations(&schema, &[rel.clone(), rel.clone()], &[true, true]);
        let plan = plan_fetch(
            &answer,
            &[1, 2],
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(
            plan.assignments[0].source,
            SourceId(1),
            "the free tier must win"
        );
    }

    #[test]
    fn redundant_split_mutant_is_flagged() {
        let caps = [Capabilities::full(), Capabilities::full()];
        let (sources, network) = world(&caps, &[0..40, 0..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rel = Relation::from_rows(schema.clone(), global_rows(40));
        let answer = rel.distinct_items();
        let catalog =
            CoverageCatalog::from_relations(&schema, &[rel.clone(), rel.clone()], &[true, true]);
        let sane = plan_fetch(
            &answer,
            &[1, 2],
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        assert!(redundant_fetch_findings(&sane, &catalog).is_empty());
        // Mutant: split one item's two attributes across both replicas
        // even though either covers both.
        let item = answer.iter().next().unwrap().clone();
        let one: ItemSet = [item.clone()].into_iter().collect();
        let mutant = FetchPlan {
            attrs: vec![1, 2],
            arity: 3,
            cached: ItemSet::empty(),
            assignments: vec![
                FetchAssignment {
                    source: SourceId(0),
                    items: one.clone(),
                    attrs: vec![1],
                    covers: vec![(item.clone(), vec![1])],
                    batches: 1,
                    est_cost: Cost::new(1.0),
                },
                FetchAssignment {
                    source: SourceId(1),
                    items: one.clone(),
                    attrs: vec![2],
                    covers: vec![(item.clone(), vec![2])],
                    batches: 1,
                    est_cost: Cost::new(1.0),
                },
            ],
            missing: Vec::new(),
            planned_cost: Cost::new(2.0),
            lower_bound: 0.0,
        };
        let findings = redundant_fetch_findings(&mutant, &catalog);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "redundant-phase2-fetch");
    }

    #[test]
    fn double_coverage_mutant_fails_certification() {
        let caps = [Capabilities::full(), Capabilities::full()];
        let (sources, network) = world(&caps, &[0..20, 20..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rels = relations(&sources);
        let answer = answer_of(&rels);
        let catalog = CoverageCatalog::from_relations(&schema, &rels, &[true, true]);
        let mut plan = plan_fetch(
            &answer,
            &[1, 2],
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        certify_fetch_plan(&plan, &answer, &catalog, &model).unwrap();
        // Mutant: duplicate the first assignment — every pair it covers
        // is now covered twice.
        let dup = plan.assignments[0].clone();
        plan.assignments.push(dup);
        let err = certify_fetch_plan(&plan, &answer, &catalog, &model).unwrap_err();
        assert!(err.to_string().contains("times"), "{err}");
    }

    #[test]
    fn undercut_lower_bound_mutant_fails_certification() {
        let caps = [Capabilities::full()];
        let (sources, network) = world(&caps, &[0..40]);
        let model = model_of(&sources, &network);
        let schema = dmv_schema();
        let rel = Relation::from_rows(schema.clone(), global_rows(40));
        let answer = rel.distinct_items();
        let catalog = CoverageCatalog::from_relations(&schema, &[rel.clone()], &[true]);
        let mut plan = plan_fetch(
            &answer,
            &[1, 2],
            &catalog,
            &model,
            schema.arity(),
            &ItemSet::empty(),
        );
        plan.lower_bound = plan.planned_cost.value() * 2.0;
        assert!(certify_fetch_plan(&plan, &answer, &catalog, &model).is_err());
    }
}
