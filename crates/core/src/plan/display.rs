//! Rendering plans in the paper's notation.

use super::{Plan, Step};
use fusion_types::Condition;
use std::fmt;

impl Plan {
    /// Renders one step in the paper's notation, with a custom renderer
    /// for condition references.
    fn render_step(&self, step: &Step, cond_str: &dyn Fn(usize) -> String) -> String {
        match step {
            Step::Sq { out, cond, source } => format!(
                "{} := sq({}, R{})",
                self.var_name(*out),
                cond_str(cond.0),
                source.0 + 1
            ),
            Step::Sjq {
                out,
                cond,
                source,
                input,
            } => format!(
                "{} := sjq({}, R{}, {})",
                self.var_name(*out),
                cond_str(cond.0),
                source.0 + 1,
                self.var_name(*input)
            ),
            Step::SjqBloom {
                out,
                cond,
                source,
                input,
                bits,
            } => format!(
                "{} := sjq({}, R{}, bloom({}, {}b))",
                self.var_name(*out),
                cond_str(cond.0),
                source.0 + 1,
                self.var_name(*input),
                bits
            ),
            Step::Lq { out, source } => {
                format!("{} := lq(R{})", self.rel_name(*out), source.0 + 1)
            }
            Step::LocalSq { out, cond, rel } => format!(
                "{} := sq({}, {})",
                self.var_name(*out),
                cond_str(cond.0),
                self.rel_name(*rel)
            ),
            Step::Union { out, inputs } => format!(
                "{} := {}",
                self.var_name(*out),
                inputs
                    .iter()
                    .map(|v| self.var_name(*v).to_string())
                    .collect::<Vec<_>>()
                    .join(" ∪ ")
            ),
            Step::Intersect { out, inputs } => format!(
                "{} := {}",
                self.var_name(*out),
                inputs
                    .iter()
                    .map(|v| self.var_name(*v).to_string())
                    .collect::<Vec<_>>()
                    .join(" ∩ ")
            ),
            Step::Diff { out, left, right } => format!(
                "{} := {} − {}",
                self.var_name(*out),
                self.var_name(*left),
                self.var_name(*right)
            ),
        }
    }

    /// Renders the whole plan as a numbered listing (conditions shown
    /// symbolically: `c1`, `c2`, ...).
    pub fn listing(&self) -> String {
        self.listing_with(&|i| format!("c{}", i + 1))
    }

    /// Renders the plan with conditions spelled out, e.g.
    /// `sq(V = 'dui', R1)`.
    pub fn listing_verbose(&self, conditions: &[Condition]) -> String {
        self.listing_with(&|i| conditions[i].to_string())
    }

    fn listing_with(&self, cond_str: &dyn Fn(usize) -> String) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "{}) {}\n",
                i + 1,
                self.render_step(step, cond_str)
            ));
        }
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.listing())
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::{SimplePlanSpec, SourceChoice};
    use fusion_types::{CondId, Predicate};

    #[test]
    fn figure_2a_listing() {
        // The filter plan of Figure 2(a), regenerated verbatim.
        let plan = SimplePlanSpec::filter(3, 2).build(2).unwrap();
        assert_eq!(
            plan.listing(),
            "\
1) X11 := sq(c1, R1)
2) X12 := sq(c1, R2)
3) X1 := X11 ∪ X12
4) X21 := sq(c2, R1)
5) X22 := sq(c2, R2)
6) X2 := X21 ∪ X22
7) X2 := X2 ∩ X1
8) X31 := sq(c3, R1)
9) X32 := sq(c3, R2)
10) X3 := X31 ∪ X32
11) X3 := X3 ∩ X2
"
        );
    }

    #[test]
    fn figure_2b_listing() {
        // The semijoin plan of Figure 2(b). (The paper prints step 10 as
        // `X3 := X2 ∩ X3`; intersection is commutative and we render the
        // current round's union first.)
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1), CondId(2)],
            choices: vec![
                vec![SourceChoice::Selection; 2],
                vec![SourceChoice::Semijoin; 2],
                vec![SourceChoice::Selection; 2],
            ],
        };
        assert_eq!(
            spec.build(2).unwrap().listing(),
            "\
1) X11 := sq(c1, R1)
2) X12 := sq(c1, R2)
3) X1 := X11 ∪ X12
4) X21 := sjq(c2, R1, X1)
5) X22 := sjq(c2, R2, X1)
6) X2 := X21 ∪ X22
7) X31 := sq(c3, R1)
8) X32 := sq(c3, R2)
9) X3 := X31 ∪ X32
10) X3 := X3 ∩ X2
"
        );
    }

    #[test]
    fn figure_2c_listing() {
        // The semijoin-adaptive plan of Figure 2(c).
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1), CondId(2)],
            choices: vec![
                vec![SourceChoice::Selection; 2],
                vec![SourceChoice::Semijoin, SourceChoice::Selection],
                vec![SourceChoice::Selection; 2],
            ],
        };
        assert_eq!(
            spec.build(2).unwrap().listing(),
            "\
1) X11 := sq(c1, R1)
2) X12 := sq(c1, R2)
3) X1 := X11 ∪ X12
4) X21 := sjq(c2, R1, X1)
5) X22 := sq(c2, R2)
6) X2 := X21 ∪ X22
7) X2 := X2 ∩ X1
8) X31 := sq(c3, R1)
9) X32 := sq(c3, R2)
10) X3 := X31 ∪ X32
11) X3 := X3 ∩ X2
"
        );
    }

    #[test]
    fn verbose_listing_spells_conditions() {
        let plan = SimplePlanSpec::filter(1, 1).build(1).unwrap();
        let conds = vec![Predicate::eq("V", "dui").into()];
        let text = plan.listing_verbose(&conds);
        assert!(text.contains("sq(V = 'dui', R1)"), "got: {text}");
    }
}
