//! Structural validation of plans.

use super::{Plan, Step};
use fusion_types::error::{FusionError, Result};

impl Plan {
    /// Checks structural well-formedness:
    ///
    /// * every item-set / relation variable is defined exactly once
    ///   (plans are single-assignment internally; the paper's reuse of
    ///   names like `X_2` is display-level only);
    /// * every use is preceded by its definition;
    /// * condition and source indexes are within `n_conditions` /
    ///   `n_sources`;
    /// * unions and intersections have at least one operand;
    /// * set differences have distinct operands (`X − X` is a constant
    ///   empty set, never a meaningful plan step);
    /// * Bloom semijoins ship a filter of at least one bit per item;
    /// * the result variable is defined.
    ///
    /// # Errors
    /// Returns [`FusionError::InvalidPlan`] describing the first defect.
    pub fn validate(&self) -> Result<()> {
        let mut var_defined = vec![false; self.var_names.len()];
        let mut rel_defined = vec![false; self.rel_names.len()];
        for (i, step) in self.steps.iter().enumerate() {
            let stepno = i + 1;
            // Uses first (a step may not read its own output).
            for used in step.used_vars() {
                if used.0 >= var_defined.len() || !var_defined[used.0] {
                    return Err(FusionError::invalid_plan(format!(
                        "step {stepno} uses undefined variable #{}",
                        used.0
                    )));
                }
            }
            if let Step::LocalSq { rel, .. } = step {
                if rel.0 >= rel_defined.len() || !rel_defined[rel.0] {
                    return Err(FusionError::invalid_plan(format!(
                        "step {stepno} uses unloaded relation #{}",
                        rel.0
                    )));
                }
            }
            // Index ranges.
            match step {
                Step::Sq { cond, source, .. }
                | Step::Sjq { cond, source, .. }
                | Step::SjqBloom { cond, source, .. } => {
                    if cond.0 >= self.n_conditions {
                        return Err(FusionError::invalid_plan(format!(
                            "step {stepno} references condition c{} of {}",
                            cond.0 + 1,
                            self.n_conditions
                        )));
                    }
                    if source.0 >= self.n_sources {
                        return Err(FusionError::invalid_plan(format!(
                            "step {stepno} references source R{} of {}",
                            source.0 + 1,
                            self.n_sources
                        )));
                    }
                }
                Step::Lq { source, .. } => {
                    if source.0 >= self.n_sources {
                        return Err(FusionError::invalid_plan(format!(
                            "step {stepno} loads source R{} of {}",
                            source.0 + 1,
                            self.n_sources
                        )));
                    }
                }
                Step::LocalSq { cond, .. } => {
                    if cond.0 >= self.n_conditions {
                        return Err(FusionError::invalid_plan(format!(
                            "step {stepno} references condition c{} of {}",
                            cond.0 + 1,
                            self.n_conditions
                        )));
                    }
                }
                Step::Union { inputs, .. } | Step::Intersect { inputs, .. } => {
                    if inputs.is_empty() {
                        return Err(FusionError::invalid_plan(format!(
                            "step {stepno} has no operands"
                        )));
                    }
                }
                Step::Diff { left, right, .. } => {
                    // X − X is the empty set for every input: a plan
                    // computing it cannot mean the fusion answer, and no
                    // legitimate transformation emits it.
                    if left == right {
                        return Err(FusionError::invalid_plan(format!(
                            "step {stepno} subtracts {} from itself",
                            self.var_name(*left)
                        )));
                    }
                }
            }
            if let Step::SjqBloom { bits, .. } = step {
                if *bits == 0 {
                    return Err(FusionError::invalid_plan(format!(
                        "step {stepno} ships a zero-bit Bloom filter"
                    )));
                }
            }
            // Definitions.
            if let Some(out) = step.defined_var() {
                if out.0 >= var_defined.len() {
                    return Err(FusionError::invalid_plan(format!(
                        "step {stepno} defines out-of-range variable #{}",
                        out.0
                    )));
                }
                if var_defined[out.0] {
                    return Err(FusionError::invalid_plan(format!(
                        "step {stepno} redefines variable {}",
                        self.var_name(out)
                    )));
                }
                var_defined[out.0] = true;
            }
            if let Step::Lq { out, .. } = step {
                if out.0 >= rel_defined.len() {
                    return Err(FusionError::invalid_plan(format!(
                        "step {stepno} defines out-of-range relation #{}",
                        out.0
                    )));
                }
                if rel_defined[out.0] {
                    return Err(FusionError::invalid_plan(format!(
                        "step {stepno} reloads relation {}",
                        self.rel_name(*out)
                    )));
                }
                rel_defined[out.0] = true;
            }
        }
        if self.result.0 >= var_defined.len() || !var_defined[self.result.0] {
            return Err(FusionError::invalid_plan(
                "result variable is never defined",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::{Plan, SimplePlanSpec, Step, VarId};
    use fusion_types::{CondId, SourceId};

    fn valid_plan() -> Plan {
        SimplePlanSpec::filter(2, 2).build(2).unwrap()
    }

    #[test]
    fn built_plans_validate() {
        valid_plan().validate().unwrap();
    }

    #[test]
    fn use_before_def_rejected() {
        let mut p = valid_plan();
        // Prepend a union of a variable defined later.
        let bad = p.fresh_var("BAD");
        p.steps.insert(
            0,
            Step::Union {
                out: bad,
                inputs: vec![VarId(0)],
            },
        );
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("undefined variable"));
    }

    #[test]
    fn redefinition_rejected() {
        let mut p = valid_plan();
        p.steps.push(Step::Sq {
            out: VarId(0),
            cond: CondId(0),
            source: SourceId(0),
        });
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("redefines"));
    }

    #[test]
    fn out_of_range_condition_rejected() {
        let mut p = valid_plan();
        let v = p.fresh_var("Y");
        p.steps.push(Step::Sq {
            out: v,
            cond: CondId(99),
            source: SourceId(0),
        });
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("condition"));
    }

    #[test]
    fn out_of_range_source_rejected() {
        let mut p = valid_plan();
        let v = p.fresh_var("Y");
        p.steps.push(Step::Sq {
            out: v,
            cond: CondId(0),
            source: SourceId(99),
        });
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("source"));
    }

    #[test]
    fn empty_union_rejected() {
        let mut p = valid_plan();
        let v = p.fresh_var("Y");
        p.steps.push(Step::Union {
            out: v,
            inputs: vec![],
        });
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("no operands"));
    }

    #[test]
    fn undefined_result_rejected() {
        let mut p = valid_plan();
        p.result = p.fresh_var("NEVER");
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("result variable"));
    }

    #[test]
    fn self_difference_rejected() {
        let mut p = valid_plan();
        let v = p.fresh_var("Y");
        p.steps.push(Step::Diff {
            out: v,
            left: p.result,
            right: p.result,
        });
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("from itself"), "{err}");
    }

    #[test]
    fn proper_difference_accepted() {
        let mut p = valid_plan();
        let v = p.fresh_var("Y");
        p.steps.push(Step::Diff {
            out: v,
            left: VarId(0),
            right: p.result,
        });
        p.validate().unwrap();
    }

    #[test]
    fn zero_bit_bloom_rejected() {
        let mut p = valid_plan();
        let v = p.fresh_var("Y");
        p.steps.push(Step::SjqBloom {
            out: v,
            cond: CondId(0),
            source: SourceId(0),
            input: VarId(0),
            bits: 0,
        });
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("zero-bit"), "{err}");
    }

    #[test]
    fn unloaded_relation_rejected() {
        let mut p = valid_plan();
        let v = p.fresh_var("Y");
        let r = p.fresh_rel("T1");
        p.steps.push(Step::LocalSq {
            out: v,
            cond: CondId(0),
            rel: r,
        });
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("unloaded relation"));
    }
}
