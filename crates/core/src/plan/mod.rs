//! The plan language of §2.3 (simple plans) and §4 (extended operations).
//!
//! Plans are ANF-style step lists `X_k := op(...)` over single-assignment
//! item-set variables, mirroring the paper's notation one-to-one so that
//! the worked examples of Figures 2 and 5 can be regenerated verbatim.

mod build;
mod display;
mod validate;

pub use build::SimplePlanSpec;

use fusion_types::{CondId, SourceId};

/// An item-set variable (`X`, `X_1`, `X_21`, ... in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// A loaded-relation variable (`T_j` after `lq(R_j)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelVar(pub usize);

/// Per-source strategy for one condition in a semijoin(-adaptive) plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceChoice {
    /// Evaluate the condition at this source with a selection query.
    Selection,
    /// Evaluate it with a semijoin query over the running item set.
    Semijoin,
}

/// One plan step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `X := sq(c, R)` — selection query at a source (§2.1).
    Sq {
        /// Defined variable.
        out: VarId,
        /// The condition pushed to the source.
        cond: CondId,
        /// The source queried.
        source: SourceId,
    },
    /// `X := sjq(c, R, Y)` — semijoin query at a source (§2.1).
    Sjq {
        /// Defined variable.
        out: VarId,
        /// The condition evaluated.
        cond: CondId,
        /// The source queried.
        source: SourceId,
        /// The semijoin set shipped to the source.
        input: VarId,
    },
    /// `X := sjq(c, R, bloom(Y))` — Bloom-filter semijoin (extension):
    /// ships a hash-bit filter of `Y` instead of `Y` itself and receives a
    /// *superset* of the exact semijoin, which the plan re-intersects with
    /// `Y` in a following step.
    SjqBloom {
        /// Defined variable (the raw superset).
        out: VarId,
        /// The condition evaluated.
        cond: CondId,
        /// The source queried.
        source: SourceId,
        /// The semijoin set the filter is built from.
        input: VarId,
        /// Filter density in bits per item.
        bits: u8,
    },
    /// `T := lq(R)` — load the entire source (§4).
    Lq {
        /// Defined relation variable.
        out: RelVar,
        /// The source loaded.
        source: SourceId,
    },
    /// `X := sq(c, T)` — local application of a condition to a loaded
    /// source (§4; zero cost at the mediator).
    LocalSq {
        /// Defined variable.
        out: VarId,
        /// The condition applied locally.
        cond: CondId,
        /// The loaded relation.
        rel: RelVar,
    },
    /// `X := Y_1 ∪ ... ∪ Y_k` — local union (§2.3).
    Union {
        /// Defined variable.
        out: VarId,
        /// Operands, in order.
        inputs: Vec<VarId>,
    },
    /// `X := Y_1 ∩ ... ∩ Y_k` — local intersection (§2.3).
    Intersect {
        /// Defined variable.
        out: VarId,
        /// Operands, in order.
        inputs: Vec<VarId>,
    },
    /// `X := Y − Z` — local set difference (§4, SJA+ only).
    Diff {
        /// Defined variable.
        out: VarId,
        /// Minuend.
        left: VarId,
        /// Subtrahend.
        right: VarId,
    },
}

impl Step {
    /// The item-set variable this step defines, if any (`Lq` defines a
    /// relation variable instead).
    pub fn defined_var(&self) -> Option<VarId> {
        match self {
            Step::Sq { out, .. }
            | Step::Sjq { out, .. }
            | Step::SjqBloom { out, .. }
            | Step::LocalSq { out, .. }
            | Step::Union { out, .. }
            | Step::Intersect { out, .. }
            | Step::Diff { out, .. } => Some(*out),
            Step::Lq { .. } => None,
        }
    }

    /// The item-set variables this step reads.
    pub fn used_vars(&self) -> Vec<VarId> {
        match self {
            Step::Sq { .. } | Step::Lq { .. } | Step::LocalSq { .. } => vec![],
            Step::Sjq { input, .. } | Step::SjqBloom { input, .. } => vec![*input],
            Step::Union { inputs, .. } | Step::Intersect { inputs, .. } => inputs.clone(),
            Step::Diff { left, right, .. } => vec![*left, *right],
        }
    }

    /// The source this step contacts, if it is a remote operation.
    pub fn source(&self) -> Option<SourceId> {
        match self {
            Step::Sq { source, .. }
            | Step::Sjq { source, .. }
            | Step::SjqBloom { source, .. }
            | Step::Lq { source, .. } => Some(*source),
            _ => None,
        }
    }

    /// True if this step costs money under the paper's model (remote
    /// operations only; local `∪`/`∩`/`−`/local selection are free, §2.4).
    pub fn is_remote(&self) -> bool {
        self.source().is_some()
    }
}

/// Classification of a plan within the paper's taxonomy (§2.5, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanClass {
    /// Only selection queries and local `∪`/`∩` (§2.5, class 1).
    Filter,
    /// Condition-at-a-time with a uniform per-condition choice between
    /// selection and semijoin queries (§2.5, class 2).
    Semijoin,
    /// Condition-at-a-time with per-condition *and per-source* choices
    /// (§2.5, class 3).
    SemijoinAdaptive,
    /// Uses the extended operations of §4 (`lq`, local selection, `−`):
    /// outside the space of simple plans.
    Extended,
}

impl std::fmt::Display for PlanClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlanClass::Filter => "filter",
            PlanClass::Semijoin => "semijoin",
            PlanClass::SemijoinAdaptive => "semijoin-adaptive",
            PlanClass::Extended => "extended",
        };
        write!(f, "{s}")
    }
}

/// A fusion query plan: a step list computing one result variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The steps, in execution order.
    pub steps: Vec<Step>,
    /// The variable holding the query answer after the last step.
    pub result: VarId,
    /// Number of query conditions `m` the plan serves.
    pub n_conditions: usize,
    /// Number of sources `n` the plan may contact.
    pub n_sources: usize,
    /// Display names per item-set variable (`X1`, `X21`, ...). Indexed by
    /// `VarId`; generated names are used for unnamed variables.
    pub var_names: Vec<String>,
    /// Display names per relation variable (`T3`, ...).
    pub rel_names: Vec<String>,
}

impl Plan {
    /// Creates a plan, generating default display names.
    pub fn new(steps: Vec<Step>, result: VarId, n_conditions: usize, n_sources: usize) -> Plan {
        let mut n_vars = 0usize;
        let mut n_rels = 0usize;
        for s in &steps {
            if let Some(v) = s.defined_var() {
                n_vars = n_vars.max(v.0 + 1);
            }
            if let Step::Lq { out, .. } = s {
                n_rels = n_rels.max(out.0 + 1);
            }
        }
        let var_names = (0..n_vars).map(|i| format!("X{i}")).collect();
        let rel_names = (0..n_rels).map(|i| format!("T{i}")).collect();
        Plan {
            steps,
            result,
            n_conditions,
            n_sources,
            var_names,
            rel_names,
        }
    }

    /// Fresh item-set variable, extending the name table.
    pub fn fresh_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.var_names.len());
        self.var_names.push(name.into());
        id
    }

    /// Fresh relation variable, extending the name table.
    pub fn fresh_rel(&mut self, name: impl Into<String>) -> RelVar {
        let id = RelVar(self.rel_names.len());
        self.rel_names.push(name.into());
        id
    }

    /// The display name of an item-set variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0]
    }

    /// The display name of a relation variable.
    pub fn rel_name(&self, r: RelVar) -> &str {
        &self.rel_names[r.0]
    }

    /// Number of remote operations (the steps that cost money).
    pub fn remote_ops(&self) -> usize {
        self.steps.iter().filter(|s| s.is_remote()).count()
    }

    /// Number of steps of each remote kind `(sq, sjq, lq)`.
    pub fn remote_op_counts(&self) -> (usize, usize, usize) {
        let mut sq = 0;
        let mut sjq = 0;
        let mut lq = 0;
        for s in &self.steps {
            match s {
                Step::Sq { .. } => sq += 1,
                Step::Sjq { .. } => sjq += 1,
                Step::Lq { .. } => lq += 1,
                _ => {}
            }
        }
        (sq, sjq, lq)
    }

    /// Classifies the plan in the paper's taxonomy.
    ///
    /// A plan is *extended* if it uses `lq`, local selection, or set
    /// difference. Otherwise it is *filter* if it has no semijoin queries.
    /// Otherwise, it is *semijoin* when, for every condition, either all
    /// its source queries are selections or all are semijoins, and
    /// *semijoin-adaptive* when some condition mixes the two.
    pub fn class(&self) -> PlanClass {
        let mut has_sjq = false;
        for s in &self.steps {
            match s {
                Step::Lq { .. }
                | Step::LocalSq { .. }
                | Step::Diff { .. }
                | Step::SjqBloom { .. } => {
                    return PlanClass::Extended;
                }
                Step::Sjq { .. } => has_sjq = true,
                _ => {}
            }
        }
        if !has_sjq {
            return PlanClass::Filter;
        }
        // Per condition: the set of remote query kinds used.
        let mut kinds: Vec<(bool, bool)> = vec![(false, false); self.n_conditions];
        for s in &self.steps {
            match s {
                Step::Sq { cond, .. } => kinds[cond.0].0 = true,
                Step::Sjq { cond, .. } => kinds[cond.0].1 = true,
                _ => {}
            }
        }
        if kinds.iter().any(|&(sel, semi)| sel && semi) {
            PlanClass::SemijoinAdaptive
        } else {
            PlanClass::Semijoin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built miniature: 1 condition, 2 sources, filter shape.
    fn tiny_filter() -> Plan {
        Plan::new(
            vec![
                Step::Sq {
                    out: VarId(0),
                    cond: CondId(0),
                    source: SourceId(0),
                },
                Step::Sq {
                    out: VarId(1),
                    cond: CondId(0),
                    source: SourceId(1),
                },
                Step::Union {
                    out: VarId(2),
                    inputs: vec![VarId(0), VarId(1)],
                },
            ],
            VarId(2),
            1,
            2,
        )
    }

    #[test]
    fn defined_and_used_vars() {
        let s = Step::Sjq {
            out: VarId(3),
            cond: CondId(1),
            source: SourceId(0),
            input: VarId(2),
        };
        assert_eq!(s.defined_var(), Some(VarId(3)));
        assert_eq!(s.used_vars(), vec![VarId(2)]);
        assert!(s.is_remote());
        let u = Step::Union {
            out: VarId(4),
            inputs: vec![VarId(0), VarId(1)],
        };
        assert!(!u.is_remote());
        let lq = Step::Lq {
            out: RelVar(0),
            source: SourceId(1),
        };
        assert_eq!(lq.defined_var(), None);
        assert_eq!(lq.source(), Some(SourceId(1)));
    }

    #[test]
    fn classification() {
        assert_eq!(tiny_filter().class(), PlanClass::Filter);

        let mut semi = tiny_filter();
        semi.n_conditions = 2;
        let v3 = semi.fresh_var("X3");
        let v4 = semi.fresh_var("X4");
        let v5 = semi.fresh_var("X5");
        semi.steps.push(Step::Sjq {
            out: v3,
            cond: CondId(1),
            source: SourceId(0),
            input: VarId(2),
        });
        semi.steps.push(Step::Sjq {
            out: v4,
            cond: CondId(1),
            source: SourceId(1),
            input: VarId(2),
        });
        semi.steps.push(Step::Union {
            out: v5,
            inputs: vec![v3, v4],
        });
        semi.result = v5;
        assert_eq!(semi.class(), PlanClass::Semijoin);

        // Make condition 2 mixed: replace second sjq by sq.
        let mut adaptive = semi.clone();
        adaptive.steps[4] = Step::Sq {
            out: v4,
            cond: CondId(1),
            source: SourceId(1),
        };
        assert_eq!(adaptive.class(), PlanClass::SemijoinAdaptive);

        // Any extended op forces Extended.
        let mut ext = semi.clone();
        let t = ext.fresh_rel("T1");
        ext.steps.push(Step::Lq {
            out: t,
            source: SourceId(0),
        });
        assert_eq!(ext.class(), PlanClass::Extended);
    }

    #[test]
    fn op_counts() {
        let p = tiny_filter();
        assert_eq!(p.remote_ops(), 2);
        assert_eq!(p.remote_op_counts(), (2, 0, 0));
    }

    #[test]
    fn default_names() {
        let p = tiny_filter();
        assert_eq!(p.var_name(VarId(0)), "X0");
        assert_eq!(p.var_name(VarId(2)), "X2");
    }
}
