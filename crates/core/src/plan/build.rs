//! Building plans from condition-at-a-time specifications.

use super::{Plan, SourceChoice, Step, VarId};
use fusion_types::error::{FusionError, Result};
use fusion_types::{CondId, SourceId};

/// The shape of a condition-at-a-time simple plan: an ordering of the
/// conditions plus, for every round after the first, a per-source choice
/// between selection and semijoin queries.
///
/// This is exactly the decision space of the SJ and SJA algorithms
/// (Figures 3 and 4): a *semijoin plan* constrains every round to a uniform
/// choice, a *semijoin-adaptive plan* does not, and a *filter plan* chooses
/// selection everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplePlanSpec {
    /// The processing order `[c_{o_1}, ..., c_{o_m}]`.
    pub order: Vec<CondId>,
    /// `choices[r][j]`: the strategy for round `r` at source `j`.
    /// `choices[0]` must be all [`SourceChoice::Selection`] — "the first
    /// condition in a semijoin plan is always evaluated by selection
    /// queries" (§2.5).
    pub choices: Vec<Vec<SourceChoice>>,
}

impl SimplePlanSpec {
    /// The filter-plan specification: identity order, selections only.
    pub fn filter(m: usize, n: usize) -> SimplePlanSpec {
        SimplePlanSpec {
            order: (0..m).map(CondId).collect(),
            choices: vec![vec![SourceChoice::Selection; n]; m],
        }
    }

    /// The all-semijoin specification: identity order, selections in
    /// round 0 (§2.5 requires it), semijoin queries everywhere after.
    pub fn all_semijoin(m: usize, n: usize) -> SimplePlanSpec {
        SimplePlanSpec {
            order: (0..m).map(CondId).collect(),
            choices: (0..m)
                .map(|r| {
                    let choice = if r == 0 {
                        SourceChoice::Selection
                    } else {
                        SourceChoice::Semijoin
                    };
                    vec![choice; n]
                })
                .collect(),
        }
    }

    /// Number of rounds (= conditions).
    pub fn rounds(&self) -> usize {
        self.order.len()
    }

    /// Checks the structural invariants of the specification.
    ///
    /// # Errors
    /// Fails when the order is not a permutation, the choice matrix shape
    /// is wrong, or round 0 contains a semijoin choice.
    pub fn validate(&self, n_sources: usize) -> Result<()> {
        let m = self.order.len();
        if m == 0 {
            return Err(FusionError::invalid_plan("empty condition order"));
        }
        let mut seen = vec![false; m];
        for c in &self.order {
            if c.0 >= m || seen[c.0] {
                return Err(FusionError::invalid_plan(format!(
                    "order is not a permutation of 0..{m}"
                )));
            }
            seen[c.0] = true;
        }
        if self.choices.len() != m {
            return Err(FusionError::invalid_plan(format!(
                "expected {m} choice rounds, got {}",
                self.choices.len()
            )));
        }
        for (r, row) in self.choices.iter().enumerate() {
            if row.len() != n_sources {
                return Err(FusionError::invalid_plan(format!(
                    "round {r} has {} choices for {n_sources} sources",
                    row.len()
                )));
            }
        }
        if self.choices[0].contains(&SourceChoice::Semijoin) {
            return Err(FusionError::invalid_plan(
                "the first round must use selection queries only",
            ));
        }
        Ok(())
    }

    /// Emits the plan for this specification, with paper-style variable
    /// names (`X11`, `X1`, ...).
    ///
    /// Round `r ≥ 1` producing per-source sets `X_rj` combines them as the
    /// paper's figures do: `X_r := ∪_j X_rj` followed by
    /// `X_r := X_r ∩ X_{r-1}` — the intersection omitted when every source
    /// used a semijoin query (each `X_rj` is then already a subset of
    /// `X_{r-1}`, cf. Figure 2(b)).
    ///
    /// # Errors
    /// Propagates [`SimplePlanSpec::validate`] failures.
    pub fn build(&self, n_sources: usize) -> Result<Plan> {
        self.validate(n_sources)?;
        let m = self.order.len();
        let mut plan = Plan {
            steps: Vec::new(),
            result: VarId(0),
            n_conditions: m,
            n_sources,
            var_names: Vec::new(),
            rel_names: Vec::new(),
        };
        let mut prev: Option<VarId> = None;
        for (r, &cond) in self.order.iter().enumerate() {
            let round_no = r + 1;
            let mut per_source = Vec::with_capacity(n_sources);
            let all_semijoin = self.choices[r].iter().all(|c| *c == SourceChoice::Semijoin);
            for j in 0..n_sources {
                let out = plan.fresh_var(format!("X{round_no}{}", j + 1));
                let step = match self.choices[r][j] {
                    SourceChoice::Selection => Step::Sq {
                        out,
                        cond,
                        source: SourceId(j),
                    },
                    SourceChoice::Semijoin => Step::Sjq {
                        out,
                        cond,
                        source: SourceId(j),
                        input: prev.expect("validated: round 0 has no semijoins"),
                    },
                };
                plan.steps.push(step);
                per_source.push(out);
            }
            let union_out = plan.fresh_var(format!("X{round_no}"));
            plan.steps.push(Step::Union {
                out: union_out,
                inputs: per_source,
            });
            let round_result = match prev {
                Some(p) if !all_semijoin => {
                    let inter = plan.fresh_var(format!("X{round_no}"));
                    plan.steps.push(Step::Intersect {
                        out: inter,
                        inputs: vec![union_out, p],
                    });
                    inter
                }
                _ => union_out,
            };
            prev = Some(round_result);
        }
        plan.result = prev.expect("at least one round");
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanClass;

    #[test]
    fn filter_spec_builds_figure2a_shape() {
        // 3 conditions, 2 sources → 11 steps as in Figure 2(a).
        let plan = SimplePlanSpec::filter(3, 2).build(2).unwrap();
        assert_eq!(plan.steps.len(), 11);
        assert_eq!(plan.class(), PlanClass::Filter);
        assert_eq!(plan.remote_op_counts(), (6, 0, 0));
        plan.validate().unwrap();
    }

    #[test]
    fn all_semijoin_round_skips_intersection() {
        // Figure 2(b): c2 by semijoins (no ∩ after), c3 by selections
        // (∩ after) → 10 steps.
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1), CondId(2)],
            choices: vec![
                vec![SourceChoice::Selection; 2],
                vec![SourceChoice::Semijoin; 2],
                vec![SourceChoice::Selection; 2],
            ],
        };
        let plan = spec.build(2).unwrap();
        assert_eq!(plan.steps.len(), 10);
        assert_eq!(plan.class(), PlanClass::Semijoin);
        plan.validate().unwrap();
    }

    #[test]
    fn mixed_round_is_adaptive_with_intersection() {
        // Figure 2(c): c2 mixed (sjq at R1, sq at R2) → 11 steps.
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1), CondId(2)],
            choices: vec![
                vec![SourceChoice::Selection; 2],
                vec![SourceChoice::Semijoin, SourceChoice::Selection],
                vec![SourceChoice::Selection; 2],
            ],
        };
        let plan = spec.build(2).unwrap();
        assert_eq!(plan.steps.len(), 11);
        assert_eq!(plan.class(), PlanClass::SemijoinAdaptive);
        plan.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_specs() {
        // Not a permutation.
        let bad = SimplePlanSpec {
            order: vec![CondId(0), CondId(0)],
            choices: vec![vec![SourceChoice::Selection]; 2],
        };
        assert!(bad.validate(1).is_err());
        // Semijoin in round 0.
        let bad = SimplePlanSpec {
            order: vec![CondId(0)],
            choices: vec![vec![SourceChoice::Semijoin]],
        };
        assert!(bad.validate(1).is_err());
        // Wrong row width.
        let bad = SimplePlanSpec {
            order: vec![CondId(0)],
            choices: vec![vec![SourceChoice::Selection; 3]],
        };
        assert!(bad.validate(2).is_err());
        // Empty.
        let bad = SimplePlanSpec {
            order: vec![],
            choices: vec![],
        };
        assert!(bad.validate(2).is_err());
    }

    #[test]
    fn non_identity_order_uses_round_names() {
        let spec = SimplePlanSpec {
            order: vec![CondId(1), CondId(0)],
            choices: vec![vec![SourceChoice::Selection; 2]; 2],
        };
        let plan = spec.build(2).unwrap();
        // First round evaluates c2 but the variable is named X11.
        assert_eq!(plan.var_name(VarId(0)), "X11");
        match &plan.steps[0] {
            Step::Sq { cond, .. } => assert_eq!(*cond, CondId(1)),
            other => panic!("expected Sq, got {other:?}"),
        }
        plan.validate().unwrap();
    }
}
