//! The FILTER, SJ, and SJA optimization algorithms (§3) and the greedy
//! variants of the extended version \[24\].
//!
//! All four run in time **linear in the number of sources** — the property
//! the paper stresses for Internet-scale integration — and (for SJ/SJA)
//! factorial in the number of conditions, which "in most realistic
//! scenarios ... is acceptable since the number of conditions (unlike the
//! number of sources) is usually small".

mod adaptive;
mod bnb;
mod filter;
mod greedy;
mod memo;
pub mod perm;
mod response;
mod sj;
mod sja;

pub use adaptive::{adaptive_next, NextRound};
pub use bnb::{sj_branch_and_bound, sja_branch_and_bound, BnbStats};
pub use filter::filter_plan;
pub use greedy::{greedy_sj, greedy_sja};
pub use memo::{MemoKey, MemoStats, ReoptMemo, SuffixPlan};
pub use response::{estimate_makespan, sja_response_optimal, ResponseOptimized};
pub use sj::sj_optimal;
pub use sja::sja_optimal;

use crate::cost::CostModel;
use crate::plan::{Plan, SimplePlanSpec, SourceChoice};
use fusion_types::{CondId, Cost, SourceId};

/// The best ordering found so far during search: the condition order,
/// per-round choices, total cost, and per-round size estimates.
pub(crate) type BestOrdering = (Vec<usize>, Vec<Vec<SourceChoice>>, Cost, Vec<f64>);

/// Tie-breaking rule shared by the exhaustive and branch-and-bound
/// searches: strictly cheaper wins, and costs tied within float noise
/// fall back to the lexicographically smaller ordering. Sharing the rule
/// makes both searches return byte-identical plans even when several
/// orderings are equally cheap (e.g. when every round picks selections
/// and the total is order-independent).
pub(crate) fn improves(cost: Cost, order: &[usize], best_cost: Cost, best_order: &[usize]) -> bool {
    let tol = ordering_tie_tolerance(best_cost);
    if cost.value() < best_cost.value() - tol {
        return true;
    }
    (cost.value() - best_cost.value()).abs() <= tol && order < best_order
}

/// Absolute cost tolerance under which two orderings count as tied.
pub(crate) fn ordering_tie_tolerance(best_cost: Cost) -> f64 {
    if best_cost.is_finite() {
        1e-12 * best_cost.value().abs().max(1.0)
    } else {
        0.0
    }
}

/// The output of an optimization algorithm: the chosen plan, the
/// specification it was built from, and its estimated cost.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The executable plan.
    pub plan: Plan,
    /// The condition-at-a-time shape the plan was built from.
    pub spec: SimplePlanSpec,
    /// The optimizer's cost estimate for the plan.
    pub cost: Cost,
    /// Estimated `|X_r|` after each round, in processing order.
    pub round_sizes: Vec<f64>,
}

impl OptimizedPlan {
    /// Builds the plan for `spec` and packages it with its cost.
    ///
    /// # Panics
    /// Panics if the spec fails validation — optimizers only produce valid
    /// specs, so this indicates an internal bug.
    pub fn from_spec(
        spec: SimplePlanSpec,
        cost: Cost,
        round_sizes: Vec<f64>,
        n_sources: usize,
    ) -> OptimizedPlan {
        let plan = spec
            .build(n_sources)
            .expect("optimizer produced an invalid spec");
        debug_assert!(
            crate::analyze::analyze_plan(&plan).is_ok_and(|a| a.verdict().is_proved()),
            "optimizer emitted a semantically unsound plan:\n{}",
            plan.listing()
        );
        OptimizedPlan {
            plan,
            spec,
            cost,
            round_sizes,
        }
    }
}

/// Evaluates the cost of one ordering under SJ's *uniform* per-round rule.
/// Returns the round choices, total cost, and per-round size estimates.
pub(crate) fn cost_ordering_sj<M: CostModel>(
    model: &M,
    order: &[usize],
) -> (Vec<Vec<SourceChoice>>, Cost, Vec<f64>) {
    let n = model.n_sources();
    let mut choices = Vec::with_capacity(order.len());
    let mut sizes = Vec::with_capacity(order.len());
    let first = CondId(order[0]);
    let mut cost: Cost = (0..n).map(|j| model.sq_cost(first, SourceId(j))).sum();
    choices.push(vec![SourceChoice::Selection; n]);
    let mut x_est = model.est_condition_union(first);
    sizes.push(x_est);
    for &o in &order[1..] {
        let cond = CondId(o);
        let sel_total: Cost = (0..n).map(|j| model.sq_cost(cond, SourceId(j))).sum();
        let semi_total: Cost = (0..n)
            .map(|j| model.sjq_cost(cond, SourceId(j), x_est))
            .sum();
        if sel_total < semi_total {
            cost += sel_total;
            choices.push(vec![SourceChoice::Selection; n]);
        } else {
            cost += semi_total;
            choices.push(vec![SourceChoice::Semijoin; n]);
        }
        x_est *= model.gsel(cond);
        sizes.push(x_est);
    }
    (choices, cost, sizes)
}

/// Evaluates the cost of one ordering under SJA's *per-source* rule (the
/// "source loop" of Figure 4).
pub(crate) fn cost_ordering_sja<M: CostModel>(
    model: &M,
    order: &[usize],
) -> (Vec<Vec<SourceChoice>>, Cost, Vec<f64>) {
    let n = model.n_sources();
    let mut choices = Vec::with_capacity(order.len());
    let mut sizes = Vec::with_capacity(order.len());
    let first = CondId(order[0]);
    let mut cost: Cost = (0..n).map(|j| model.sq_cost(first, SourceId(j))).sum();
    choices.push(vec![SourceChoice::Selection; n]);
    let mut x_est = model.est_condition_union(first);
    sizes.push(x_est);
    for &o in &order[1..] {
        let cond = CondId(o);
        let mut row = Vec::with_capacity(n);
        for j in 0..n {
            let sq = model.sq_cost(cond, SourceId(j));
            let sjq = model.sjq_cost(cond, SourceId(j), x_est);
            if sq < sjq {
                cost += sq;
                row.push(SourceChoice::Selection);
            } else {
                cost += sjq;
                row.push(SourceChoice::Semijoin);
            }
        }
        choices.push(row);
        x_est *= model.gsel(cond);
        sizes.push(x_est);
    }
    (choices, cost, sizes)
}

/// Prices a plan *suffix* under SJA's per-source rule, given the observed
/// running-set size `x0` at the splice point.
///
/// Unlike [`cost_ordering_sja`], *every* round — including the suffix's
/// first — chooses per source between a fresh selection and a semijoin
/// against the running set, because a running set already exists when a
/// mid-flight re-optimization fires (§2.5's "first condition always by
/// selection queries" applies only to the very first round of a query).
/// Returns the per-round choices, the suffix cost, and the estimated
/// `|X|` after each suffix round.
pub fn cost_suffix_sja<M: CostModel>(
    model: &M,
    order: &[usize],
    x0: f64,
) -> (Vec<Vec<SourceChoice>>, Cost, Vec<f64>) {
    let n = model.n_sources();
    let mut choices = Vec::with_capacity(order.len());
    let mut sizes = Vec::with_capacity(order.len());
    let mut cost = Cost::ZERO;
    let mut x_est = x0;
    for &o in order {
        let cond = CondId(o);
        let mut row = Vec::with_capacity(n);
        for j in 0..n {
            let sq = model.sq_cost(cond, SourceId(j));
            let sjq = model.sjq_cost(cond, SourceId(j), x_est);
            if sq < sjq {
                cost += sq;
                row.push(SourceChoice::Selection);
            } else {
                cost += sjq;
                row.push(SourceChoice::Semijoin);
            }
        }
        choices.push(row);
        x_est *= model.gsel(cond);
        sizes.push(x_est);
    }
    (choices, cost, sizes)
}

/// Prices a *fixed* suffix — rounds whose source choices are already
/// locked in — under `model`, from the observed running-set size `x0`.
///
/// This is how the re-optimizer values the plan it is already executing:
/// the remaining rounds' choices cannot be revisited without a switch, so
/// their cost is whatever the (recalibrated) model says those exact
/// choices will pay.
pub fn price_suffix<M: CostModel>(
    model: &M,
    order: &[usize],
    choices: &[Vec<SourceChoice>],
    x0: f64,
) -> Cost {
    assert_eq!(order.len(), choices.len(), "suffix order/choices mismatch");
    let mut cost = Cost::ZERO;
    let mut x_est = x0;
    for (&o, row) in order.iter().zip(choices) {
        let cond = CondId(o);
        for (j, choice) in row.iter().enumerate() {
            cost += match choice {
                SourceChoice::Selection => model.sq_cost(cond, SourceId(j)),
                SourceChoice::Semijoin => model.sjq_cost(cond, SourceId(j), x_est),
            };
        }
        x_est *= model.gsel(cond);
    }
    cost
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::cost::TableCostModel;

    /// A 3-condition, 2-source model where semijoins pay off for the
    /// second condition only at the first source — staged to make SJA
    /// produce the Figure 2(c) plan.
    ///
    /// Costs are arranged so that every ordering starting with `c1` ties
    /// (semijoin costs are input-independent) and orderings starting with
    /// `c2` or `c3` are strictly worse; the exact search keeps the first
    /// tied ordering it visits, which under Heap's enumeration is the
    /// identity `[c1, c2, c3]` — the figure's ordering.
    pub fn figure2_model() -> TableCostModel {
        use fusion_types::{CondId, SourceId};
        let mut m = TableCostModel::uniform(3, 2, 10.0, 100.0, 10.0, 1e6, 5.0, 1000.0);
        // c1 is the most selective condition and cheap to push.
        m.set_est_sq_items(CondId(0), SourceId(0), 3.0);
        m.set_est_sq_items(CondId(0), SourceId(1), 3.0);
        // c2 at R1: selection is dear, the semijoin is flat and cheap.
        m.set_sq_cost(CondId(1), SourceId(0), 50.0);
        m.set_sjq_cost(CondId(1), SourceId(0), 1.0, 0.0);
        // c2 at R2 and c3 everywhere keep the default punitive semijoin
        // (base 100), so selections win there.
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;

    #[test]
    fn sj_and_sja_agree_on_uniform_models() {
        // With identical sources, per-source choice degenerates to the
        // uniform choice: both algorithms must find equal-cost plans
        // (up to float summation order).
        let model = TableCostModel::uniform(3, 4, 10.0, 1.0, 0.1, 1e9, 20.0, 500.0);
        let (_, sj_cost, _) = cost_ordering_sj(&model, &[0, 1, 2]);
        let (_, sja_cost, _) = cost_ordering_sja(&model, &[0, 1, 2]);
        assert!((sj_cost.value() - sja_cost.value()).abs() < 1e-9 * sj_cost.value());
    }

    #[test]
    fn sja_never_worse_than_sj_per_ordering() {
        let model = testutil::figure2_model();
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let (_, sj_cost, _) = cost_ordering_sj(&model, &order);
            let (_, sja_cost, _) = cost_ordering_sja(&model, &order);
            assert!(sja_cost <= sj_cost, "order {order:?}");
        }
    }

    #[test]
    fn round_sizes_shrink_with_selective_conditions() {
        let model = TableCostModel::uniform(3, 2, 10.0, 1.0, 0.1, 1e9, 5.0, 1000.0);
        let (_, _, sizes) = cost_ordering_sja(&model, &[0, 1, 2]);
        assert_eq!(sizes.len(), 3);
        assert!(sizes[0] > sizes[1] && sizes[1] > sizes[2]);
    }

    #[test]
    fn infinite_semijoin_forces_selection() {
        let mut model = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 1e9, 5.0, 100.0);
        model.set_sjq_cost(CondId(1), SourceId(0), f64::INFINITY, 0.0);
        model.set_sjq_cost(CondId(1), SourceId(1), f64::INFINITY, 0.0);
        let (choices, cost, _) = cost_ordering_sja(&model, &[0, 1]);
        assert!(cost.is_finite());
        assert_eq!(choices[1], vec![SourceChoice::Selection; 2]);
    }
}
