//! Branch-and-bound SJ and SJA: the exact optimum without visiting all
//! `m!` orderings.
//!
//! The paper accepts the factorial ordering enumeration because "the
//! number of conditions ... is usually small". When it is not, the greedy
//! variant trades optimality for speed. Branch-and-bound keeps exactness:
//! orderings are explored as a prefix tree, every prefix is priced
//! incrementally (the same loop-B arithmetic as Figures 3 and 4), and a
//! subtree is pruned as soon as its prefix cost plus an *admissible*
//! completion bound reaches the best complete plan found so far. The
//! bound comes from the static dataflow pass
//! ([`remaining_cost_lower_bound`]): each unplaced condition must still
//! pay, per source, at least the cheaper of its selection cost and its
//! semijoin cost at the most-shrunk running set it could possibly see —
//! an underestimate by the §2.4 monotonicity axiom, so pruning on it
//! preserves exactness for both the uniform (SJ) and per-source (SJA)
//! round rules.
//!
//! Seeding the bound with the greedy plan (already near-optimal in
//! practice, E7) makes typical-case pruning drastic while the worst case
//! stays `O(m!·n)`.
//!
//! [`remaining_cost_lower_bound`]: crate::dataflow::remaining_cost_lower_bound

use super::greedy::{greedy_sj, greedy_sja};
use super::{cost_ordering_sj, cost_ordering_sja, OptimizedPlan};
use crate::cost::CostModel;
use crate::dataflow::remaining_cost_lower_bound;
use crate::plan::SimplePlanSpec;
use fusion_types::{CondId, Cost, SourceId};

/// Search statistics, for the E/B benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct BnbStats {
    /// Ordering prefixes priced (each costs `O(n)`).
    pub prefixes_explored: usize,
    /// Subtrees cut by the bound.
    pub prunes: usize,
}

impl BnbStats {
    /// Prefixes a full enumeration of `m` conditions prices:
    /// `Σ_{k=1..m} m!/(m−k)!`.
    pub fn exhaustive_prefixes(m: usize) -> usize {
        let mut total = 0usize;
        let mut partial = 1usize;
        for k in 0..m {
            partial *= m - k;
            total += partial;
        }
        total
    }
}

/// How a round is priced from the running-set estimate — the only
/// difference between the SJ (Figure 3, uniform) and SJA (Figure 4,
/// per-source) search spaces.
#[derive(Clone, Copy)]
enum RoundRule {
    Uniform,
    PerSource,
}

impl RoundRule {
    fn price<M: CostModel>(self, model: &M, n: usize, cond: CondId, x_est: Option<f64>) -> Cost {
        let Some(k) = x_est else {
            // First round: selections everywhere, under both rules.
            return (0..n).map(|j| model.sq_cost(cond, SourceId(j))).sum();
        };
        match self {
            RoundRule::Uniform => {
                let sel: Cost = (0..n).map(|j| model.sq_cost(cond, SourceId(j))).sum();
                let semi: Cost = (0..n).map(|j| model.sjq_cost(cond, SourceId(j), k)).sum();
                sel.min(semi)
            }
            RoundRule::PerSource => (0..n)
                .map(|j| {
                    model
                        .sq_cost(cond, SourceId(j))
                        .min(model.sjq_cost(cond, SourceId(j), k))
                })
                .sum(),
        }
    }
}

/// Exact SJA via branch-and-bound over condition orderings.
///
/// Produces a plan with the same cost as [`sja_optimal`] (possibly a
/// different, equally cheap ordering), usually visiting a tiny fraction
/// of the `m!` orderings.
///
/// [`sja_optimal`]: super::sja_optimal
///
/// # Panics
/// Panics if the model has no conditions.
pub fn sja_branch_and_bound<M: CostModel>(model: &M) -> (OptimizedPlan, BnbStats) {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    let seed = greedy_sja(model);
    let (best_order, stats) = search(model, RoundRule::PerSource, &seed);
    let (choices, cost, sizes) = cost_ordering_sja(model, &best_order);
    let spec = SimplePlanSpec {
        order: best_order.into_iter().map(CondId).collect(),
        choices,
    };
    (
        OptimizedPlan::from_spec(spec, cost, sizes, model.n_sources()),
        stats,
    )
}

/// Exact SJ via branch-and-bound over condition orderings.
///
/// Produces a plan with the same cost as [`sj_optimal`] under the same
/// admissible bound as the SJA search: the uniform round price
/// `min(Σ sq, Σ sjq)` never drops below the per-source sum of minima,
/// which in turn never drops below the bound's pricing at the
/// most-shrunk running set.
///
/// [`sj_optimal`]: super::sj_optimal
///
/// # Panics
/// Panics if the model has no conditions.
pub fn sj_branch_and_bound<M: CostModel>(model: &M) -> (OptimizedPlan, BnbStats) {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    let seed = greedy_sj(model);
    let (best_order, stats) = search(model, RoundRule::Uniform, &seed);
    let (choices, cost, sizes) = cost_ordering_sj(model, &best_order);
    let spec = SimplePlanSpec {
        order: best_order.into_iter().map(CondId).collect(),
        choices,
    };
    (
        OptimizedPlan::from_spec(spec, cost, sizes, model.n_sources()),
        stats,
    )
}

/// Runs the bounded DFS seeded with a greedy plan; returns the winning
/// ordering and the search statistics.
fn search<M: CostModel>(
    model: &M,
    rule: RoundRule,
    seed: &OptimizedPlan,
) -> (Vec<usize>, BnbStats) {
    let m = model.n_conditions();
    let mut best_cost = seed.cost;
    let mut best_order: Vec<usize> = seed.spec.order.iter().map(|c| c.0).collect();
    let mut stats = BnbStats::default();
    let mut prefix: Vec<usize> = Vec::with_capacity(m);
    let mut used = vec![false; m];
    dfs(
        model,
        rule,
        &mut prefix,
        &mut used,
        Cost::ZERO,
        None,
        &mut best_cost,
        &mut best_order,
        &mut stats,
    );
    (best_order, stats)
}

/// Extends `prefix` by every unused condition, pricing incrementally.
/// `x_est` is `Some(|X|)` after the prefix's rounds, `None` for an empty
/// prefix.
#[allow(clippy::too_many_arguments)] // DFS state is naturally wide
fn dfs<M: CostModel>(
    model: &M,
    rule: RoundRule,
    prefix: &mut Vec<usize>,
    used: &mut [bool],
    prefix_cost: Cost,
    x_est: Option<f64>,
    best_cost: &mut Cost,
    best_order: &mut Vec<usize>,
    stats: &mut BnbStats,
) {
    let m = used.len();
    let n = model.n_sources();
    for cond_idx in 0..m {
        if used[cond_idx] {
            continue;
        }
        let cond = CondId(cond_idx);
        stats.prefixes_explored += 1;
        let cost = prefix_cost + rule.price(model, n, cond, x_est);
        let next_x = match x_est {
            None => model.est_condition_union(cond),
            Some(k) => k * model.gsel(cond),
        };
        let bound = cost + remaining_cost_lower_bound(model, used, cond_idx, next_x);
        // Prune strictly-worse subtrees only: a subtree whose bound ties
        // the incumbent may still hold an equally cheap ordering that the
        // shared tie-break (lexicographically smaller order) prefers, and
        // exactness-with-identical-tie-breaking requires visiting it.
        if bound.value() > best_cost.value() + super::ordering_tie_tolerance(*best_cost) {
            stats.prunes += 1;
            continue;
        }
        prefix.push(cond_idx);
        used[cond_idx] = true;
        if prefix.len() == m {
            if super::improves(cost, prefix, *best_cost, best_order) {
                *best_cost = (*best_cost).min(cost);
                best_order.clone_from(prefix);
            }
        } else {
            dfs(
                model,
                rule,
                prefix,
                used,
                cost,
                Some(next_x),
                best_cost,
                best_order,
                stats,
            );
        }
        used[cond_idx] = false;
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::{sj_optimal, sja_optimal};
    use fusion_stats::SplitMix64;

    fn random_model(m: usize, n: usize, seed: u64) -> TableCostModel {
        let mut rng = SplitMix64::new(seed);
        let mut model = TableCostModel::uniform(m, n, 1.0, 1.0, 0.1, 1e6, 1.0, 300.0);
        for i in 0..m {
            for j in 0..n {
                model.set_sq_cost(CondId(i), SourceId(j), 1.0 + 99.0 * rng.next_f64());
                model.set_sjq_cost(
                    CondId(i),
                    SourceId(j),
                    0.5 + 30.0 * rng.next_f64(),
                    2.0 * rng.next_f64(),
                );
                model.set_est_sq_items(CondId(i), SourceId(j), 1.0 + 80.0 * rng.next_f64());
            }
        }
        model
    }

    #[test]
    fn matches_exhaustive_sja_on_random_models() {
        let (mut explored, mut full) = (0usize, 0usize);
        for seed in 0..25u64 {
            for m in 2..=5 {
                let model = random_model(m, 4, 31_000 + seed);
                let exact = sja_optimal(&model);
                let (bnb, stats) = sja_branch_and_bound(&model);
                assert!(
                    (bnb.cost.value() - exact.cost.value()).abs()
                        <= 1e-9 * exact.cost.value().max(1.0),
                    "seed {seed} m {m}: bnb {} vs exact {}",
                    bnb.cost,
                    exact.cost
                );
                // Continuous random costs never tie, so the optimum is
                // unique and the plans must be byte-identical.
                assert_eq!(
                    bnb.plan.listing(),
                    exact.plan.listing(),
                    "seed {seed} m {m}"
                );
                explored += stats.prefixes_explored;
                full += BnbStats::exhaustive_prefixes(m);
                bnb.plan.validate().unwrap();
            }
        }
        // Over the battery the bound must cut real work (individual tiny
        // instances can degenerate to full enumeration).
        assert!(explored < full, "explored {explored} of {full}");
    }

    #[test]
    fn matches_exhaustive_sj_on_random_models() {
        let (mut explored, mut full) = (0usize, 0usize);
        for seed in 0..25u64 {
            for m in 2..=5 {
                let model = random_model(m, 4, 47_000 + seed);
                let exact = sj_optimal(&model);
                let (bnb, stats) = sj_branch_and_bound(&model);
                assert!(
                    (bnb.cost.value() - exact.cost.value()).abs()
                        <= 1e-9 * exact.cost.value().max(1.0),
                    "seed {seed} m {m}: bnb {} vs exact {}",
                    bnb.cost,
                    exact.cost
                );
                assert_eq!(
                    bnb.plan.listing(),
                    exact.plan.listing(),
                    "seed {seed} m {m}"
                );
                explored += stats.prefixes_explored;
                full += BnbStats::exhaustive_prefixes(m);
                bnb.plan.validate().unwrap();
            }
        }
        assert!(explored < full, "explored {explored} of {full}");
    }

    #[test]
    fn strictly_fewer_prefixes_at_sweep_sizes() {
        // The E18 regime: m = 6..8 is where enumeration hurts and the
        // bound must strictly cut the space, for both searches, on every
        // seed.
        for seed in 0..5u64 {
            for m in 6..=7 {
                let model = random_model(m, 4, 88_000 + seed);
                let full = BnbStats::exhaustive_prefixes(m);
                let (_, sja_stats) = sja_branch_and_bound(&model);
                let (_, sj_stats) = sj_branch_and_bound(&model);
                assert!(
                    sja_stats.prefixes_explored < full,
                    "seed {seed} m {m}: SJA explored {} of {full}",
                    sja_stats.prefixes_explored
                );
                assert!(
                    sj_stats.prefixes_explored < full,
                    "seed {seed} m {m}: SJ explored {} of {full}",
                    sj_stats.prefixes_explored
                );
            }
        }
    }

    #[test]
    fn prunes_most_of_the_space() {
        let model = random_model(8, 8, 99);
        let (_, stats) = sja_branch_and_bound(&model);
        // Full enumeration prices Σ_{k=1..8} 8!/(8-k)! = 109,600 prefixes;
        // the bound should cut the vast majority.
        assert_eq!(BnbStats::exhaustive_prefixes(8), 109_600);
        assert!(
            stats.prefixes_explored < 30_000,
            "explored {}",
            stats.prefixes_explored
        );
        assert!(stats.prunes > 0);
    }

    #[test]
    fn single_condition() {
        let model = random_model(1, 3, 7);
        let (bnb, stats) = sja_branch_and_bound(&model);
        assert_eq!(bnb.cost, sja_optimal(&model).cost);
        assert_eq!(stats.prefixes_explored, 1);
        let (bnb_sj, _) = sj_branch_and_bound(&model);
        assert_eq!(bnb_sj.cost, sj_optimal(&model).cost);
    }
}
