//! Branch-and-bound SJA: the exact optimum without visiting all `m!`
//! orderings.
//!
//! The paper accepts SJA's factorial ordering enumeration because "the
//! number of conditions ... is usually small". When it is not, the greedy
//! variant trades optimality for speed. Branch-and-bound keeps exactness:
//! orderings are explored as a prefix tree, every prefix is priced
//! incrementally (the same loop-B arithmetic as Figure 4), and a subtree
//! is pruned as soon as its prefix cost alone reaches the best complete
//! plan found so far — sound because round costs are non-negative (§2.4).
//! Prefix costs and semijoin-set estimates depend only on the prefix, so
//! the incremental state threads naturally through the DFS.
//!
//! Seeding the bound with the greedy plan (already near-optimal in
//! practice, E7) makes typical-case pruning drastic while the worst case
//! stays `O(m!·n)`.

use super::greedy::greedy_sja;
use super::{cost_ordering_sja, OptimizedPlan};
use crate::cost::CostModel;
use crate::plan::SimplePlanSpec;
use fusion_types::{CondId, Cost, SourceId};

/// Search statistics, for the E/B benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct BnbStats {
    /// Ordering prefixes priced (each costs `O(n)`).
    pub prefixes_explored: usize,
    /// Subtrees cut by the bound.
    pub prunes: usize,
}

/// Exact SJA via branch-and-bound over condition orderings.
///
/// Produces a plan with the same cost as [`sja_optimal`] (possibly a
/// different, equally cheap ordering), usually visiting a tiny fraction
/// of the `m!` orderings.
///
/// [`sja_optimal`]: super::sja_optimal
///
/// # Panics
/// Panics if the model has no conditions.
pub fn sja_branch_and_bound<M: CostModel>(model: &M) -> (OptimizedPlan, BnbStats) {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    let m = model.n_conditions();
    let n = model.n_sources();
    // Seed the bound with the greedy plan.
    let seed = greedy_sja(model);
    let mut best_cost = seed.cost;
    let mut best_order: Vec<usize> = seed.spec.order.iter().map(|c| c.0).collect();
    let mut stats = BnbStats::default();
    let mut prefix: Vec<usize> = Vec::with_capacity(m);
    let mut used = vec![false; m];
    dfs(
        model,
        n,
        &mut prefix,
        &mut used,
        Cost::ZERO,
        None,
        &mut best_cost,
        &mut best_order,
        &mut stats,
    );
    // Rebuild the winning plan with the standard pricing pass.
    let (choices, cost, sizes) = cost_ordering_sja(model, &best_order);
    let spec = SimplePlanSpec {
        order: best_order.into_iter().map(CondId).collect(),
        choices,
    };
    (OptimizedPlan::from_spec(spec, cost, sizes, n), stats)
}

/// Extends `prefix` by every unused condition, pricing incrementally.
/// `x_est` is `Some(|X|)` after the prefix's rounds, `None` for an empty
/// prefix.
#[allow(clippy::too_many_arguments)] // DFS state is naturally wide
fn dfs<M: CostModel>(
    model: &M,
    n: usize,
    prefix: &mut Vec<usize>,
    used: &mut [bool],
    prefix_cost: Cost,
    x_est: Option<f64>,
    best_cost: &mut Cost,
    best_order: &mut Vec<usize>,
    stats: &mut BnbStats,
) {
    let m = used.len();
    for cond_idx in 0..m {
        if used[cond_idx] {
            continue;
        }
        let cond = CondId(cond_idx);
        stats.prefixes_explored += 1;
        // Price this round under the prefix (Figure 4's rules).
        let mut round_cost = Cost::ZERO;
        match x_est {
            None => {
                // First round: selections everywhere.
                for j in 0..n {
                    round_cost += model.sq_cost(cond, SourceId(j));
                }
            }
            Some(k) => {
                for j in 0..n {
                    let sq = model.sq_cost(cond, SourceId(j));
                    let sjq = model.sjq_cost(cond, SourceId(j), k);
                    round_cost += sq.min(sjq);
                }
            }
        }
        let cost = prefix_cost + round_cost;
        let next_x = match x_est {
            None => model.est_condition_union(cond),
            Some(k) => k * model.gsel(cond),
        };
        // Admissible bound: every remaining condition still costs at
        // least its per-source minimum at the most-shrunk running set it
        // could possibly see (sjq_cost is monotone in the set size).
        let bound = cost + lower_bound_remaining(model, n, used, cond_idx, next_x);
        if bound >= *best_cost {
            stats.prunes += 1;
            continue;
        }
        prefix.push(cond_idx);
        used[cond_idx] = true;
        if prefix.len() == m {
            // Complete ordering strictly under the bound.
            *best_cost = cost;
            best_order.clone_from(prefix);
        } else {
            dfs(
                model,
                n,
                prefix,
                used,
                cost,
                Some(next_x),
                best_cost,
                best_order,
                stats,
            );
        }
        used[cond_idx] = false;
        prefix.pop();
    }
}

/// Admissible lower bound for the conditions still unplaced after
/// tentatively placing `placing`: each is priced at the per-source
/// minimum of its selection cost and its semijoin cost at `x_min` — the
/// running-set size after *every* other remaining condition has already
/// shrunk it. Monotone `sjq_cost` makes this an underestimate.
fn lower_bound_remaining<M: CostModel>(
    model: &M,
    n: usize,
    used: &[bool],
    placing: usize,
    x_after: f64,
) -> Cost {
    let remaining: Vec<usize> = (0..used.len())
        .filter(|&i| !used[i] && i != placing)
        .collect();
    if remaining.is_empty() {
        return Cost::ZERO;
    }
    let mut x_min = x_after;
    for &u in &remaining {
        x_min *= model.gsel(CondId(u));
    }
    let mut lb = Cost::ZERO;
    for &u in &remaining {
        let cond = CondId(u);
        for j in 0..n {
            let sq = model.sq_cost(cond, SourceId(j));
            let sjq = model.sjq_cost(cond, SourceId(j), x_min);
            lb += sq.min(sjq);
        }
    }
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::sja_optimal;
    use fusion_stats::SplitMix64;

    fn random_model(m: usize, n: usize, seed: u64) -> TableCostModel {
        let mut rng = SplitMix64::new(seed);
        let mut model = TableCostModel::uniform(m, n, 1.0, 1.0, 0.1, 1e6, 1.0, 300.0);
        for i in 0..m {
            for j in 0..n {
                model.set_sq_cost(CondId(i), SourceId(j), 1.0 + 99.0 * rng.next_f64());
                model.set_sjq_cost(
                    CondId(i),
                    SourceId(j),
                    0.5 + 30.0 * rng.next_f64(),
                    2.0 * rng.next_f64(),
                );
                model.set_est_sq_items(CondId(i), SourceId(j), 1.0 + 80.0 * rng.next_f64());
            }
        }
        model
    }

    #[test]
    fn matches_exhaustive_sja_on_random_models() {
        for seed in 0..25u64 {
            for m in 2..=5 {
                let model = random_model(m, 4, 31_000 + seed);
                let exact = sja_optimal(&model);
                let (bnb, _) = sja_branch_and_bound(&model);
                assert!(
                    (bnb.cost.value() - exact.cost.value()).abs()
                        <= 1e-9 * exact.cost.value().max(1.0),
                    "seed {seed} m {m}: bnb {} vs exact {}",
                    bnb.cost,
                    exact.cost
                );
                bnb.plan.validate().unwrap();
            }
        }
    }

    #[test]
    fn prunes_most_of_the_space() {
        let model = random_model(8, 8, 99);
        let (_, stats) = sja_branch_and_bound(&model);
        // Full enumeration prices Σ_{k=1..8} 8!/(8-k)! = 109,600 prefixes;
        // the bound should cut the vast majority.
        assert!(
            stats.prefixes_explored < 30_000,
            "explored {}",
            stats.prefixes_explored
        );
        assert!(stats.prunes > 0);
    }

    #[test]
    fn single_condition() {
        let model = random_model(1, 3, 7);
        let (bnb, stats) = sja_branch_and_bound(&model);
        assert_eq!(bnb.cost, sja_optimal(&model).cost);
        assert_eq!(stats.prefixes_explored, 1);
    }
}
