//! A budgeted, resumable memo over suffix plan-space searches.
//!
//! Mid-flight re-optimization cannot afford a full `m!` search at every
//! stage boundary, and the same suffix sub-problems recur across repeated
//! queries (the workloads the answer cache was built for). Following the
//! optd-style budgeted-exploration idea, [`ReoptMemo`] keys each suffix
//! search by *which conditions remain* (a bitmask) and the observed
//! running-set size (a coarse log-scale bucket) — the same
//! `(source, condition)`-shaped keying the answer cache uses — and stores
//! the search's **suspended DFS stack** plus the best complete ordering
//! found so far. Each invocation spends a bounded number of node
//! expansions and then suspends; the next invocation with the same key
//! *resumes exactly where the last stopped*, so the factorial search is
//! amortized across stage boundaries and across queries.
//!
//! Only *structure* is memoized — prefixes and orderings, never costs.
//! Every invocation re-prices the stored incumbent and every explored
//! prefix under the **current** (feedback-recalibrated) model, so stored
//! state never goes stale when estimates drift. The trade-off is
//! documented rather than hidden: subtrees pruned under an earlier
//! model's bounds are not revisited, so an *exhausted* entry is exact for
//! the model it finished under and a strong heuristic after further
//! drift.

use super::{cost_suffix_sja, improves, ordering_tie_tolerance};
use crate::cost::CostModel;
use crate::dataflow::remaining_cost_lower_bound;
use crate::plan::SourceChoice;
use fusion_types::Cost;
use std::collections::HashMap;

/// A suffix search key: the set of unplaced conditions and the coarse
/// magnitude of the running set feeding them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Bit `i` set ⇔ condition `i` is still unplaced.
    pub mask: u64,
    /// `⌊4·log₂(1 + x₀)⌋`: quarter-octave buckets, so running sets of
    /// similar magnitude share a search while order-of-magnitude changes
    /// (which flip sq/sjq choices) get their own.
    pub x_bucket: u32,
}

impl MemoKey {
    /// Builds the key for a suffix over `remaining` condition indices
    /// with observed running-set size `x0`.
    ///
    /// # Panics
    /// Panics if a condition index is ≥ 64 (the mask is a `u64`; the
    /// paper's regime is "the number of conditions ... is usually small").
    pub fn new(remaining: &[usize], x0: f64) -> MemoKey {
        let mut mask = 0u64;
        for &c in remaining {
            assert!(c < 64, "memo supports at most 64 conditions, got index {c}");
            mask |= 1u64 << c;
        }
        MemoKey {
            mask,
            x_bucket: bucket_of(x0),
        }
    }
}

fn bucket_of(x0: f64) -> u32 {
    let x = x0.max(0.0);
    (4.0 * (1.0 + x).log2()).floor() as u32
}

/// One node of a suspended depth-first search: the ordering prefix chosen
/// so far and the index of the next child (in ascending condition order)
/// to expand.
#[derive(Debug, Clone)]
struct Frame {
    prefix: Vec<usize>,
    next_child: usize,
}

#[derive(Debug, Clone)]
struct MemoEntry {
    /// Suspended DFS stack; empty once the space is drained.
    stack: Vec<Frame>,
    /// Best complete ordering found so far (structure only — re-priced on
    /// every resume).
    best_order: Option<Vec<usize>>,
    /// True once the stack drained: the search visited (or soundly
    /// pruned) the whole suffix space.
    exhausted: bool,
    /// Total expansions charged to this entry across invocations.
    expansions: usize,
}

/// Counters accumulated across a memo's lifetime, for the E23 bench and
/// the `\reopt` CLI verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Search invocations answered.
    pub invocations: usize,
    /// Invocations that found an existing entry to resume.
    pub resumed: usize,
    /// Invocations answered by an already-exhausted entry (no search work
    /// at all — the amortization payoff).
    pub exhausted_hits: usize,
    /// Total node expansions spent.
    pub expansions: usize,
}

/// The re-priced answer of one memo invocation.
#[derive(Debug, Clone)]
pub struct SuffixPlan {
    /// Suffix condition order (indices into the query's conditions).
    pub order: Vec<usize>,
    /// Per-round, per-source choices for the suffix.
    pub choices: Vec<Vec<SourceChoice>>,
    /// Suffix cost under the model the search was invoked with.
    pub cost: Cost,
    /// Estimated `|X|` after each suffix round.
    pub sizes: Vec<f64>,
    /// True when the suffix space is fully drained for this key.
    pub exhausted: bool,
    /// Node expansions spent by *this* invocation.
    pub spent: usize,
}

/// A persistent, budgeted memo of suffix plan-space searches.
#[derive(Debug, Clone)]
pub struct ReoptMemo {
    entries: HashMap<MemoKey, MemoEntry>,
    budget: usize,
    stats: MemoStats,
}

impl ReoptMemo {
    /// A memo spending at most `budget` node expansions per invocation.
    /// A budget of 0 degenerates to "always return the re-priced
    /// incumbent (or the ascending seed)".
    pub fn new(budget: usize) -> ReoptMemo {
        ReoptMemo {
            entries: HashMap::new(),
            budget,
            stats: MemoStats::default(),
        }
    }

    /// The per-invocation expansion budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of distinct suffix sub-problems seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no search has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Searches (or resumes searching) the best SJA suffix over
    /// `remaining` conditions fed by an observed running set of `x0`
    /// items, spending at most the configured budget, then re-prices the
    /// incumbent under `model`.
    ///
    /// Deterministic given (memo state, model, arguments): children are
    /// expanded in ascending condition order and ties break to the
    /// lexicographically smaller ordering, the same rule the offline
    /// optimizers share.
    ///
    /// # Panics
    /// Panics if `remaining` is empty, holds duplicates, or names a
    /// condition the model does not have.
    pub fn search<M: CostModel>(&mut self, model: &M, remaining: &[usize], x0: f64) -> SuffixPlan {
        assert!(!remaining.is_empty(), "nothing to re-optimize");
        let m = model.n_conditions();
        assert!(
            remaining.iter().all(|&c| c < m),
            "suffix names a condition outside the model"
        );
        let key = MemoKey::new(remaining, x0);
        assert_eq!(
            key.mask.count_ones() as usize,
            remaining.len(),
            "suffix holds duplicate conditions"
        );
        let mut cands: Vec<usize> = remaining.to_vec();
        cands.sort_unstable();

        self.stats.invocations += 1;
        let entry = match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.stats.resumed += 1;
                let e = e.into_mut();
                if e.exhausted {
                    self.stats.exhausted_hits += 1;
                }
                e
            }
            std::collections::hash_map::Entry::Vacant(v) => v.insert(MemoEntry {
                stack: vec![Frame {
                    prefix: Vec::new(),
                    next_child: 0,
                }],
                best_order: None,
                exhausted: false,
                expansions: 0,
            }),
        };

        // Re-price the incumbent under the *current* model; seed with the
        // ascending ordering when the entry is fresh so pruning has a
        // finite incumbent from the first expansion.
        let mut best_order = entry.best_order.clone().unwrap_or_else(|| cands.clone());
        let mut best_cost = cost_suffix_sja(model, &best_order, x0).1;

        let mut spent = 0usize;
        while spent < self.budget {
            let Some(top) = entry.stack.last_mut() else {
                break;
            };
            let children: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|c| !top.prefix.contains(c))
                .collect();
            if top.next_child >= children.len() {
                entry.stack.pop();
                continue;
            }
            let cand = children[top.next_child];
            top.next_child += 1;
            spent += 1;

            let mut child = top.prefix.clone();
            child.push(cand);
            // Price the child prefix from scratch under the current
            // model: O(depth·n), the cost of never trusting a stale
            // number.
            let (_, prefix_cost, prefix_sizes) = cost_suffix_sja(model, &child, x0);
            let x_after = *prefix_sizes.last().expect("non-empty prefix");
            if child.len() == cands.len() {
                if improves(prefix_cost, &child, best_cost, &best_order) {
                    best_cost = best_cost.min(prefix_cost);
                    best_order = child;
                }
                continue;
            }
            // Admissible completion bound, shared with the offline B&B:
            // prune only strictly-worse subtrees so tie-breaking stays
            // identical to the exhaustive search.
            let mut used = vec![true; m];
            for &c in &cands {
                used[c] = false;
            }
            for &c in &child {
                used[c] = true;
            }
            let bound = prefix_cost + remaining_cost_lower_bound(model, &used, cand, x_after);
            if bound.value() > best_cost.value() + ordering_tie_tolerance(best_cost) {
                continue;
            }
            entry.stack.push(Frame {
                prefix: child,
                next_child: 0,
            });
        }

        if entry.stack.is_empty() {
            entry.exhausted = true;
        }
        entry.best_order = Some(best_order.clone());
        entry.expansions += spent;
        self.stats.expansions += spent;

        let (choices, cost, sizes) = cost_suffix_sja(model, &best_order, x0);
        SuffixPlan {
            order: best_order,
            choices,
            cost,
            sizes,
            exhausted: entry.exhausted,
            spent,
        }
    }
}

/// Exhaustive reference: the cheapest suffix by brute force, with the
/// shared tie-break. Test-only oracle for the memo.
#[cfg(test)]
fn suffix_exhaustive<M: CostModel>(model: &M, remaining: &[usize], x0: f64) -> (Vec<usize>, Cost) {
    let mut cands: Vec<usize> = remaining.to_vec();
    cands.sort_unstable();
    let mut best_order = cands.clone();
    let mut best_cost = cost_suffix_sja(model, &best_order, x0).1;
    super::perm::for_each_permutation(cands.len(), |perm| {
        let order: Vec<usize> = perm.iter().map(|&i| cands[i]).collect();
        let (_, cost, _) = cost_suffix_sja(model, &order, x0);
        if improves(cost, &order, best_cost, &best_order) {
            best_cost = best_cost.min(cost);
            best_order = order;
        }
    });
    (best_order, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use fusion_stats::SplitMix64;
    use fusion_types::{CondId, SourceId};

    fn random_model(m: usize, n: usize, seed: u64) -> TableCostModel {
        let mut rng = SplitMix64::new(seed);
        let mut model = TableCostModel::uniform(m, n, 1.0, 1.0, 0.1, 1e6, 1.0, 300.0);
        for i in 0..m {
            for j in 0..n {
                model.set_sq_cost(CondId(i), SourceId(j), 1.0 + 99.0 * rng.next_f64());
                model.set_sjq_cost(
                    CondId(i),
                    SourceId(j),
                    0.5 + 30.0 * rng.next_f64(),
                    2.0 * rng.next_f64(),
                );
                model.set_est_sq_items(CondId(i), SourceId(j), 1.0 + 80.0 * rng.next_f64());
            }
        }
        model
    }

    #[test]
    fn exhausted_search_matches_brute_force() {
        for seed in 0..20u64 {
            for m in 2..=5 {
                let model = random_model(m, 3, 51_000 + seed);
                let remaining: Vec<usize> = (0..m).collect();
                let x0 = 10.0 + seed as f64;
                let mut memo = ReoptMemo::new(100_000);
                let got = memo.search(&model, &remaining, x0);
                assert!(got.exhausted, "seed {seed} m {m}");
                let (want_order, want_cost) = suffix_exhaustive(&model, &remaining, x0);
                assert_eq!(got.order, want_order, "seed {seed} m {m}");
                assert!(
                    (got.cost.value() - want_cost.value()).abs()
                        <= 1e-9 * want_cost.value().max(1.0),
                    "seed {seed} m {m}: {} vs {}",
                    got.cost,
                    want_cost
                );
            }
        }
    }

    #[test]
    fn budgeted_resume_reaches_the_same_answer() {
        for seed in 0..10u64 {
            let model = random_model(5, 3, 77_000 + seed);
            let remaining = [0usize, 1, 2, 3, 4];
            let x0 = 25.0;
            let mut one_shot = ReoptMemo::new(1_000_000);
            let want = one_shot.search(&model, &remaining, x0);
            assert!(want.exhausted);

            // Drip-feed the same search 3 expansions at a time.
            let mut dripped = ReoptMemo::new(3);
            let mut got = dripped.search(&model, &remaining, x0);
            let mut rounds = 1;
            while !got.exhausted {
                got = dripped.search(&model, &remaining, x0);
                rounds += 1;
                assert!(rounds < 10_000, "search failed to drain");
            }
            assert_eq!(got.order, want.order, "seed {seed}");
            assert_eq!(got.cost, want.cost, "seed {seed}");
            assert!(rounds > 1, "budget 3 must need multiple invocations");
            let stats = dripped.stats();
            assert_eq!(stats.invocations, rounds);
            assert_eq!(stats.resumed, rounds - 1);
        }
    }

    #[test]
    fn exhausted_entries_answer_for_free() {
        let model = random_model(4, 3, 9);
        let remaining = [0usize, 1, 2, 3];
        let mut memo = ReoptMemo::new(1_000_000);
        let first = memo.search(&model, &remaining, 12.0);
        assert!(first.exhausted && first.spent > 0);
        let again = memo.search(&model, &remaining, 12.0);
        assert_eq!(again.spent, 0, "exhausted entry must not re-search");
        assert_eq!(again.order, first.order);
        assert_eq!(memo.stats().exhausted_hits, 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn distinct_x_magnitudes_get_distinct_entries() {
        let model = random_model(3, 2, 4);
        let mut memo = ReoptMemo::new(1_000_000);
        memo.search(&model, &[0, 1, 2], 2.0);
        memo.search(&model, &[0, 1, 2], 2000.0);
        assert_eq!(memo.len(), 2);
        // Same magnitude lands in the same bucket.
        memo.search(&model, &[0, 1, 2], 2.01);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn repricing_follows_model_drift() {
        // Exhaust the search under model A, then query the same key under
        // model B with very different costs: the returned *cost* must be
        // B's pricing of the stored ordering, never A's stale number.
        let a = random_model(3, 2, 1);
        let mut b = random_model(3, 2, 1);
        for i in 0..3 {
            for j in 0..2 {
                b.set_sq_cost(CondId(i), SourceId(j), 1000.0);
            }
        }
        let mut memo = ReoptMemo::new(1_000_000);
        let under_a = memo.search(&a, &[0, 1, 2], 8.0);
        let under_b = memo.search(&b, &[0, 1, 2], 8.0);
        assert_eq!(under_a.order.len(), under_b.order.len());
        let repriced = cost_suffix_sja(&b, &under_b.order, 8.0).1;
        assert_eq!(under_b.cost, repriced);
        assert!(under_b.cost.value() > under_a.cost.value());
    }

    #[test]
    fn zero_budget_returns_the_seed() {
        let model = random_model(4, 2, 2);
        let mut memo = ReoptMemo::new(0);
        let got = memo.search(&model, &[2, 0, 3], 5.0);
        assert_eq!(got.order, vec![0, 2, 3]);
        assert_eq!(got.spent, 0);
        assert!(!got.exhausted);
    }

    #[test]
    #[should_panic(expected = "nothing to re-optimize")]
    fn empty_suffix_is_rejected() {
        let model = random_model(2, 2, 3);
        ReoptMemo::new(8).search(&model, &[], 1.0);
    }
}
