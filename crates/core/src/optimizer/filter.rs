//! The FILTER algorithm (§3).

use super::OptimizedPlan;
use crate::cost::CostModel;
use crate::plan::SimplePlanSpec;
use fusion_types::{CondId, Cost, SourceId};

/// Produces the optimal filter plan.
///
/// "For a fusion query with m conditions and n sources, the most efficient
/// filter plan is one that issues the mn source queries, pushing each
/// condition to each source" — there is nothing to search: every filter
/// plan issues the same `m·n` selection queries, so FILTER "directly
/// outputs such a plan without searching the plan space" in `O(mn)`.
pub fn filter_plan<M: CostModel>(model: &M) -> OptimizedPlan {
    let m = model.n_conditions();
    let n = model.n_sources();
    let cost: Cost = (0..m)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| model.sq_cost(CondId(i), SourceId(j)))
        .sum();
    let mut sizes = Vec::with_capacity(m);
    let mut x = f64::INFINITY;
    for i in 0..m {
        let u = model.est_condition_union(CondId(i));
        x = if i == 0 { u } else { x * model.gsel(CondId(i)) };
        sizes.push(x);
    }
    OptimizedPlan::from_spec(SimplePlanSpec::filter(m, n), cost, sizes, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::plan::PlanClass;

    #[test]
    fn cost_is_sum_of_all_selection_queries() {
        let model = TableCostModel::uniform(3, 4, 7.0, 1.0, 0.1, 1e9, 5.0, 100.0);
        let opt = filter_plan(&model);
        assert_eq!(opt.cost, Cost::new(3.0 * 4.0 * 7.0));
        assert_eq!(opt.plan.class(), PlanClass::Filter);
        assert_eq!(opt.plan.remote_op_counts(), (12, 0, 0));
        opt.plan.validate().unwrap();
    }

    #[test]
    fn heterogeneous_costs_sum_correctly() {
        let mut model = TableCostModel::uniform(2, 2, 1.0, 1.0, 0.1, 1e9, 5.0, 100.0);
        model.set_sq_cost(CondId(0), SourceId(1), 10.0);
        model.set_sq_cost(CondId(1), SourceId(0), 100.0);
        let opt = filter_plan(&model);
        assert_eq!(opt.cost, Cost::new(1.0 + 10.0 + 100.0 + 1.0));
    }

    #[test]
    fn single_condition_plan() {
        let model = TableCostModel::uniform(1, 3, 2.0, 1.0, 0.1, 1e9, 5.0, 100.0);
        let opt = filter_plan(&model);
        assert_eq!(opt.cost, Cost::new(6.0));
        assert_eq!(opt.round_sizes.len(), 1);
        opt.plan.validate().unwrap();
    }
}
