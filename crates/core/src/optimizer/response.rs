//! Response-time-aware plan selection (§6 future work).
//!
//! "One could also consider minimizing the *response time* of a query in
//! a parallel execution model. This is a future direction of work we plan
//! to undertake." This module implements that direction as a heuristic
//! variant of SJA:
//!
//! * the execution model matches the executor's scheduler
//!   (`fusion_exec::schedule::response_time` — `fusion-core` sits below
//!   the executor, so no intra-doc link): one queue per source, rounds
//!   coupled only through semijoin inputs — *selection* queries of any
//!   round may start immediately, semijoin queries must wait for the
//!   previous round's result;
//! * for every condition ordering, per-source choices greedily minimize
//!   each source's completion time (a selection may beat a cheaper
//!   semijoin because it overlaps with earlier rounds);
//! * the ordering with the smallest estimated makespan wins.
//!
//! Unlike total work, the makespan objective does not decompose per
//! source, so this is a heuristic rather than an exact optimum — the
//! trade the paper's own greedy variants make for tractability.

use super::perm::for_each_permutation;
use super::OptimizedPlan;
use crate::cost::CostModel;
use crate::plan::{SimplePlanSpec, SourceChoice};
use fusion_types::{CondId, Cost, SourceId};

/// The outcome of response-time optimization.
#[derive(Debug, Clone)]
pub struct ResponseOptimized {
    /// The chosen plan (with its estimated *total work* in `cost`).
    pub optimized: OptimizedPlan,
    /// Estimated response time (makespan) of the plan.
    pub est_response_time: f64,
}

/// Evaluates one ordering under the makespan objective, choosing
/// per-source strategies greedily by earliest completion.
fn response_ordering<M: CostModel>(
    model: &M,
    order: &[usize],
) -> (Vec<Vec<SourceChoice>>, Cost, f64, Vec<f64>) {
    let n = model.n_sources();
    let mut choices = Vec::with_capacity(order.len());
    let mut sizes = Vec::with_capacity(order.len());
    let mut source_free = vec![0.0f64; n];
    let mut total = Cost::ZERO;
    // Round 1: selections everywhere (per the plan grammar).
    let first = CondId(order[0]);
    let mut round_done = 0.0f64;
    for (j, free) in source_free.iter_mut().enumerate() {
        let c = model.sq_cost(first, SourceId(j));
        total += c;
        *free += c.value();
        round_done = round_done.max(*free);
    }
    choices.push(vec![SourceChoice::Selection; n]);
    let mut x_est = model.est_condition_union(first);
    sizes.push(x_est);
    let mut prev_avail = round_done;
    for &o in &order[1..] {
        let cond = CondId(o);
        let mut row = Vec::with_capacity(n);
        let mut this_round_done = 0.0f64;
        for (j, free) in source_free.iter_mut().enumerate() {
            let sq = model.sq_cost(cond, SourceId(j));
            let sjq = model.sjq_cost(cond, SourceId(j), x_est);
            // Selections start as soon as the source is free; semijoins
            // additionally wait for the previous round's result.
            let sel_finish = *free + sq.value();
            let semi_finish = free.max(prev_avail) + sjq.value();
            if sel_finish <= semi_finish {
                row.push(SourceChoice::Selection);
                total += sq;
                *free = sel_finish;
            } else {
                row.push(SourceChoice::Semijoin);
                total += sjq;
                *free = semi_finish;
            }
            this_round_done = this_round_done.max(*free);
        }
        choices.push(row);
        // The round result needs every per-source result plus the
        // previous round's set for the intersection.
        prev_avail = this_round_done.max(prev_avail);
        x_est *= model.gsel(cond);
        sizes.push(x_est);
    }
    (choices, total, prev_avail, sizes)
}

/// Estimates the makespan of an explicit condition-at-a-time spec under
/// the same schedule model the optimizer uses: per-source queues,
/// selections free to start immediately, semijoins gated on the previous
/// round's completion.
pub fn estimate_makespan<M: CostModel>(model: &M, spec: &SimplePlanSpec) -> f64 {
    let n = model.n_sources();
    let mut source_free = vec![0.0f64; n];
    let mut prev_avail = 0.0f64;
    let mut x_est = 0.0f64;
    for (r, cond) in spec.order.iter().enumerate() {
        let mut round_done = 0.0f64;
        for (j, free) in source_free.iter_mut().enumerate() {
            let finish = match spec.choices[r][j] {
                SourceChoice::Selection => *free + model.sq_cost(*cond, SourceId(j)).value(),
                SourceChoice::Semijoin => {
                    free.max(prev_avail) + model.sjq_cost(*cond, SourceId(j), x_est).value()
                }
            };
            *free = finish;
            round_done = round_done.max(finish);
        }
        prev_avail = round_done.max(prev_avail);
        x_est = if r == 0 {
            model.est_condition_union(*cond)
        } else {
            x_est * model.gsel(*cond)
        };
    }
    prev_avail
}

/// Finds a low-response-time semijoin-adaptive plan: enumerates condition
/// orderings, schedules each greedily, keeps the smallest makespan
/// (total work as tie-break).
///
/// # Panics
/// Panics if the model has no conditions.
pub fn sja_response_optimal<M: CostModel>(model: &M) -> ResponseOptimized {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    #[allow(clippy::type_complexity)] // order, choices, work, makespan, sizes
    let mut best: Option<(Vec<usize>, Vec<Vec<SourceChoice>>, Cost, f64, Vec<f64>)> = None;
    for_each_permutation(model.n_conditions(), |order| {
        let (choices, total, makespan, sizes) = response_ordering(model, order);
        let better = match &best {
            None => true,
            Some((_, _, btotal, bspan, _)) => {
                makespan < *bspan || (makespan == *bspan && total < *btotal)
            }
        };
        if better {
            best = Some((order.to_vec(), choices, total, makespan, sizes));
        }
    });
    let (order, choices, total, makespan, sizes) = best.expect("m >= 1");
    let spec = SimplePlanSpec {
        order: order.into_iter().map(CondId).collect(),
        choices,
    };
    ResponseOptimized {
        optimized: OptimizedPlan::from_spec(spec, total, sizes, model.n_sources()),
        est_response_time: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::sja_optimal;

    fn model() -> TableCostModel {
        let mut m = TableCostModel::uniform(3, 4, 10.0, 1.0, 0.1, 1e9, 5.0, 1000.0);
        // One very slow source: its queries dominate the critical path.
        for c in 0..3 {
            m.set_sq_cost(CondId(c), SourceId(3), 40.0);
            m.set_sjq_cost(CondId(c), SourceId(3), 20.0, 0.1);
        }
        m
    }

    #[test]
    fn produces_valid_plans() {
        let rt = sja_response_optimal(&model());
        rt.optimized.plan.validate().unwrap();
        assert!(rt.est_response_time > 0.0);
        assert!(rt.optimized.cost.is_finite());
    }

    #[test]
    fn makespan_not_worse_than_work_optimal_plans() {
        // The RT optimizer's estimated makespan must be ≤ the makespan of
        // the work-optimal plan evaluated under the same schedule model.
        let m = model();
        let rt = sja_response_optimal(&m);
        let work = sja_optimal(&m);
        // Re-evaluate the work-optimal spec under the makespan model.
        let order: Vec<usize> = work.spec.order.iter().map(|c| c.0).collect();
        let (_, _, work_span, _) = response_ordering(&m, &order);
        assert!(
            rt.est_response_time <= work_span + 1e-9,
            "rt {} vs work-optimal's span {}",
            rt.est_response_time,
            work_span
        );
    }

    #[test]
    fn rt_plan_trades_work_for_latency_when_profitable() {
        // Make semijoins cheap in work but serializing: RT should prefer
        // selections at the slow source even though they cost more work.
        let m = model();
        let rt = sja_response_optimal(&m);
        let work = sja_optimal(&m);
        assert!(
            rt.optimized.cost >= work.cost,
            "RT plan can only trade work away"
        );
    }

    #[test]
    fn single_condition_is_parallel_selections() {
        let m = TableCostModel::uniform(1, 3, 7.0, 1.0, 0.1, 1e9, 5.0, 100.0);
        let rt = sja_response_optimal(&m);
        assert_eq!(rt.est_response_time, 7.0, "all three run in parallel");
        assert_eq!(rt.optimized.cost, Cost::new(21.0));
    }
}
