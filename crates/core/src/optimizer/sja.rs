//! The SJA algorithm (Figure 4): optimal semijoin-adaptive plans.

use super::perm::for_each_permutation;
use super::{cost_ordering_sja, BestOrdering, OptimizedPlan};
use crate::cost::CostModel;
use crate::plan::SimplePlanSpec;
use fusion_types::CondId;

/// Finds the optimal *semijoin-adaptive plan* (§2.5 class 3).
///
/// Implements Figure 4 literally: like [`sj_optimal`], but the inner
/// "source loop" makes an independent selection-vs-semijoin decision for
/// each source. Despite the adaptive space being exponentially larger
/// (`O(m!·2^{n(m-2)})` plans vs `O(m!·2^{m-2})`), the per-source decisions
/// decompose, so the complexity stays `O(m!·m·n)` — and the optimal
/// semijoin-adaptive plan "is always at least as good as, and often much
/// better than, the optimal semijoin plan".
///
/// [`sj_optimal`]: super::sj_optimal
///
/// # Panics
/// Panics if the model has no conditions.
pub fn sja_optimal<M: CostModel>(model: &M) -> OptimizedPlan {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    let mut best: Option<BestOrdering> = None;
    for_each_permutation(model.n_conditions(), |order| {
        let (choices, cost, sizes) = cost_ordering_sja(model, order);
        if best
            .as_ref()
            .is_none_or(|(o, _, c, _)| super::improves(cost, order, *c, o))
        {
            best = Some((order.to_vec(), choices, cost, sizes));
        }
    });
    let (order, choices, cost, sizes) = best.expect("m >= 1 yields at least one ordering");
    let spec = SimplePlanSpec {
        order: order.into_iter().map(CondId).collect(),
        choices,
    };
    OptimizedPlan::from_spec(spec, cost, sizes, model.n_sources())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::testutil::figure2_model;
    use crate::optimizer::{filter_plan, sj_optimal};
    use crate::plan::{PlanClass, SourceChoice};
    use fusion_types::Cost;
    use fusion_types::SourceId;

    #[test]
    fn sja_dominates_sj_dominates_filter() {
        let models = [
            figure2_model(),
            TableCostModel::uniform(3, 3, 10.0, 2.0, 0.05, 1e9, 8.0, 50.0),
            TableCostModel::uniform(4, 2, 5.0, 1.0, 0.2, 1e9, 3.0, 40.0),
        ];
        // Dominance up to float summation order.
        let le = |a: Cost, b: Cost| a.value() <= b.value() * (1.0 + 1e-12) + 1e-12;
        for m in models {
            let f = filter_plan(&m).cost;
            let sj = sj_optimal(&m).cost;
            let sja = sja_optimal(&m).cost;
            assert!(le(sja, sj), "SJA {sja} should not exceed SJ {sj}");
            assert!(le(sj, f), "SJ {sj} should not exceed FILTER {f}");
        }
    }

    #[test]
    fn sja_strictly_beats_sj_on_heterogeneous_sources() {
        // figure2_model makes semijoin the right call for c2 at R1 only;
        // SJ must pick one uniform strategy and lose.
        let m = figure2_model();
        let sj = sj_optimal(&m).cost;
        let sja = sja_optimal(&m).cost;
        assert!(sja < sj, "expected strict win, got SJA={sja} SJ={sj}");
    }

    #[test]
    fn sja_reproduces_figure_2c_shape() {
        // Under the staged model, the optimal adaptive plan processes
        // c1, c2, c3 in order, semijoins c2 at R1 only, and selects
        // everywhere else — exactly Figure 2(c).
        let opt = sja_optimal(&figure2_model());
        assert_eq!(
            opt.spec.order,
            vec![CondId(0), CondId(1), CondId(2)],
            "expected the figure's ordering"
        );
        assert_eq!(
            opt.spec.choices[1],
            vec![SourceChoice::Semijoin, SourceChoice::Selection]
        );
        assert_eq!(opt.spec.choices[2], vec![SourceChoice::Selection; 2]);
        assert_eq!(opt.plan.class(), PlanClass::SemijoinAdaptive);
        opt.plan.validate().unwrap();
    }

    #[test]
    fn per_source_choice_follows_local_costs() {
        // Two conditions, 4 sources: c1 is cheap and selective, c2 is dear
        // to push and its semijoin is profitable at even sources only.
        let mut m = TableCostModel::uniform(2, 4, 10.0, 1.0, 0.1, 1e9, 5.0, 1000.0);
        for s in 0..4 {
            m.set_sq_cost(CondId(1), SourceId(s), 30.0);
            m.set_est_sq_items(CondId(1), SourceId(s), 50.0);
        }
        for s in [1usize, 3] {
            m.set_sjq_cost(CondId(1), SourceId(s), 50.0, 0.1);
        }
        let opt = sja_optimal(&m);
        // Ordering [c1, c2]: ~19.9-item input; sjq even ≈ 3 < 30 < sjq odd.
        assert_eq!(opt.spec.order[0], CondId(0));
        assert_eq!(
            opt.spec.choices[1],
            vec![
                SourceChoice::Semijoin,
                SourceChoice::Selection,
                SourceChoice::Semijoin,
                SourceChoice::Selection
            ]
        );
    }

    #[test]
    fn m_equals_two_symmetric_conditions() {
        // With two identical conditions both orderings tie; SJA must still
        // produce a valid plan with the semijoin on the second round.
        let m = TableCostModel::uniform(2, 2, 20.0, 1.0, 0.1, 1e9, 4.0, 100.0);
        let opt = sja_optimal(&m);
        assert_eq!(opt.spec.choices[1], vec![SourceChoice::Semijoin; 2]);
        // Cost = 2·20 + 2·(1 + 0.1·|X1|), |X1| = 100(1-(1-.04)²) ≈ 7.84.
        assert!((opt.cost.value() - (40.0 + 2.0 * (1.0 + 0.784))).abs() < 1e-6);
    }
}
