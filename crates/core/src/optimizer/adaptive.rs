//! Round-at-a-time planning for mid-query re-optimization.
//!
//! The SJA algorithm commits to a full plan using estimated semijoin-set
//! sizes chained under the independence assumption. When conditions are
//! correlated those estimates drift (see experiment E13), and the chosen
//! strategies can be wrong for the *actual* running set. The era's remedy
//! (Kabra & DeWitt, SIGMOD 1998) is mid-query re-optimization: execute
//! one round, observe the real cardinality, re-plan the rest.
//!
//! [`adaptive_next`] is the planning half: given the conditions still to
//! process and the *observed* size of the running item set, it searches
//! all orderings of the remainder (the same loop-A search as Figure 4,
//! seeded with truth instead of an estimate) and returns the first round
//! of the best one. The executor in `fusion-exec` calls it once per
//! round.

use crate::cost::CostModel;
use crate::optimizer::perm::for_each_permutation;
use crate::plan::SourceChoice;
use fusion_types::{CondId, Cost, SourceId};

/// The recommended next round.
#[derive(Debug, Clone)]
pub struct NextRound {
    /// The condition to evaluate next.
    pub cond: CondId,
    /// Per-source strategy for it.
    pub choices: Vec<SourceChoice>,
    /// Estimated cost of this round alone.
    pub round_cost: Cost,
    /// Estimated cost of the whole remainder under the chosen ordering.
    pub remainder_cost: Cost,
    /// Predicted `|X|` after this round (to compare against reality).
    pub predicted_size: f64,
}

/// Plans the next round: searches every ordering of `remaining`, chaining
/// cardinalities from the observed `current_items` (or from scratch when
/// `None`, i.e. the first round), and returns the best ordering's first
/// round.
///
/// When `current_items` is `Some`, every source may independently choose
/// between a selection and a semijoin against the *actual* running set —
/// including for the condition processed first, which plain SJA cannot do
/// (its first round is always selections because no set exists yet).
///
/// # Panics
/// Panics if `remaining` is empty.
pub fn adaptive_next<M: CostModel>(
    model: &M,
    remaining: &[CondId],
    current_items: Option<f64>,
) -> NextRound {
    assert!(!remaining.is_empty(), "nothing left to plan");
    let n = model.n_sources();
    let mut best: Option<NextRound> = None;
    for_each_permutation(remaining.len(), |perm| {
        let order: Vec<CondId> = perm.iter().map(|&i| remaining[i]).collect();
        let mut total = Cost::ZERO;
        let mut first_round: Option<(Vec<SourceChoice>, Cost, f64)> = None;
        let mut x = current_items;
        for (r, &cond) in order.iter().enumerate() {
            let mut round_cost = Cost::ZERO;
            let mut choices = Vec::with_capacity(n);
            for j in 0..n {
                let sq = model.sq_cost(cond, SourceId(j));
                let choice_cost = match x {
                    None => {
                        choices.push(SourceChoice::Selection);
                        sq
                    }
                    Some(k) => {
                        let sjq = model.sjq_cost(cond, SourceId(j), k);
                        if sq < sjq {
                            choices.push(SourceChoice::Selection);
                            sq
                        } else {
                            choices.push(SourceChoice::Semijoin);
                            sjq
                        }
                    }
                };
                round_cost += choice_cost;
            }
            let next_x = match x {
                None => model.est_condition_union(cond),
                Some(k) => k * model.gsel(cond),
            };
            total += round_cost;
            if r == 0 {
                first_round = Some((choices, round_cost, next_x));
            }
            x = Some(next_x);
        }
        let (choices, round_cost, predicted_size) = first_round.expect("non-empty order");
        if best.as_ref().is_none_or(|b| total < b.remainder_cost) {
            best = Some(NextRound {
                cond: order[0],
                choices,
                round_cost,
                remainder_cost: total,
                predicted_size,
            });
        }
    });
    best.expect("at least one ordering")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::sja_optimal;

    fn model() -> TableCostModel {
        let mut m = TableCostModel::uniform(3, 2, 10.0, 1.0, 0.1, 1e9, 5.0, 1000.0);
        m.set_est_sq_items(CondId(0), SourceId(0), 2.0);
        m.set_est_sq_items(CondId(0), SourceId(1), 2.0);
        m
    }

    #[test]
    fn first_round_is_selections_and_matches_sja_order() {
        let m = model();
        let all = [CondId(0), CondId(1), CondId(2)];
        let next = adaptive_next(&m, &all, None);
        assert_eq!(next.choices, vec![SourceChoice::Selection; 2]);
        // With the same estimates and no observations, the adaptive
        // planner's first pick agrees with SJA's.
        let sja = sja_optimal(&m);
        assert_eq!(next.cond, sja.spec.order[0]);
    }

    #[test]
    fn observed_sizes_flip_the_choice() {
        let m = model();
        let rest = [CondId(1), CondId(2)];
        // A tiny observed set → semijoins everywhere.
        let small = adaptive_next(&m, &rest, Some(3.0));
        assert!(small.choices.iter().all(|c| *c == SourceChoice::Semijoin));
        // A huge observed set (sjq = 1 + 0.1·500 = 51 > 10) → selections.
        let big = adaptive_next(&m, &rest, Some(500.0));
        assert!(big.choices.iter().all(|c| *c == SourceChoice::Selection));
    }

    #[test]
    fn single_condition_remainder() {
        let m = model();
        let next = adaptive_next(&m, &[CondId(2)], Some(10.0));
        assert_eq!(next.cond, CondId(2));
        assert_eq!(next.round_cost, next.remainder_cost);
        assert!(next.predicted_size > 0.0);
    }

    #[test]
    fn remainder_cost_covers_all_conditions() {
        let m = model();
        let all = [CondId(0), CondId(1), CondId(2)];
        let next = adaptive_next(&m, &all, None);
        assert!(next.remainder_cost >= next.round_cost);
        // Remainder ≈ SJA's total for this model (same search space when
        // starting fresh).
        let sja = sja_optimal(&m);
        assert!((next.remainder_cost.value() - sja.cost.value()).abs() < 1e-9);
    }
}
