//! Greedy variants of SJ and SJA (extended version \[24\]).
//!
//! "If the number of conditions is large, one may employ the efficient
//! greedy versions of SJ and SJA ... Those algorithms run in O(mn) time
//! and still find optimal plans under many realistic cost models. However,
//! they may end up with suboptimal, although still very good, plans under
//! the general cost model."
//!
//! The greedy ordering processes conditions by **ascending estimated
//! union size** (most selective first). Under cost models where query cost
//! grows with the data shipped — true of every network-derived model —
//! shrinking the running item set as early as possible minimizes every
//! later round's semijoin cost, which is why the heuristic is optimal for
//! such models. The per-round selection/semijoin decisions then follow the
//! same rule as the exact algorithms, in a single pass.

use super::{cost_ordering_sj, cost_ordering_sja, OptimizedPlan};
use crate::cost::CostModel;
use crate::plan::SimplePlanSpec;
use fusion_types::CondId;

/// Orders conditions by ascending estimated union size, condition index
/// breaking ties.
///
/// Uses [`f64::total_cmp`], so a NaN estimate (a corrupt statistics table
/// under a custom [`CostModel`]) degrades to a deterministic — if
/// arbitrary — position instead of panicking mid-optimization, and the
/// explicit tie-break keeps the order independent of the sort algorithm.
fn selectivity_order<M: CostModel>(model: &M) -> Vec<usize> {
    let mut order: Vec<usize> = (0..model.n_conditions()).collect();
    order.sort_by(|&a, &b| {
        model
            .est_condition_union(CondId(a))
            .total_cmp(&model.est_condition_union(CondId(b)))
            .then(a.cmp(&b))
    });
    order
}

/// Greedy SJ: one selectivity-ordered pass of the Figure 3 round rule.
/// Runs in `O(mn + m log m)`.
///
/// # Panics
/// Panics if the model has no conditions.
pub fn greedy_sj<M: CostModel>(model: &M) -> OptimizedPlan {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    let order = selectivity_order(model);
    let (choices, cost, sizes) = cost_ordering_sj(model, &order);
    let spec = SimplePlanSpec {
        order: order.into_iter().map(CondId).collect(),
        choices,
    };
    OptimizedPlan::from_spec(spec, cost, sizes, model.n_sources())
}

/// Greedy SJA: one selectivity-ordered pass of the Figure 4 round rule
/// (per-source decisions). Runs in `O(mn + m log m)`.
///
/// # Panics
/// Panics if the model has no conditions.
pub fn greedy_sja<M: CostModel>(model: &M) -> OptimizedPlan {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    let order = selectivity_order(model);
    let (choices, cost, sizes) = cost_ordering_sja(model, &order);
    let spec = SimplePlanSpec {
        order: order.into_iter().map(CondId).collect(),
        choices,
    };
    OptimizedPlan::from_spec(spec, cost, sizes, model.n_sources())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::{sj_optimal, sja_optimal};
    use fusion_types::SourceId;

    fn varied_model() -> TableCostModel {
        let mut m = TableCostModel::uniform(4, 3, 10.0, 1.0, 0.05, 1e9, 30.0, 500.0);
        // Give the conditions distinct selectivities: c3 ≪ c1 ≪ c4 ≪ c2.
        for s in 0..3 {
            m.set_est_sq_items(CondId(0), SourceId(s), 20.0);
            m.set_est_sq_items(CondId(1), SourceId(s), 80.0);
            m.set_est_sq_items(CondId(2), SourceId(s), 2.0);
            m.set_est_sq_items(CondId(3), SourceId(s), 40.0);
        }
        m
    }

    #[test]
    fn nan_estimate_does_not_panic_the_ordering() {
        // A corrupt statistics table (NaN selectivity estimate) must
        // degrade deterministically, not panic mid-optimization: under
        // total_cmp, NaN orders above every number, so the poisoned
        // condition sorts last and the rest keep their selectivity order.
        let mut m = varied_model();
        for s in 0..3 {
            m.set_est_sq_items(CondId(0), SourceId(s), f64::NAN);
        }
        let order = selectivity_order(&m);
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn equal_estimates_tie_break_by_condition_index() {
        let m = TableCostModel::uniform(4, 3, 10.0, 1.0, 0.05, 1e9, 30.0, 500.0);
        assert_eq!(selectivity_order(&m), vec![0, 1, 2, 3]);
    }

    #[test]
    fn orders_most_selective_first() {
        let opt = greedy_sja(&varied_model());
        assert_eq!(
            opt.spec.order,
            vec![CondId(2), CondId(0), CondId(3), CondId(1)]
        );
        opt.plan.validate().unwrap();
    }

    #[test]
    fn greedy_matches_exact_on_selectivity_driven_models() {
        // Uniform per-query costs, cost dominated by shipped volume: the
        // selectivity ordering is exactly what the exact search finds.
        let m = varied_model();
        assert_eq!(greedy_sja(&m).cost, sja_optimal(&m).cost);
        assert_eq!(greedy_sj(&m).cost, sj_optimal(&m).cost);
    }

    #[test]
    fn greedy_never_beats_exact() {
        // The exact optimum covers every ordering, so greedy ≥ exact.
        let mut m = varied_model();
        // Perturb costs to break the greedy assumption: make the most
        // selective condition ruinously expensive to evaluate first.
        for s in 0..3 {
            m.set_sq_cost(CondId(2), SourceId(s), 10_000.0);
        }
        assert!(greedy_sja(&m).cost >= sja_optimal(&m).cost);
        assert!(greedy_sj(&m).cost >= sj_optimal(&m).cost);
    }

    #[test]
    fn greedy_sja_never_worse_than_greedy_sj() {
        let m = varied_model();
        assert!(greedy_sja(&m).cost <= greedy_sj(&m).cost);
    }
}
