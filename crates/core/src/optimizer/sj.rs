//! The SJ algorithm (Figure 3): optimal semijoin plans.

use super::perm::for_each_permutation;
use super::{cost_ordering_sj, BestOrdering, OptimizedPlan};
use crate::cost::CostModel;
use crate::plan::SimplePlanSpec;
use fusion_types::CondId;

/// Finds the optimal *semijoin plan* (§2.5 class 2).
///
/// Implements Figure 3 literally: loop A enumerates all `m!` condition
/// orderings; for each, loop B decides — per condition, uniformly across
/// sources — between `n` selection queries and `n` semijoin queries by
/// comparing their summed costs; the cheapest plan over all orderings
/// wins. Complexity `O(m!·m·n)`.
///
/// # Panics
/// Panics if the model has no conditions.
pub fn sj_optimal<M: CostModel>(model: &M) -> OptimizedPlan {
    assert!(model.n_conditions() > 0, "no conditions to optimize");
    let mut best: Option<BestOrdering> = None;
    for_each_permutation(model.n_conditions(), |order| {
        let (choices, cost, sizes) = cost_ordering_sj(model, order);
        if best
            .as_ref()
            .is_none_or(|(o, _, c, _)| super::improves(cost, order, *c, o))
        {
            best = Some((order.to_vec(), choices, cost, sizes));
        }
    });
    let (order, choices, cost, sizes) = best.expect("m >= 1 yields at least one ordering");
    let spec = SimplePlanSpec {
        order: order.into_iter().map(CondId).collect(),
        choices,
    };
    OptimizedPlan::from_spec(spec, cost, sizes, model.n_sources())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::filter_plan;
    use crate::plan::{PlanClass, SourceChoice};
    use fusion_types::Cost;
    use fusion_types::SourceId;

    /// Selective first condition, cheap semijoins: SJ should lead with the
    /// selective condition and semijoin the rest.
    fn semijoin_friendly() -> TableCostModel {
        let mut m = TableCostModel::uniform(3, 2, 50.0, 1.0, 0.1, 1e9, 40.0, 100.0);
        // c1 is highly selective (returns ~2 items per source).
        m.set_est_sq_items(CondId(0), SourceId(0), 2.0);
        m.set_est_sq_items(CondId(0), SourceId(1), 2.0);
        // ...and cheap to evaluate by selection.
        m.set_sq_cost(CondId(0), SourceId(0), 5.0);
        m.set_sq_cost(CondId(0), SourceId(1), 5.0);
        m
    }

    #[test]
    fn sj_picks_selective_condition_first() {
        let opt = sj_optimal(&semijoin_friendly());
        assert_eq!(opt.spec.order[0], CondId(0));
        // Rounds 2..m use semijoins: input is ~4 items, so
        // sjq = 1 + 0.1·4 ≈ 1.4 ≪ sq = 50.
        for row in &opt.spec.choices[1..] {
            assert_eq!(row, &vec![SourceChoice::Semijoin; 2]);
        }
        assert_eq!(opt.plan.class(), PlanClass::Semijoin);
        opt.plan.validate().unwrap();
    }

    #[test]
    fn sj_never_beats_filter_when_semijoins_are_expensive() {
        // Infinite semijoins everywhere → SJ must return the filter plan
        // cost.
        let mut m = TableCostModel::uniform(3, 2, 10.0, f64::INFINITY, 0.0, 1e9, 5.0, 100.0);
        for c in 0..3 {
            for s in 0..2 {
                m.set_sjq_cost(CondId(c), SourceId(s), f64::INFINITY, 0.0);
            }
        }
        let sj = sj_optimal(&m);
        let filter = filter_plan(&m);
        assert_eq!(sj.cost, filter.cost);
        assert_eq!(sj.plan.class(), PlanClass::Filter);
    }

    #[test]
    fn sj_at_most_filter_cost() {
        // For any model, OPT(SJ) ≤ FILTER: the all-selection plan is in
        // the search space.
        let models = [
            TableCostModel::uniform(3, 3, 10.0, 2.0, 0.05, 1e9, 8.0, 50.0),
            semijoin_friendly(),
            TableCostModel::uniform(2, 5, 1.0, 100.0, 10.0, 1e9, 30.0, 60.0),
        ];
        for m in models {
            assert!(sj_optimal(&m).cost <= filter_plan(&m).cost);
        }
    }

    #[test]
    fn single_condition_degenerates_to_filter() {
        let m = TableCostModel::uniform(1, 4, 3.0, 1.0, 0.1, 1e9, 5.0, 100.0);
        let opt = sj_optimal(&m);
        assert_eq!(opt.cost, Cost::new(12.0));
        assert_eq!(opt.plan.class(), PlanClass::Filter);
    }

    #[test]
    fn ordering_matters() {
        // c2 very selective but expensive to push; starting with c1 (cheap,
        // moderately selective) then semijoining c2 wins over the reverse.
        let mut m = TableCostModel::uniform(2, 2, 100.0, 1.0, 0.5, 1e9, 50.0, 100.0);
        m.set_sq_cost(CondId(0), SourceId(0), 10.0);
        m.set_sq_cost(CondId(0), SourceId(1), 10.0);
        m.set_est_sq_items(CondId(0), SourceId(0), 5.0);
        m.set_est_sq_items(CondId(0), SourceId(1), 5.0);
        let opt = sj_optimal(&m);
        assert_eq!(opt.spec.order, vec![CondId(0), CondId(1)]);
        // Cost: 2·10 (round 1) + 2·(1 + 0.5·~9.75) ≈ 31.75 — far below
        // starting with c2 (200 + ...).
        assert!(opt.cost < Cost::new(40.0));
    }
}
