//! Permutation enumeration for the condition orderings of loop A.

/// Calls `f` once per permutation of `0..m`, using Heap's algorithm
/// (no per-permutation allocation).
///
/// The SJ and SJA algorithms iterate "for every ordering
/// `[c_{o_1}, ..., c_{o_m}]` of the conditions" (Figures 3–4); `m` is the
/// number of query conditions, which the paper argues is small in
/// realistic scenarios.
pub fn for_each_permutation<F: FnMut(&[usize])>(m: usize, mut f: F) {
    if m == 0 {
        return;
    }
    let mut items: Vec<usize> = (0..m).collect();
    let mut c = vec![0usize; m];
    f(&items);
    let mut i = 0;
    while i < m {
        if c[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(c[i], i);
            }
            f(&items);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

/// `m!` as f64 (for reporting the search-space size).
pub fn factorial(m: usize) -> f64 {
    (1..=m).fold(1.0, |acc, k| acc * k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generates_all_distinct_permutations() {
        for m in 1..=5 {
            let mut seen: HashSet<Vec<usize>> = HashSet::new();
            for_each_permutation(m, |p| {
                assert!(seen.insert(p.to_vec()), "duplicate permutation {p:?}");
            });
            assert_eq!(seen.len() as f64, factorial(m));
        }
    }

    #[test]
    fn zero_is_empty() {
        let mut called = false;
        for_each_permutation(0, |_| called = true);
        assert!(!called);
    }

    #[test]
    fn each_output_is_a_permutation() {
        for_each_permutation(4, |p| {
            let mut q = p.to_vec();
            q.sort_unstable();
            assert_eq!(q, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(5), 120.0);
    }
}
