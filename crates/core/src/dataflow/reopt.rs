//! Certification of a mid-flight plan switch.
//!
//! When an observed cardinality leaves its believed interval, the runtime
//! re-optimizer splices a freshly searched suffix onto the rounds already
//! executed. The splice is only taken if this module can *certify* it:
//!
//! 1. **Prefix identity** — the new plan's first `executed` steps are
//!    byte-identical to the old plan's (same ops, same variables), so
//!    every value bound so far means the same thing under the new plan;
//! 2. **Semantics** — the BDD analyzer proves the spliced plan still
//!    computes the fusion query `⋂ᵢ⋃ⱼ sq(cᵢ,Rⱼ)` exactly;
//! 3. **Race freedom** — the stage decomposition of the spliced plan
//!    re-verifies (partition, dependencies, source-disjointness, and the
//!    BDD semantic stage check), and the interference analysis over its
//!    certified event graph — cache events included — finds no unordered
//!    conflicting pair.
//!
//! A switch that fails any check is refused; the executor keeps the plan
//! it already has. Certification never trusts the optimizer that proposed
//! the switch — the checks recompute everything from the plan itself.

use super::{stage_decomposition, Interference};
use crate::analyze::analyze_plan;
use crate::plan::Plan;
use fusion_types::error::{FusionError, Result};

/// Evidence that a suffix switch is sound, returned by
/// [`certify_switch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchCertificate {
    /// Steps of the old plan already executed and shared verbatim by the
    /// spliced plan.
    pub shared_prefix: usize,
    /// Total steps of the spliced plan.
    pub steps: usize,
    /// Stages of the spliced plan's verified decomposition.
    pub stages: usize,
}

impl std::fmt::Display for SwitchCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "switch certified: prefix {} of {} steps, {} race-free stages, semantics proved",
            self.shared_prefix, self.steps, self.stages
        )
    }
}

fn refuse(msg: impl std::fmt::Display) -> FusionError {
    FusionError::invalid_plan(format!("refusing plan switch: {msg}"))
}

/// Certifies that replacing `old_plan` by `new_plan` after `executed`
/// steps have run is sound. See the module docs for the three checks.
///
/// # Errors
/// Fails with the violated check; the caller must then keep `old_plan`.
pub fn certify_switch(
    old_plan: &Plan,
    new_plan: &Plan,
    executed: usize,
) -> Result<SwitchCertificate> {
    new_plan.validate()?;
    if new_plan.n_conditions != old_plan.n_conditions || new_plan.n_sources != old_plan.n_sources {
        return Err(refuse("spliced plan serves a different query shape"));
    }
    if executed > new_plan.steps.len() || executed > old_plan.steps.len() {
        return Err(refuse(format!(
            "prefix of {executed} steps exceeds a plan ({} old / {} new steps)",
            old_plan.steps.len(),
            new_plan.steps.len()
        )));
    }
    for i in 0..executed {
        if old_plan.steps[i] != new_plan.steps[i] {
            return Err(refuse(format!(
                "step #{} diverges inside the executed prefix",
                i + 1
            )));
        }
    }
    // Executed steps bound variables by id; the splice is only sound if
    // those ids name the same slots in the new plan.
    let named = |plan: &Plan, i: usize| -> Vec<String> {
        plan.steps[i]
            .used_vars()
            .into_iter()
            .chain(plan.steps[i].defined_var())
            .map(|v| plan.var_names[v.0].clone())
            .collect()
    };
    for i in 0..executed {
        if named(old_plan, i) != named(new_plan, i) {
            return Err(refuse(format!(
                "step #{} renames a variable inside the executed prefix",
                i + 1
            )));
        }
    }
    let analysis = analyze_plan(new_plan)?;
    if !analysis.verdict().is_proved() {
        return Err(refuse(
            "the BDD analyzer cannot prove the spliced plan computes the fusion query",
        ));
    }
    let stages = stage_decomposition(new_plan)?;
    let interferences: Vec<Interference> = super::interference_report(new_plan, true)?;
    if let Some(first) = interferences.first() {
        return Err(refuse(format!(
            "the spliced plan's schedule is not interference-free: {first}"
        )));
    }
    Ok(SwitchCertificate {
        shared_prefix: executed,
        steps: new_plan.steps.len(),
        stages: stages.stages.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::sja_optimal;
    use crate::plan::{SimplePlanSpec, SourceChoice, Step};
    use fusion_types::CondId;

    fn model(m: usize, n: usize) -> TableCostModel {
        TableCostModel::uniform(m, n, 5.0, 1.0, 0.5, 1e9, 4.0, 50.0)
    }

    fn all_selection_spec(order: Vec<usize>, n: usize) -> SimplePlanSpec {
        let m = order.len();
        SimplePlanSpec {
            order: order.into_iter().map(CondId).collect(),
            choices: vec![vec![SourceChoice::Selection; n]; m],
        }
    }

    #[test]
    fn identical_plan_certifies_at_any_prefix() {
        let opt = sja_optimal(&model(3, 2));
        for executed in [0, 2, opt.plan.steps.len()] {
            let cert = certify_switch(&opt.plan, &opt.plan, executed).unwrap();
            assert_eq!(cert.shared_prefix, executed);
            assert_eq!(cert.steps, opt.plan.steps.len());
            assert!(cert.stages > 0);
        }
    }

    #[test]
    fn suffix_reordering_with_shared_prefix_certifies() {
        let n = 2;
        // Same first round (condition 0); the suffix order flips.
        let a = all_selection_spec(vec![0, 1, 2], n).build(n).unwrap();
        let b = all_selection_spec(vec![0, 2, 1], n).build(n).unwrap();
        // Round 0 emits n selections + a union = n + 1 identical steps.
        let cert = certify_switch(&a, &b, n + 1).unwrap();
        assert_eq!(cert.shared_prefix, n + 1);
    }

    #[test]
    fn diverging_prefix_is_refused() {
        let n = 2;
        let a = all_selection_spec(vec![0, 1, 2], n).build(n).unwrap();
        let b = all_selection_spec(vec![1, 0, 2], n).build(n).unwrap();
        let err = certify_switch(&a, &b, 1).unwrap_err();
        assert!(err.to_string().contains("diverges"), "{err}");
    }

    #[test]
    fn semantically_wrong_splice_is_refused() {
        let n = 2;
        let a = all_selection_spec(vec![0, 1, 2], n).build(n).unwrap();
        // Drop the last condition entirely: still a valid plan for m=2,
        // but it no longer computes the 3-condition query.
        let mut b = a.clone();
        // Truncate to the first two rounds and retarget the result.
        let keep = 2 * (n + 1) + 1; // rounds 0,1 + the intersect of round 1
        b.steps.truncate(keep);
        let last_out = b
            .steps
            .last()
            .and_then(Step::defined_var)
            .expect("intersect has an output");
        b.result = last_out;
        let err = certify_switch(&a, &b, n + 1).unwrap_err();
        assert!(
            err.to_string().contains("prove") || err.to_string().contains("shape"),
            "{err}"
        );
    }

    #[test]
    fn prefix_longer_than_plan_is_refused() {
        let a = all_selection_spec(vec![0, 1], 2).build(2).unwrap();
        let err = certify_switch(&a, &a, a.steps.len() + 1).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }
}
