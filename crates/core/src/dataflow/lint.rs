//! Dataflow-powered lint rules.
//!
//! These rules need more than the BDD semantics the base registry works
//! from: they read the def-use graph, the cardinality intervals, and the
//! guaranteed-cost bounds computed by [`analyze_dataflow`]. Two of them
//! ([`NarrowThenWiden`], [`TransferExceedsLoad`]) precompute their
//! findings from a [`Dataflow`] at construction time and replay them
//! through the ordinary [`Lint`] interface, so they compose with the
//! base rules in one [`LintRegistry`] run.

use super::{analyze_dataflow, interference_rules, Dataflow, SourceBounds};
use crate::analyze::{analyze_plan, Analysis, Diagnostic, Lint, LintRegistry, Severity};
use crate::cost::CostModel;
use crate::plan::{Plan, Step};
use fusion_types::error::Result;

/// `retry-non-idempotent-step`: a remote step that is unsafe to re-issue
/// under the executor's retry policy. Re-querying a source can observe a
/// *shrunken* relation (autonomous sources update between attempts); a
/// step is retry-safe when the plan is monotone in its source's answers —
/// exactly the droppability condition the fault-tolerance machinery
/// proves. A step whose source-suffix is *not* droppable (an antitone
/// use, e.g. feeding the right side of a difference) can make a retried
/// partial answer unsound, so it is flagged.
pub struct RetryNonIdempotent;

impl Lint for RetryNonIdempotent {
    fn name(&self) -> &'static str {
        "retry-non-idempotent-step"
    }

    fn check(&self, plan: &Plan, analysis: &mut Analysis) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (t, s) in plan.steps.iter().enumerate() {
            let Some(src) = s.source() else { continue };
            // The answers a retry can shrink: this step and every later
            // query at the same source (a mid-plan re-issue re-runs the
            // source's remaining schedule).
            let suffix: Vec<usize> = (t..plan.steps.len())
                .filter(|&u| plan.steps[u].source() == Some(src))
                .collect();
            if !analysis.droppable(plan, &suffix) {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: Severity::Warning,
                    step: t + 1,
                    message: format!(
                        "re-issuing this query at R{} is not idempotent: the plan \
                         uses the source's answers non-monotonically, so a retry \
                         against changed source state can corrupt the answer",
                        src.0 + 1
                    ),
                });
            }
        }
        out
    }
}

/// `narrow-then-widen`: a semijoin ships a set that was first narrowed
/// by a difference and then re-widened by a union, so its guaranteed
/// upper bound *exceeds* the bound of the narrowed set it descends from
/// — the difference bought nothing for this shipment and the union is
/// paying transfer for items the difference already excluded.
pub struct NarrowThenWiden {
    findings: Vec<Diagnostic>,
}

impl NarrowThenWiden {
    /// Precomputes the findings from a finished dataflow analysis.
    pub fn new(plan: &Plan, df: &Dataflow) -> NarrowThenWiden {
        let mut findings = Vec::new();
        for (t, s) in plan.steps.iter().enumerate() {
            let (Step::Sjq { input, .. } | Step::SjqBloom { input, .. }) = s else {
                continue;
            };
            let Some(def) = df.def_of[input.0] else {
                continue;
            };
            // Walk the def-use ancestry of the shipped set, tracking
            // whether the path to each ancestor crossed a union.
            let mut widened_diff: Option<usize> = None;
            let mut seen = vec![false; plan.steps.len() * 2];
            let mut stack = vec![(def, false)];
            while let Some((u, crossed_union)) = stack.pop() {
                let slot = u * 2 + usize::from(crossed_union);
                if seen[slot] {
                    continue;
                }
                seen[slot] = true;
                if crossed_union
                    && matches!(plan.steps[u], Step::Diff { .. })
                    && df.step_bounds[t].hi > df.step_bounds[u].hi + 1e-9
                {
                    widened_diff = Some(u);
                    break;
                }
                let next_union = crossed_union || matches!(plan.steps[u], Step::Union { .. });
                stack.extend(df.deps[u].iter().map(|&d| (d, next_union)));
            }
            if let Some(d) = widened_diff {
                findings.push(Diagnostic {
                    rule: "narrow-then-widen",
                    severity: Severity::Warning,
                    step: t + 1,
                    message: format!(
                        "ships {} (bound {}) although it descends, through a \
                         union, from the difference {} already narrowed to {}",
                        plan.var_name(*input),
                        df.step_bounds[t],
                        plan.steps[d]
                            .defined_var()
                            .map_or_else(String::new, |v| plan.var_name(v).to_string()),
                        df.step_bounds[d]
                    ),
                });
            }
        }
        NarrowThenWiden { findings }
    }
}

impl Lint for NarrowThenWiden {
    fn name(&self) -> &'static str {
        "narrow-then-widen"
    }

    fn check(&self, _plan: &Plan, _analysis: &mut Analysis) -> Vec<Diagnostic> {
        self.findings.clone()
    }
}

/// `transfer-exceeds-load`: the *guaranteed minimum* a plan spends
/// querying one source already exceeds the flat `lq` cost of loading the
/// whole relation — the §4 extended space provably contains a cheaper
/// plan that loads the source once and selects locally for free.
pub struct TransferExceedsLoad {
    findings: Vec<Diagnostic>,
}

impl TransferExceedsLoad {
    /// Precomputes the findings from a finished dataflow analysis.
    pub fn new<M: CostModel>(plan: &Plan, model: &M, df: &Dataflow) -> TransferExceedsLoad {
        let mut findings = Vec::new();
        for j in 0..plan.n_sources {
            let src = fusion_types::SourceId(j);
            let lq = model.lq_cost(src);
            if !lq.is_finite() {
                continue; // source cannot be loaded at all
            }
            let query_steps: Vec<usize> = plan
                .steps
                .iter()
                .enumerate()
                .filter(|(_, s)| s.source() == Some(src) && !matches!(s, Step::Lq { .. }))
                .map(|(t, _)| t)
                .collect();
            let lo: fusion_types::Cost = query_steps.iter().map(|&t| df.step_costs[t].lo).sum();
            if lo > lq {
                findings.push(Diagnostic {
                    rule: "transfer-exceeds-load",
                    severity: Severity::Warning,
                    step: query_steps[0] + 1,
                    message: format!(
                        "queries at R{} cost at least {lo} even in the best case, \
                         more than loading the whole relation for {lq}",
                        j + 1
                    ),
                });
            }
        }
        TransferExceedsLoad { findings }
    }
}

impl Lint for TransferExceedsLoad {
    fn name(&self) -> &'static str {
        "transfer-exceeds-load"
    }

    fn check(&self, _plan: &Plan, _analysis: &mut Analysis) -> Vec<Diagnostic> {
        self.findings.clone()
    }
}

/// The three dataflow-powered rules, built from a finished analysis.
pub fn dataflow_rules<M: CostModel>(plan: &Plan, model: &M, df: &Dataflow) -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(RetryNonIdempotent),
        Box::new(NarrowThenWiden::new(plan, df)),
        Box::new(TransferExceedsLoad::new(plan, model, df)),
    ]
}

/// Runs the dataflow analysis, then the full lint registry — the base
/// semantic rules, the three dataflow-powered ones, and the three
/// interference rules over the plan's certified schedule — and returns
/// the merged findings sorted by (step, rule).
///
/// # Errors
/// Propagates structural validation and certificate failures.
pub fn dataflow_lint_plan<M: CostModel>(
    plan: &Plan,
    model: &M,
    bounds: &SourceBounds,
) -> Result<Vec<Diagnostic>> {
    let df = analyze_dataflow(plan, model, bounds)?;
    let mut registry = LintRegistry::default_rules();
    for rule in dataflow_rules(plan, model, &df) {
        registry.register(rule);
    }
    for rule in interference_rules(plan)? {
        registry.register(rule);
    }
    let mut analysis = analyze_plan(plan)?;
    Ok(registry.run(plan, &mut analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::{filter_plan, sja_optimal};
    use crate::plan::{Plan, SimplePlanSpec, Step, VarId};
    use fusion_types::{CondId, SourceId};

    fn model() -> TableCostModel {
        TableCostModel::uniform(3, 2, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0)
    }

    fn run_lints(plan: &Plan, m: &TableCostModel) -> Vec<Diagnostic> {
        dataflow_lint_plan(plan, m, &SourceBounds::from_model(m)).unwrap()
    }

    #[test]
    fn optimizer_plans_are_quiet() {
        let m = model();
        for opt in [filter_plan(&m), sja_optimal(&m)] {
            let d = run_lints(&opt.plan, &m);
            assert_eq!(d, vec![], "plan:\n{}", opt.plan);
        }
    }

    /// `sq(c1, R1) − sq(c2, R1)`: the second query at R1 feeds the right
    /// side of a difference, so re-issuing it against changed source
    /// state can grow the answer.
    fn antitone_plan() -> Plan {
        let mut plan = Plan::new(vec![], VarId(0), 2, 1);
        let a = plan.fresh_var("A");
        let b = plan.fresh_var("B");
        let d = plan.fresh_var("D");
        plan.steps = vec![
            Step::Sq {
                out: a,
                cond: CondId(0),
                source: SourceId(0),
            },
            Step::Sq {
                out: b,
                cond: CondId(1),
                source: SourceId(0),
            },
            Step::Diff {
                out: d,
                left: a,
                right: b,
            },
        ];
        plan.result = d;
        plan
    }

    #[test]
    fn retry_non_idempotent_fires_on_antitone_use() {
        let m = TableCostModel::uniform(2, 1, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0);
        let d = run_lints(&antitone_plan(), &m);
        let hits: Vec<_> = d
            .iter()
            .filter(|x| x.rule == "retry-non-idempotent-step")
            .collect();
        // Step 2 feeds the difference's right side: its suffix {2} is not
        // droppable. Step 1's suffix {1, 2} drops *both* R1 queries and
        // degrades to the empty (sound) answer, so only step 2 fires.
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].step, 2);
        assert!(hits[0].message.contains("not idempotent"));
        assert!(hits.iter().all(|x| x.severity == Severity::Warning));
    }

    /// X := sq(c1,R1); Z := sq(c2,R2); D := X − Z; W := D ∪ X;
    /// out := sjq(c2, R1, W) — W's bound re-widens past D's.
    fn narrow_widen_plan() -> Plan {
        let mut plan = Plan::new(vec![], VarId(0), 2, 2);
        let x = plan.fresh_var("X");
        let z = plan.fresh_var("Z");
        let d = plan.fresh_var("D");
        let w = plan.fresh_var("W");
        let out = plan.fresh_var("OUT");
        plan.steps = vec![
            Step::Sq {
                out: x,
                cond: CondId(0),
                source: SourceId(0),
            },
            Step::Sq {
                out: z,
                cond: CondId(1),
                source: SourceId(1),
            },
            Step::Diff {
                out: d,
                left: x,
                right: z,
            },
            Step::Union {
                out: w,
                inputs: vec![d, x],
            },
            Step::Sjq {
                out,
                cond: CondId(1),
                source: SourceId(0),
                input: w,
            },
        ];
        plan.result = out;
        plan
    }

    #[test]
    fn narrow_then_widen_fires_on_rewidened_difference() {
        let m = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0);
        // Exact-style seeds with distinct sizes so D's bound is strictly
        // below W's: |sq(c1,R1)| = 10, |sq(c2,R2)| = 4.
        let mut b = SourceBounds::from_model(&m);
        b.sq[0][0] = super::super::Interval::point(10.0);
        b.sq[1][1] = super::super::Interval::point(4.0);
        let plan = narrow_widen_plan();
        let d = dataflow_lint_plan(&plan, &m, &b).unwrap();
        let hits: Vec<_> = d.iter().filter(|x| x.rule == "narrow-then-widen").collect();
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].step, 5);
        assert!(hits[0].message.contains("descends"));
    }

    #[test]
    fn narrow_then_widen_quiet_without_union() {
        // Shipping the difference directly is fine.
        let m = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0);
        let mut plan = narrow_widen_plan();
        // Re-point the semijoin at D instead of W (W becomes dead).
        let d_var = plan
            .steps
            .iter()
            .find_map(|s| match s {
                Step::Diff { out, .. } => Some(*out),
                _ => None,
            })
            .unwrap();
        match &mut plan.steps[4] {
            Step::Sjq { input, .. } => *input = d_var,
            other => panic!("expected semijoin, found {other:?}"),
        }
        let d = run_lints(&plan, &m);
        assert!(d.iter().all(|x| x.rule != "narrow-then-widen"), "{d:?}");
    }

    #[test]
    fn transfer_exceeds_load_fires_when_lq_is_cheap() {
        // Make loading nearly free: guaranteed query costs exceed it.
        let m = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 5.0, 5.0, 1000.0);
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let d = run_lints(&plan, &m);
        let hits: Vec<_> = d
            .iter()
            .filter(|x| x.rule == "transfer-exceeds-load")
            .collect();
        assert_eq!(hits.len(), 2, "{d:?}"); // one per source
        assert!(hits[0].message.contains("loading the whole relation"));
    }

    #[test]
    fn transfer_exceeds_load_quiet_when_loading_is_expensive() {
        // lq = 100 ≫ 2 selections × 10 per source.
        let m = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0);
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let d = run_lints(&plan, &m);
        assert!(d.iter().all(|x| x.rule != "transfer-exceeds-load"), "{d:?}");
    }
}
