//! Static interference analysis over the shared state of the executors.
//!
//! The dataflow pass of this module's parent proves *which* steps may
//! run concurrently; this file proves they may do so *safely*. Every
//! step — and every cache-side event a cached run performs around the
//! steps — is assigned a read/write **footprint** over the shared
//! resources of the executor family:
//!
//! * plan variables and loaded relations (the SSA slots),
//! * the per-source network shard (trace segment + fault-schedule
//!   cursor behind [`fusion_net::Network`]'s source handles),
//! * per-`(source, condition)` answer-cache keys,
//! * per-source epoch counters,
//! * the cache's shared LRU clock and statistics,
//! * the per-step ledger slot.
//!
//! A **happens-before** relation is then built from the certified stage
//! schedule (stage barriers, per-source serial queues, data
//! dependencies, and the cached executor's lookup → execute → bump →
//! commit phasing). Two events that are unordered under happens-before
//! yet have conflicting footprints (one writes what the other touches)
//! constitute an *interference*: the analysis reports the pair, the
//! contended resource, and a concrete **witness** — two linear
//! extensions of the happens-before order that differ only in which of
//! the pair goes first, exactly the schedules a model checker must
//! replay to exhibit (or refute) divergence.
//!
//! The lints at the bottom package the three interference classes the
//! executors must stay free of: conflicting same-stage step footprints,
//! cache commits racing epoch bumps, and epoch reads (cache lookups)
//! racing epoch bumps.

use super::dependencies;
use crate::analyze::{Analysis, Diagnostic, Lint, Severity};
use crate::plan::{Plan, Step};
use fusion_types::error::{FusionError, Result};

/// One unit of shared executor state an event can read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// An SSA item-set variable slot.
    Var(usize),
    /// A loaded-relation slot.
    Rel(usize),
    /// Source `j`'s network shard: its pending trace segment and its
    /// positional fault-schedule cursor. Every exchange is a
    /// read-modify-write of this resource.
    NetShard(usize),
    /// The answer-cache entry keyed by `(source, condition)`.
    CacheKey(usize, usize),
    /// The cache's shared LRU clock and hit/miss statistics.
    CacheLru,
    /// Source `j`'s cache epoch counter.
    Epoch(usize),
    /// The step's slot in the cost ledger.
    LedgerSlot(usize),
    /// Shard `k` of the server's shared answer cache: the entries,
    /// epoch counters, LRU clock, and statistics of every source with
    /// `source % n_shards == k`, guarded by one lock.
    Shard(usize),
    /// The shared-fetch slot of merged exchange class `c` against
    /// source `j`: the published harvest one leader writes and every
    /// fan-out follower reads (see the `sharing` module).
    SharedFetch(usize, usize),
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::Var(v) => write!(f, "var v{v}"),
            Resource::Rel(r) => write!(f, "rel t{r}"),
            Resource::NetShard(j) => write!(f, "R{}'s network shard", j + 1),
            Resource::CacheKey(j, c) => write!(f, "cache key (R{}, c{})", j + 1, c + 1),
            Resource::CacheLru => write!(f, "cache LRU clock"),
            Resource::Epoch(j) => write!(f, "R{}'s epoch counter", j + 1),
            Resource::LedgerSlot(t) => write!(f, "ledger slot #{}", t + 1),
            Resource::Shard(k) => write!(f, "cache shard #{}", k + 1),
            Resource::SharedFetch(j, c) => {
                write!(f, "shared-fetch slot (R{}, class {c})", j + 1)
            }
        }
    }
}

/// The read and write sets of one event, kept sorted and deduplicated so
/// conflict detection is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Resources the event reads.
    pub reads: Vec<Resource>,
    /// Resources the event writes (every write implies a read).
    pub writes: Vec<Resource>,
}

impl Footprint {
    fn normalized(mut self) -> Footprint {
        self.reads.sort_unstable();
        self.reads.dedup();
        self.writes.sort_unstable();
        self.writes.dedup();
        self
    }

    /// The first resource (in [`Resource`] order) on which this
    /// footprint conflicts with `other`: one side writes it and the
    /// other reads or writes it. `None` means the events commute.
    pub fn conflicts_with(&self, other: &Footprint) -> Option<Resource> {
        let hit = |writes: &[Resource], foot: &Footprint| {
            writes
                .iter()
                .copied()
                .filter(|r| foot.reads.contains(r) || foot.writes.contains(r))
                .min()
        };
        match (hit(&self.writes, other), hit(&other.writes, self)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// The footprint of executing plan step `idx` (the step body only; the
/// cache events around a cached run have their own [`event_footprint`]s).
///
/// Remote steps read-modify-write their source's network shard (the
/// exchange appends a trace segment and advances the positional fault
/// cursor); every step writes its SSA output and its ledger slot.
pub fn step_footprint(plan: &Plan, idx: usize) -> Footprint {
    let mut f = Footprint {
        reads: Vec::new(),
        writes: vec![Resource::LedgerSlot(idx)],
    };
    match &plan.steps[idx] {
        Step::Sq { out, source, .. } => {
            f.reads.push(Resource::NetShard(source.0));
            f.writes.push(Resource::NetShard(source.0));
            f.writes.push(Resource::Var(out.0));
        }
        Step::Sjq {
            out, source, input, ..
        }
        | Step::SjqBloom {
            out, source, input, ..
        } => {
            f.reads.push(Resource::Var(input.0));
            f.reads.push(Resource::NetShard(source.0));
            f.writes.push(Resource::NetShard(source.0));
            f.writes.push(Resource::Var(out.0));
        }
        Step::Lq { out, source } => {
            f.reads.push(Resource::NetShard(source.0));
            f.writes.push(Resource::NetShard(source.0));
            f.writes.push(Resource::Rel(out.0));
        }
        Step::LocalSq { out, rel, .. } => {
            f.reads.push(Resource::Rel(rel.0));
            f.writes.push(Resource::Var(out.0));
        }
        Step::Union { out, inputs } | Step::Intersect { out, inputs } => {
            f.reads.extend(inputs.iter().map(|v| Resource::Var(v.0)));
            f.writes.push(Resource::Var(out.0));
        }
        Step::Diff { out, left, right } => {
            f.reads.push(Resource::Var(left.0));
            f.reads.push(Resource::Var(right.0));
            f.writes.push(Resource::Var(out.0));
        }
    }
    f.normalized()
}

/// The footprints of every step of `plan`, in step order.
pub fn plan_footprints(plan: &Plan) -> Vec<Footprint> {
    (0..plan.steps.len())
        .map(|t| step_footprint(plan, t))
        .collect()
}

/// One atomic action of a (possibly cached) plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// The cache lookup for selection step `step` (reads the source's
    /// epoch and cache key, touches the LRU clock).
    Lookup {
        /// The `sq` step being looked up.
        step: usize,
    },
    /// Executing step `step` (footprint: [`step_footprint`]).
    Exec {
        /// The step index.
        step: usize,
    },
    /// The post-run fault-recovery epoch bump of source `source`
    /// (reads the source's committed failure count, writes its epoch).
    EpochBump {
        /// The source whose epoch may advance.
        source: usize,
    },
    /// Admitting the pending answer of selection step `step` to the
    /// cache (reads the epoch and failed flag, writes the cache key).
    Commit {
        /// The `sq` step whose answer is admitted.
        step: usize,
    },
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Lookup { step } => write!(f, "lookup#{}", step + 1),
            Event::Exec { step } => write!(f, "step#{}", step + 1),
            Event::EpochBump { source } => write!(f, "bump[R{}]", source + 1),
            Event::Commit { step } => write!(f, "commit#{}", step + 1),
        }
    }
}

/// The footprint of one event.
///
/// # Panics
/// Panics when a `Lookup`/`Commit` event names a step that is not a
/// selection — those events only exist for `sq` steps.
pub fn event_footprint(plan: &Plan, event: Event) -> Footprint {
    match event {
        Event::Exec { step } => step_footprint(plan, step),
        Event::Lookup { step } => {
            let Step::Sq { cond, source, .. } = &plan.steps[step] else {
                panic!("lookup event on non-selection step #{step}");
            };
            Footprint {
                reads: vec![
                    Resource::Epoch(source.0),
                    Resource::CacheKey(source.0, cond.0),
                ],
                writes: vec![Resource::CacheLru],
            }
            .normalized()
        }
        Event::EpochBump { source } => Footprint {
            reads: vec![Resource::NetShard(source)],
            writes: vec![Resource::Epoch(source)],
        }
        .normalized(),
        Event::Commit { step } => {
            let Step::Sq { cond, source, .. } = &plan.steps[step] else {
                panic!("commit event on non-selection step #{step}");
            };
            Footprint {
                reads: vec![Resource::Epoch(source.0), Resource::NetShard(source.0)],
                writes: vec![Resource::CacheKey(source.0, cond.0), Resource::CacheLru],
            }
            .normalized()
        }
    }
}

/// An interference: two events unordered under happens-before whose
/// footprints conflict, with the witness schedules that realize both
/// orders.
#[derive(Debug, Clone)]
pub struct Interference {
    /// The earlier-indexed event of the pair.
    pub a: Event,
    /// The later-indexed event of the pair.
    pub b: Event,
    /// The contended resource.
    pub resource: Resource,
    /// Two complete schedules differing in the pair's order.
    pub witness: Witness,
}

impl std::fmt::Display for Interference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} and {} may run concurrently but conflict on {}; {}",
            self.a, self.b, self.resource, self.witness
        )
    }
}

/// A concrete counterexample pair of schedules: both are linear
/// extensions of the happens-before order, the first running the
/// interfering pair one way round, the second the other.
#[derive(Debug, Clone)]
pub struct Witness {
    /// A schedule running the pair in `(a, b)` order.
    pub first: Vec<Event>,
    /// A schedule running the pair in `(b, a)` order.
    pub second: Vec<Event>,
}

fn render_schedule(s: &[Event]) -> String {
    s.iter()
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "witness schedules [{}] vs [{}]",
            render_schedule(&self.first),
            render_schedule(&self.second)
        )
    }
}

/// The event graph of one execution: events with footprints plus the
/// happens-before edges a schedule guarantees. [`EventGraph::certified`]
/// builds the graph the real executors implement; [`EventGraph::push`] /
/// [`EventGraph::add_edge`] let tests model broken (mutant) schedules.
#[derive(Debug, Clone, Default)]
pub struct EventGraph {
    events: Vec<Event>,
    foots: Vec<Footprint>,
    succ: Vec<Vec<usize>>,
}

impl EventGraph {
    /// An empty graph.
    pub fn new() -> EventGraph {
        EventGraph::default()
    }

    /// The events, in insertion order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The footprint of event `i`.
    pub fn footprint(&self, i: usize) -> &Footprint {
        &self.foots[i]
    }

    /// Adds an event, returning its index.
    pub fn push(&mut self, plan: &Plan, event: Event) -> usize {
        self.events.push(event);
        self.foots.push(event_footprint(plan, event));
        self.succ.push(Vec::new());
        self.events.len() - 1
    }

    /// Adds the happens-before edge `a → b`.
    ///
    /// # Panics
    /// Panics when either index is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(b < self.events.len(), "edge target out of range");
        if !self.succ[a].contains(&b) {
            self.succ[a].push(b);
        }
    }

    /// The event graph the parallel/cached executors implement for
    /// `stages` (a stage partition of the plan's steps):
    ///
    /// * cached runs resolve every selection lookup first, chained in
    ///   plan order (the pre-resolution pass);
    /// * steps execute under stage barriers (every stage-`s` step
    ///   happens before every stage-`s+1` step) plus the plan's data
    ///   dependencies;
    /// * cached runs then bump recovery epochs (chained by source) and
    ///   finally admit pending answers (chained in step order) — the
    ///   lookup → execute → bump → commit phasing of `commit_inserts`.
    ///
    /// With `cached = false`, only the `Exec` events exist; the cached
    /// graph is a strict superset, so certifying it certifies both
    /// modes.
    pub fn certified(plan: &Plan, stages: &[Vec<usize>], cached: bool) -> EventGraph {
        let mut g = EventGraph::new();
        let (_, deps) = dependencies(plan);
        let mut last_lookup: Option<usize> = None;
        if cached {
            for (idx, step) in plan.steps.iter().enumerate() {
                if matches!(step, Step::Sq { .. }) {
                    let id = g.push(plan, Event::Lookup { step: idx });
                    if let Some(prev) = last_lookup {
                        g.add_edge(prev, id);
                    }
                    last_lookup = Some(id);
                }
            }
        }
        let exec_id: Vec<usize> = (0..plan.steps.len())
            .map(|idx| g.push(plan, Event::Exec { step: idx }))
            .collect();
        if let (Some(last), Some(first_stage)) = (last_lookup, stages.first()) {
            for &t in first_stage {
                g.add_edge(last, exec_id[t]);
            }
        }
        for (t, ds) in deps.iter().enumerate() {
            for &d in ds {
                g.add_edge(exec_id[d], exec_id[t]);
            }
        }
        for pair in stages.windows(2) {
            for &a in &pair[0] {
                for &b in &pair[1] {
                    g.add_edge(exec_id[a], exec_id[b]);
                }
            }
        }
        if cached {
            let mut prev: Option<usize> = None;
            for j in 0..plan.n_sources {
                let id = g.push(plan, Event::EpochBump { source: j });
                match prev {
                    Some(p) => g.add_edge(p, id),
                    None => {
                        // The first bump waits for the whole run: the
                        // last stage suffices, barriers imply the rest.
                        for &t in stages.last().map_or(&[][..], Vec::as_slice) {
                            g.add_edge(exec_id[t], id);
                        }
                        if let (Some(last), true) = (last_lookup, stages.is_empty()) {
                            g.add_edge(last, id);
                        }
                    }
                }
                prev = Some(id);
            }
            for (idx, step) in plan.steps.iter().enumerate() {
                if matches!(step, Step::Sq { .. }) {
                    let id = g.push(plan, Event::Commit { step: idx });
                    match prev {
                        Some(p) => g.add_edge(p, id),
                        None => {
                            for &t in stages.last().map_or(&[][..], Vec::as_slice) {
                                g.add_edge(exec_id[t], id);
                            }
                        }
                    }
                    prev = Some(id);
                }
            }
        }
        g
    }

    /// The happens-before closure: `hb[a][b]` iff `a` strictly precedes
    /// `b` in every schedule the graph admits.
    pub fn happens_before(&self) -> Vec<Vec<bool>> {
        let n = self.events.len();
        let mut hb = vec![vec![false; n]; n];
        for (start, row) in hb.iter_mut().enumerate() {
            let mut stack: Vec<usize> = self.succ[start].clone();
            while let Some(v) = stack.pop() {
                if !row[v] {
                    row[v] = true;
                    stack.extend(self.succ[v].iter().copied());
                }
            }
        }
        hb
    }

    /// A linear extension preferring `early` as soon as it is available
    /// and delaying `late` until it is forced — the two calls
    /// `linearize(a, b)` / `linearize(b, a)` realize both orders of an
    /// unordered pair.
    fn linearize(&self, early: usize, late: usize) -> Vec<Event> {
        let n = self.events.len();
        let mut indeg = vec![0usize; n];
        for succs in &self.succ {
            for &v in succs {
                indeg[v] += 1;
            }
        }
        let mut done = vec![false; n];
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let avail = (0..n).filter(|&v| !done[v] && indeg[v] == 0);
            let pick = if !done[early] && indeg[early] == 0 {
                early
            } else {
                let mut best: Option<usize> = None;
                for v in avail {
                    if v != late {
                        best = Some(v);
                        break;
                    }
                    best.get_or_insert(v);
                }
                best.expect("event graph is cyclic")
            };
            done[pick] = true;
            out.push(self.events[pick]);
            for &v in &self.succ[pick] {
                indeg[v] -= 1;
            }
        }
        out
    }

    /// Every interference in the graph: unordered pairs with
    /// conflicting footprints, each with its two-schedule witness.
    pub fn interferences(&self) -> Vec<Interference> {
        let hb = self.happens_before();
        let mut out = Vec::new();
        for (a, hb_a) in hb.iter().enumerate() {
            for (b, hb_b) in hb.iter().enumerate().skip(a + 1) {
                if hb_a[b] || hb_b[a] {
                    continue;
                }
                if let Some(resource) = self.foots[a].conflicts_with(&self.foots[b]) {
                    out.push(Interference {
                        a: self.events[a],
                        b: self.events[b],
                        resource,
                        witness: Witness {
                            first: self.linearize(a, b),
                            second: self.linearize(b, a),
                        },
                    });
                }
            }
        }
        out
    }
}

/// The per-source serial-queue refinement of the dependency wavefronts:
/// each step's stage is one past the deepest stage among its data
/// dependencies *and* its source's previous step — autonomous sources
/// answer one mediator request at a time, so each source's steps must
/// consume its fault-schedule slots in plan order.
fn serial_queue_levels(plan: &Plan) -> Vec<Vec<usize>> {
    let (_, deps) = dependencies(plan);
    let n = plan.steps.len();
    let mut level = vec![0usize; n];
    let mut last_of_source: Vec<Option<usize>> = vec![None; plan.n_sources];
    for idx in 0..n {
        let mut lv = 0;
        for &d in &deps[idx] {
            lv = lv.max(level[d] + 1);
        }
        if let Some(src) = plan.steps[idx].source() {
            if let Some(prev) = last_of_source[src.0] {
                lv = lv.max(level[prev] + 1);
            }
            last_of_source[src.0] = Some(idx);
        }
        level[idx] = lv;
    }
    let n_stages = level.iter().max().map_or(0, |m| m + 1);
    let mut stages = vec![Vec::new(); n_stages];
    for (idx, lv) in level.iter().enumerate() {
        stages[*lv].push(idx);
    }
    stages
}

/// Computes the execution stages the parallel executor runs: the
/// certified wavefronts refined with one serial queue per source, then
/// **verified** ([`verify_serial_queue_stages`]) — never trusted.
///
/// # Errors
/// Fails on structurally invalid plans and on any certificate-check
/// failure (which would indicate a bug in this module, never silently).
pub fn serial_queue_stages(plan: &Plan) -> Result<Vec<Vec<usize>>> {
    plan.validate()?;
    let stages = serial_queue_levels(plan);
    verify_serial_queue_stages(plan, &stages)?;
    Ok(stages)
}

/// The always-on (release-mode included) certificate check behind
/// [`serial_queue_stages`]: the stages must partition the steps, every
/// data dependency must land in a strictly earlier stage, no stage may
/// query a source twice, and the certified event graph over the stages
/// must be interference-free — no two unordered events with conflicting
/// footprints, cache events included.
///
/// # Errors
/// Fails with the violated invariant; interference failures carry the
/// witness schedule pair.
pub fn verify_serial_queue_stages(plan: &Plan, stages: &[Vec<usize>]) -> Result<()> {
    let fail = |msg: String| {
        Err(FusionError::invalid_plan(format!(
            "serial-queue certificate: {msg}"
        )))
    };
    let (_, deps) = dependencies(plan);
    let mut stage_of = vec![usize::MAX; plan.steps.len()];
    for (s, steps) in stages.iter().enumerate() {
        for &t in steps {
            if t >= plan.steps.len() || stage_of[t] != usize::MAX {
                return fail(format!("step {t} missing, duplicated, or out of range"));
            }
            stage_of[t] = s;
        }
    }
    if stage_of.contains(&usize::MAX) {
        return fail("stages do not cover every step".into());
    }
    for (s, steps) in stages.iter().enumerate() {
        let mut sources = Vec::new();
        for &t in steps {
            for &d in &deps[t] {
                if stage_of[d] >= s {
                    return fail(format!(
                        "step {t} in stage {s} reads step {d} of stage {}",
                        stage_of[d]
                    ));
                }
            }
            if let Some(src) = plan.steps[t].source() {
                if sources.contains(&src) {
                    return fail(format!(
                        "stage {s} queries R{} twice — serial queues must keep \
                         stages source-disjoint",
                        src.0 + 1
                    ));
                }
                sources.push(src);
            }
        }
    }
    let graph = EventGraph::certified(plan, stages, true);
    if let Some(i) = graph.interferences().into_iter().next() {
        return fail(format!("interference: {i}"));
    }
    Ok(())
}

/// Runs the interference analysis on `plan`'s own certified schedule:
/// the returned list is empty exactly when every pair of concurrent
/// events commutes. `cached` includes the answer-cache events.
///
/// # Errors
/// Fails on structurally invalid plans.
pub fn interference_report(plan: &Plan, cached: bool) -> Result<Vec<Interference>> {
    plan.validate()?;
    let stages = serial_queue_levels(plan);
    Ok(EventGraph::certified(plan, &stages, cached).interferences())
}

fn hb_index(events: &[Event], e: Event) -> Option<usize> {
    events.iter().position(|&x| x == e)
}

/// `conflicting-stage-footprints` findings over an event graph: pairs
/// of plan steps that may run concurrently with conflicting footprints.
pub fn conflicting_footprint_findings(_plan: &Plan, graph: &EventGraph) -> Vec<Diagnostic> {
    graph
        .interferences()
        .into_iter()
        .filter_map(|i| match (i.a, i.b) {
            (Event::Exec { step: a }, Event::Exec { step: b }) => Some(Diagnostic {
                rule: "conflicting-stage-footprints",
                severity: Severity::Error,
                step: a.min(b) + 1,
                message: format!(
                    "steps #{} and #{} may run concurrently but conflict on {}; {}",
                    a + 1,
                    b + 1,
                    i.resource,
                    i.witness
                ),
            }),
            _ => None,
        })
        .collect()
}

/// `cache-commit-race` findings: every cache admission must happen
/// after its source's recovery epoch bump, or a pre-fault answer can be
/// stamped with the post-fault epoch and served stale forever.
pub fn cache_commit_race_findings(plan: &Plan, graph: &EventGraph) -> Vec<Diagnostic> {
    let hb = graph.happens_before();
    let events = graph.events();
    let mut out = Vec::new();
    for (ci, &ev) in events.iter().enumerate() {
        let Event::Commit { step } = ev else {
            continue;
        };
        let Step::Sq { source, .. } = &plan.steps[step] else {
            continue;
        };
        let Some(bi) = hb_index(events, Event::EpochBump { source: source.0 }) else {
            continue;
        };
        if hb[bi][ci] {
            continue;
        }
        let (how, witness) = if hb[ci][bi] {
            (
                "runs before".to_string(),
                format!("schedule [{}]", render_schedule(&graph.linearize(ci, bi))),
            )
        } else {
            (
                "is unordered with".to_string(),
                Witness {
                    first: graph.linearize(ci, bi),
                    second: graph.linearize(bi, ci),
                }
                .to_string(),
            )
        };
        out.push(Diagnostic {
            rule: "cache-commit-race",
            severity: Severity::Error,
            step: step + 1,
            message: format!(
                "admission of step #{}'s answer {how} R{}'s recovery epoch \
                 bump: a pre-fault answer can be stamped with the post-fault \
                 epoch and served stale; {witness}",
                step + 1,
                source.0 + 1
            ),
        });
    }
    out
}

/// `epoch-read-before-bump` findings: every cache lookup (which reads
/// its source's epoch to validate entries) must happen before that
/// source's recovery bump, or the served set depends on scheduling.
pub fn epoch_read_before_bump_findings(plan: &Plan, graph: &EventGraph) -> Vec<Diagnostic> {
    let hb = graph.happens_before();
    let events = graph.events();
    let mut out = Vec::new();
    for (li, &ev) in events.iter().enumerate() {
        let Event::Lookup { step } = ev else {
            continue;
        };
        let Step::Sq { source, .. } = &plan.steps[step] else {
            continue;
        };
        let Some(bi) = hb_index(events, Event::EpochBump { source: source.0 }) else {
            continue;
        };
        if hb[li][bi] {
            continue;
        }
        let how = if hb[bi][li] {
            "runs after"
        } else {
            "is unordered with"
        };
        out.push(Diagnostic {
            rule: "epoch-read-before-bump",
            severity: Severity::Error,
            step: step + 1,
            message: format!(
                "lookup for step #{} {how} R{}'s recovery epoch bump: whether \
                 the entry serves depends on the schedule; {}",
                step + 1,
                source.0 + 1,
                Witness {
                    first: graph.linearize(li, bi),
                    second: graph.linearize(bi, li),
                }
            ),
        });
    }
    out
}

/// A lint with findings precomputed from an event graph.
macro_rules! graph_lint {
    ($name:ident, $rule:literal, $finder:ident) => {
        /// See the corresponding finding function.
        pub struct $name {
            findings: Vec<Diagnostic>,
        }

        impl $name {
            /// Precomputes findings over `plan`'s certified cached
            /// event graph.
            ///
            /// # Errors
            /// Fails on structurally invalid plans.
            pub fn new(plan: &Plan) -> Result<$name> {
                plan.validate()?;
                let stages = serial_queue_levels(plan);
                let graph = EventGraph::certified(plan, &stages, true);
                Ok($name {
                    findings: $finder(plan, &graph),
                })
            }

            /// A lint replaying findings computed from an explicit
            /// (possibly mutant) event graph.
            pub fn from_graph(plan: &Plan, graph: &EventGraph) -> $name {
                $name {
                    findings: $finder(plan, graph),
                }
            }
        }

        impl Lint for $name {
            fn name(&self) -> &'static str {
                $rule
            }

            fn check(&self, _plan: &Plan, _analysis: &mut Analysis) -> Vec<Diagnostic> {
                self.findings.clone()
            }
        }
    };
}

graph_lint!(
    ConflictingStageFootprints,
    "conflicting-stage-footprints",
    conflicting_footprint_findings
);
graph_lint!(
    CacheCommitRace,
    "cache-commit-race",
    cache_commit_race_findings
);
graph_lint!(
    EpochReadBeforeBump,
    "epoch-read-before-bump",
    epoch_read_before_bump_findings
);

/// The three interference lints over `plan`'s own certified schedule —
/// provably quiet on any schedule [`verify_serial_queue_stages`]
/// accepts, loud on hand-built mutant graphs (see the golden corpus).
///
/// # Errors
/// Fails on structurally invalid plans.
pub fn interference_rules(plan: &Plan) -> Result<Vec<Box<dyn Lint>>> {
    Ok(vec![
        Box::new(ConflictingStageFootprints::new(plan)?),
        Box::new(CacheCommitRace::new(plan)?),
        Box::new(EpochReadBeforeBump::new(plan)?),
    ])
}

// ---------------------------------------------------------------------
// Shared-cache server events
// ---------------------------------------------------------------------
//
// The mediator server interleaves many queries over one sharded answer
// cache. Its atomic units are not plan steps but whole critical
// sections over cache shards, so they get their own event type. The
// footprint model is coarse by design — a critical section
// read-modify-writes every shard it locks — because that is exactly the
// granularity at which the server's replay-parity argument works: two
// critical sections that share a shard are ordered by that shard's
// lock, two that don't commute.

/// One critical section of the multi-query mediator server against the
/// shared answer cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerEvent {
    /// Admission of query `query`: the planning snapshot plus lookup
    /// resolution, holding every shard for a consistent coverage view.
    Admit {
        /// Server-assigned query id.
        query: usize,
    },
    /// Commit of query `query`'s pending cache admissions, holding only
    /// the shards owning its fetched sources.
    Commit {
        /// Server-assigned query id.
        query: usize,
    },
    /// An update bump of `source`'s epoch, holding only its owning
    /// shard.
    Bump {
        /// The updated source.
        source: usize,
    },
}

impl std::fmt::Display for ServerEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerEvent::Admit { query } => write!(f, "admit(q{query})"),
            ServerEvent::Commit { query } => write!(f, "commit(q{query})"),
            ServerEvent::Bump { source } => write!(f, "bump[R{}]", source + 1),
        }
    }
}

/// One logged critical section: the event, the global ticket drawn
/// while its shard locks were held, and the per-shard operation counts
/// observed at release — the raw material of [`verify_server_log`].
#[derive(Debug, Clone)]
pub struct ServerOp {
    /// Ticket drawn inside the critical section (global total order).
    pub ticket: u64,
    /// What the critical section did.
    pub event: ServerEvent,
    /// `(shard, guard-applied operations so far)` for every held shard,
    /// ascending by shard, observed while the locks were still held.
    pub shard_seqs: Vec<(usize, u64)>,
}

/// The footprint of a server critical section: a read-modify-write of
/// every shard it held.
pub fn server_event_footprint(op: &ServerOp) -> Footprint {
    let shards: Vec<Resource> = op
        .shard_seqs
        .iter()
        .map(|&(k, _)| Resource::Shard(k))
        .collect();
    Footprint {
        reads: shards.clone(),
        writes: shards,
    }
    .normalized()
}

/// Verifies that a server operation log is a valid linearization: the
/// ticket order must agree with the order every shard actually applied
/// its critical sections. Concretely, after sorting by ticket:
///
/// * tickets are unique,
/// * an `Admit` holds every shard, a `Bump` exactly its source's owning
///   shard (`source % n_shards`),
/// * per shard, the observed operation counts are non-decreasing — an
///   inversion (a later-ticket critical section whose mutations a shard
///   applied *before* an earlier-ticket one) shows up as a decrease.
///
/// Shard-disjoint operations may take tickets in either order; their
/// footprints ([`server_event_footprint`]) are disjoint, so they
/// commute and any serial replay in ticket order reproduces the shard
/// states bit for bit. This is the always-on guard behind the server's
/// replay-parity contract.
///
/// # Errors
/// Fails with the violated invariant.
pub fn verify_server_log(ops: &[ServerOp], n_shards: usize) -> Result<()> {
    let fail = |msg: String| {
        Err(FusionError::invalid_plan(format!(
            "server log certificate: {msg}"
        )))
    };
    let mut sorted: Vec<&ServerOp> = ops.iter().collect();
    sorted.sort_by_key(|op| op.ticket);
    for pair in sorted.windows(2) {
        if pair[0].ticket == pair[1].ticket {
            return fail(format!(
                "{} and {} share ticket {}",
                pair[0].event, pair[1].event, pair[0].ticket
            ));
        }
    }
    let mut last_seq: Vec<Option<u64>> = vec![None; n_shards];
    for op in sorted {
        let held: Vec<usize> = op.shard_seqs.iter().map(|&(k, _)| k).collect();
        match op.event {
            ServerEvent::Admit { query } => {
                if held != (0..n_shards).collect::<Vec<_>>() {
                    return fail(format!(
                        "admit(q{query}) held shards {held:?}, admission must \
                         hold all {n_shards} for a consistent snapshot"
                    ));
                }
            }
            ServerEvent::Bump { source } => {
                if held != [source % n_shards] {
                    return fail(format!(
                        "bump[R{}] held shards {held:?}, expected exactly \
                         shard {}",
                        source + 1,
                        source % n_shards
                    ));
                }
            }
            ServerEvent::Commit { query } => {
                if held.is_empty() {
                    return fail(format!("commit(q{query}) held no shard"));
                }
            }
        }
        for &(k, seq) in &op.shard_seqs {
            if k >= n_shards {
                return fail(format!("{} held unknown shard {k}", op.event));
            }
            if let Some(prev) = last_seq[k] {
                if seq < prev {
                    return fail(format!(
                        "shard {k} applied {} (ticket {}) before an \
                         earlier-ticket critical section: op count went \
                         {prev} -> {seq}; ticket order is not a valid \
                         linearization",
                        op.event, op.ticket
                    ));
                }
            }
            last_seq[k] = Some(seq);
        }
    }
    Ok(())
}

/// Counts the pairs of logged critical sections that commute (disjoint
/// shard footprints, [`Footprint::conflicts_with`] is `None`) — the
/// concurrency the sharding actually bought, reported by `\sessions`.
pub fn server_commuting_pairs(ops: &[ServerOp]) -> usize {
    let foots: Vec<Footprint> = ops.iter().map(server_event_footprint).collect();
    let mut n = 0;
    for (i, a) in foots.iter().enumerate() {
        for b in foots.iter().skip(i + 1) {
            if a.conflicts_with(b).is_none() {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::{filter_plan, sja_optimal};
    use crate::plan::{SimplePlanSpec, VarId};
    use fusion_types::{CondId, SourceId};

    fn model() -> TableCostModel {
        TableCostModel::uniform(2, 3, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0)
    }

    /// The 9-step plan of the parallel executor's serial-queue test: a
    /// later step (`sq(c2, R3)`, index 6) with a smaller dependency
    /// level than an earlier same-source step (index 2).
    fn queue_order_plan() -> Plan {
        let mut plan = Plan::new(vec![], VarId(0), 2, 3);
        let x0 = plan.fresh_var("X0");
        let x1 = plan.fresh_var("X1");
        let x2 = plan.fresh_var("X2");
        let u1 = plan.fresh_var("U1");
        let y0 = plan.fresh_var("Y0");
        let y1 = plan.fresh_var("Y1");
        let y2 = plan.fresh_var("Y2");
        let y2r = plan.fresh_var("Y2R");
        let r = plan.fresh_var("R");
        plan.steps = vec![
            Step::Sq {
                out: x0,
                cond: CondId(0),
                source: SourceId(0),
            },
            Step::Sq {
                out: x1,
                cond: CondId(0),
                source: SourceId(1),
            },
            Step::Sq {
                out: x2,
                cond: CondId(0),
                source: SourceId(2),
            },
            Step::Union {
                out: u1,
                inputs: vec![x0, x1, x2],
            },
            Step::Sjq {
                out: y0,
                cond: CondId(1),
                source: SourceId(0),
                input: u1,
            },
            Step::Sjq {
                out: y1,
                cond: CondId(1),
                source: SourceId(1),
                input: u1,
            },
            Step::Sq {
                out: y2,
                cond: CondId(1),
                source: SourceId(2),
            },
            Step::Intersect {
                out: y2r,
                inputs: vec![u1, y2],
            },
            Step::Union {
                out: r,
                inputs: vec![y0, y1, y2r],
            },
        ];
        plan.result = r;
        plan
    }

    /// The same plan's stages with the serial-queue refinement removed:
    /// steps 2 and 6 (both R3) land in stage 0 together.
    fn racy_stages() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2, 6], vec![3], vec![4, 5, 7], vec![8]]
    }

    #[test]
    fn every_step_kind_gets_a_footprint() {
        let mut plan = Plan::new(vec![], VarId(0), 2, 2);
        let t = plan.fresh_rel("T");
        let a = plan.fresh_var("A");
        let b = plan.fresh_var("B");
        let c = plan.fresh_var("C");
        let d = plan.fresh_var("D");
        let e = plan.fresh_var("E");
        let f = plan.fresh_var("F");
        let g = plan.fresh_var("G");
        plan.steps = vec![
            Step::Lq {
                out: t,
                source: SourceId(0),
            },
            Step::LocalSq {
                out: a,
                cond: CondId(0),
                rel: t,
            },
            Step::Sq {
                out: b,
                cond: CondId(1),
                source: SourceId(1),
            },
            Step::Sjq {
                out: c,
                cond: CondId(0),
                source: SourceId(1),
                input: b,
            },
            Step::SjqBloom {
                out: d,
                cond: CondId(1),
                source: SourceId(1),
                input: c,
                bits: 8,
            },
            Step::Union {
                out: e,
                inputs: vec![a, d],
            },
            Step::Intersect {
                out: f,
                inputs: vec![a, e],
            },
            Step::Diff {
                out: g,
                left: f,
                right: a,
            },
        ];
        plan.result = g;
        let foots = plan_footprints(&plan);
        assert_eq!(foots.len(), plan.steps.len());
        for (t, f) in foots.iter().enumerate() {
            assert!(
                f.writes.contains(&Resource::LedgerSlot(t)),
                "step {t} missing its ledger slot"
            );
            assert!(
                f.writes.len() >= 2 || plan.steps[t].source().is_none(),
                "remote step {t} should write its shard and output"
            );
        }
        // Remote steps read-modify-write their shard.
        assert!(foots[0].writes.contains(&Resource::NetShard(0)));
        assert!(foots[2].reads.contains(&Resource::NetShard(1)));
        // Local steps never touch the network.
        for f in [&foots[1], &foots[5], &foots[6], &foots[7]] {
            assert!(!f
                .reads
                .iter()
                .chain(&f.writes)
                .any(|r| matches!(r, Resource::NetShard(_))));
        }
    }

    #[test]
    fn certified_schedules_are_interference_free() {
        let m = model();
        for plan in [
            filter_plan(&m).plan,
            sja_optimal(&m).plan,
            SimplePlanSpec::filter(3, 2).build(2).unwrap(),
            queue_order_plan(),
        ] {
            let report = interference_report(&plan, true).unwrap();
            assert!(
                report.is_empty(),
                "certified schedule interferes: {}",
                report[0]
            );
            assert!(interference_report(&plan, false).unwrap().is_empty());
            let stages = serial_queue_stages(&plan).unwrap();
            assert!(verify_serial_queue_stages(&plan, &stages).is_ok());
        }
    }

    #[test]
    fn dropping_the_serial_queue_exposes_the_shard_race() {
        let plan = queue_order_plan();
        let stages = racy_stages();
        let err = verify_serial_queue_stages(&plan, &stages).unwrap_err();
        assert!(err.to_string().contains("source-disjoint"), "{err}");
        // The event graph over the racy stages interferes on R3's shard,
        // and the lint pinpoints the step pair with a witness.
        let graph = EventGraph::certified(&plan, &stages, false);
        let findings = conflicting_footprint_findings(&plan, &graph);
        assert!(!findings.is_empty());
        assert!(findings[0].message.contains("R3's network shard"));
        assert!(findings[0].message.contains("witness schedules"));
        let interferences = graph.interferences();
        let shard = interferences
            .iter()
            .find(|i| {
                matches!(
                    (i.a, i.b),
                    (Event::Exec { step: 2 }, Event::Exec { step: 6 })
                )
            })
            .expect("steps 2 and 6 must interfere");
        // Both witnesses are complete schedules over the same events.
        assert_eq!(shard.witness.first.len(), graph.events().len());
        assert_eq!(shard.witness.second.len(), graph.events().len());
        let pos = |s: &[Event], e: Event| s.iter().position(|&x| x == e).unwrap();
        let (w1, w2) = (&shard.witness.first, &shard.witness.second);
        assert!(
            pos(w1, Event::Exec { step: 2 }) < pos(w1, Event::Exec { step: 6 }),
            "first witness runs the pair in order"
        );
        assert!(
            pos(w2, Event::Exec { step: 6 }) < pos(w2, Event::Exec { step: 2 }),
            "second witness inverts the pair"
        );
    }

    #[test]
    fn commit_bump_inversion_is_flagged() {
        // A certified-shaped graph with the bump → commit edges removed:
        // admissions race recovery bumps.
        let plan = SimplePlanSpec::filter(1, 1).build(1).unwrap();
        let mut g = EventGraph::new();
        let lk = g.push(&plan, Event::Lookup { step: 0 });
        let ex: Vec<usize> = (0..plan.steps.len())
            .map(|t| g.push(&plan, Event::Exec { step: t }))
            .collect();
        g.add_edge(lk, ex[0]);
        for w in ex.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let bump = g.push(&plan, Event::EpochBump { source: 0 });
        let commit = g.push(&plan, Event::Commit { step: 0 });
        g.add_edge(*ex.last().unwrap(), bump);
        g.add_edge(*ex.last().unwrap(), commit);
        let findings = cache_commit_race_findings(&plan, &g);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unordered"), "{}", findings[0]);
        // And the generic report sees the same pair.
        assert!(g.interferences().iter().any(|i| matches!(
            (i.a, i.b),
            (Event::EpochBump { .. }, Event::Commit { .. })
                | (Event::Commit { .. }, Event::EpochBump { .. })
        )));
        // Forcing commit → bump (the mutant executor's order) turns the
        // race into a definite inversion.
        g.add_edge(commit, bump);
        let findings = cache_commit_race_findings(&plan, &g);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("runs before"),
            "{}",
            findings[0]
        );
    }

    #[test]
    fn unordered_lookup_and_bump_is_flagged() {
        let plan = SimplePlanSpec::filter(1, 1).build(1).unwrap();
        let mut g = EventGraph::new();
        let lk = g.push(&plan, Event::Lookup { step: 0 });
        let ex0 = g.push(&plan, Event::Exec { step: 0 });
        let ex1 = g.push(&plan, Event::Exec { step: 1 });
        let bump = g.push(&plan, Event::EpochBump { source: 0 });
        let commit = g.push(&plan, Event::Commit { step: 0 });
        // The bump is ordered against execution but not the lookup.
        g.add_edge(lk, ex0);
        g.add_edge(ex0, ex1);
        g.add_edge(bump, ex0);
        g.add_edge(ex1, commit);
        let findings = epoch_read_before_bump_findings(&plan, &g);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unordered"), "{}", findings[0]);
        // The properly phased graph is quiet.
        let stages = serial_queue_stages(&plan).unwrap();
        let good = EventGraph::certified(&plan, &stages, true);
        assert!(epoch_read_before_bump_findings(&plan, &good).is_empty());
        assert!(cache_commit_race_findings(&plan, &good).is_empty());
        assert!(conflicting_footprint_findings(&plan, &good).is_empty());
    }

    fn admit(ticket: u64, query: usize, seqs: &[(usize, u64)]) -> ServerOp {
        ServerOp {
            ticket,
            event: ServerEvent::Admit { query },
            shard_seqs: seqs.to_vec(),
        }
    }

    #[test]
    fn valid_server_log_certifies() {
        // Two shards: admit q0 (resolves on both), commit q0 on shard 0,
        // bump R2 (shard 1), admit q1. Shard-disjoint commit/bump may
        // take tickets in either order relative to each other.
        let ops = vec![
            admit(0, 0, &[(0, 1), (1, 1)]),
            ServerOp {
                ticket: 2,
                event: ServerEvent::Bump { source: 1 },
                shard_seqs: vec![(1, 2)],
            },
            ServerOp {
                ticket: 1,
                event: ServerEvent::Commit { query: 0 },
                shard_seqs: vec![(0, 2)],
            },
            admit(3, 1, &[(0, 3), (1, 3)]),
        ];
        verify_server_log(&ops, 2).unwrap();
        // The commit and the bump are the one commuting pair.
        assert_eq!(server_commuting_pairs(&ops), 1);
        let f = server_event_footprint(&ops[1]);
        assert_eq!(f.writes, vec![Resource::Shard(1)]);
    }

    #[test]
    fn server_log_inversions_are_caught() {
        // A shard that applied a later-ticket admit before an
        // earlier-ticket one: op counts decrease in ticket order.
        let inverted = vec![
            admit(0, 0, &[(0, 2), (1, 2)]),
            admit(1, 1, &[(0, 1), (1, 1)]),
        ];
        let err = verify_server_log(&inverted, 2).unwrap_err();
        assert!(
            err.to_string().contains("not a valid linearization"),
            "{err}"
        );

        // An admission that failed to hold every shard.
        let partial = vec![admit(0, 0, &[(0, 1)])];
        let err = verify_server_log(&partial, 2).unwrap_err();
        assert!(err.to_string().contains("hold all"), "{err}");

        // A bump holding the wrong shard.
        let wrong = vec![ServerOp {
            ticket: 0,
            event: ServerEvent::Bump { source: 0 },
            shard_seqs: vec![(1, 1)],
        }];
        let err = verify_server_log(&wrong, 2).unwrap_err();
        assert!(err.to_string().contains("expected exactly"), "{err}");

        // Duplicate tickets.
        let dup = vec![
            admit(5, 0, &[(0, 1), (1, 1)]),
            admit(5, 1, &[(0, 2), (1, 2)]),
        ];
        let err = verify_server_log(&dup, 2).unwrap_err();
        assert!(err.to_string().contains("share ticket"), "{err}");
    }

    #[test]
    fn interference_rules_are_quiet_on_optimizer_plans() {
        let m = model();
        for plan in [filter_plan(&m).plan, sja_optimal(&m).plan] {
            let mut analysis = crate::analyze::analyze_plan(&plan).unwrap();
            for rule in interference_rules(&plan).unwrap() {
                assert!(
                    rule.check(&plan, &mut analysis).is_empty(),
                    "{} fired on a certified plan",
                    rule.name()
                );
            }
        }
    }
}
