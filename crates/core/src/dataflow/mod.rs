//! Static dataflow and cost-bound analysis over the step IR.
//!
//! Where [`analyze`](crate::analyze) proves *what* a plan computes, this
//! pass bounds *how much it can cost* and *which steps may run
//! concurrently* — the static side of the response-time future work the
//! paper names in its conclusion. For any plan it derives:
//!
//! * a **def-use graph** with per-step liveness (which steps can reach
//!   the result at all);
//! * a **happens-before DAG** and a *parallel-stage decomposition*:
//!   wavefronts of steps touching disjoint sources and variables,
//!   race-free by construction and machine-checked against the BDD
//!   analyzer's semantics ([`StageDecomposition`]);
//! * sound per-step **cardinality intervals** `[lo, hi]`, seeded from
//!   source statistics ([`SourceBounds`]) and propagated through the
//!   `sq`/`sjq`/`∪`/`∩`/`−`/Bloom algebra;
//! * plan-level **cost intervals** and a critical-path **response-time
//!   lower bound**.
//!
//! # Interval algebra
//!
//! All sets a plan manipulates live in a universe of at most `domain`
//! merge items. Given sound seeds `[lo_ij, hi_ij] ∋ |sq(c_i, R_j)|`,
//! each step's output interval is:
//!
//! | step                | `lo`                          | `hi`              |
//! |---------------------|-------------------------------|-------------------|
//! | `sq` / local `sq`   | `lo_ij`                       | `hi_ij`           |
//! | `sjq(c,R,Y)`        | `max(0, lo_Y + lo_ij − domain)` | `min(hi_Y, hi_ij)` |
//! | `sjq(c,R,bloom(Y))` | same as `sjq`                 | `hi_ij`           |
//! | `∪`                 | `max_i lo_i`                  | `min(Σ hi_i, Σ_{j∈src(∪)} item̂_j, domain)` |
//! | `∩`                 | `max(0, Σ lo_i − (k−1)·domain)` | `min_i hi_i`    |
//! | `Y − Z`             | `max(0, lo_Y − hi_Z)`         | `hi_Y`            |
//!
//! Every rule is the tight inclusion–exclusion bound for arbitrary sets
//! in a `domain`-element universe, so soundness of the seeds implies
//! soundness everywhere (the `tests/dataflow_bounds.rs` battery checks
//! this against the reference interpreter on random worlds).
//!
//! The `∪` rule folds in an SPJU-style key constraint: the analysis
//! tracks, per variable, the *source support* — the set of sources
//! whose rows can contribute items (`sq`/`sjq`/Bloom results live at
//! one source; `∪` unions supports, `∩` keeps its smallest-mass input's
//! support, `−` keeps the left's). A union over variables all drawn
//! from sources `src(∪)` can never exceed `Σ_{j∈src(∪)} item̂_j`
//! distinct merge items, where `item̂_j` bounds source `j`'s distinct
//! items — often far below `Σ hi_i` when conditions overlap at a
//! source.
//!
//! Cost intervals follow from the §2.4 axioms: `sq`/`lq` costs are
//! model constants, and `sjq_cost` is monotone in the shipped-set size,
//! so `[sjq_cost(lo), sjq_cost(hi)]` brackets the true charge. A
//! semijoin whose input is provably empty is priced at zero on the low
//! side — matching the executor's empty-bindings no-op.

mod interference;
mod lint;
mod reopt;
mod sharing;

pub use interference::{
    cache_commit_race_findings, conflicting_footprint_findings, epoch_read_before_bump_findings,
    event_footprint, interference_report, interference_rules, plan_footprints, serial_queue_stages,
    server_commuting_pairs, server_event_footprint, step_footprint, verify_serial_queue_stages,
    verify_server_log, CacheCommitRace, ConflictingStageFootprints, EpochReadBeforeBump, Event,
    EventGraph, Footprint, Interference, Resource, ServerEvent, ServerOp, Witness,
};
pub use lint::{dataflow_lint_plan, dataflow_rules};
pub use reopt::{certify_switch, SwitchCertificate};
pub use sharing::{
    duplicate_inflight_findings, merged_schedule, sharing_report, sharing_rules,
    unshared_subsumed_findings, unsound_merge_findings, verify_merged_schedule,
    verify_share_windows, DuplicateInflightStep, EdgeKind, FanOut, InFlightPlan, MergeCertificate,
    MergedFetch, MergedSchedule, Prover, ShareLink, SharingEdge, SharingGraph, SharingReport,
    StepNode, UnsharedSubsumedStep, UnsoundMergeResidual,
};

use crate::analyze::analyze_plan;
use crate::cost::CostModel;
use crate::plan::{Plan, Step};
use fusion_stats::TableStats;
use fusion_types::error::{FusionError, Result};
use fusion_types::{CmpOp, CondId, Condition, Cost, ItemSet, Predicate, Relation, SourceId};

/// A closed interval `[lo, hi]` of set cardinalities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Interval {
    /// `[lo, hi]`, clamped so `lo <= hi` and both are non-negative.
    pub fn new(lo: f64, hi: f64) -> Interval {
        let hi = hi.max(0.0);
        Interval {
            lo: lo.clamp(0.0, hi),
            hi,
        }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Interval {
        Interval::new(x, x)
    }

    /// True when `x` lies inside (with a small tolerance for the float
    /// arithmetic of the propagation rules).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo - 1e-9 && x <= self.hi + 1e-9
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.0}, {:.0}]", self.lo, self.hi)
    }
}

/// A cost interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostInterval {
    /// Guaranteed (lower-bound) cost.
    pub lo: Cost,
    /// Worst-case (upper-bound) cost.
    pub hi: Cost,
}

impl CostInterval {
    /// The zero interval.
    pub const ZERO: CostInterval = CostInterval {
        lo: Cost::ZERO,
        hi: Cost::ZERO,
    };

    /// True when `c` lies inside (with float tolerance).
    pub fn contains(&self, c: Cost) -> bool {
        let tol = 1e-9 * self.hi.value().abs().max(1.0);
        c.value() >= self.lo.value() - tol && c.value() <= self.hi.value() + tol
    }
}

impl std::fmt::Display for CostInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Sound seeds for the interval propagation: per-cell bounds on
/// `|sq(c_i, R_j)|`, per-source bounds on `|items(R_j)|`, and an upper
/// bound on the size of any set a plan over these sources can hold.
#[derive(Debug, Clone)]
pub struct SourceBounds {
    /// `sq[i][j]` bounds `|sq(c_i, R_j)|`.
    pub sq: Vec<Vec<Interval>>,
    /// `items[j]` bounds the distinct merge items of `R_j`.
    pub items: Vec<Interval>,
    /// Upper bound on any plan set: `|⋃_j items(R_j)| <= domain`.
    pub domain: f64,
}

impl SourceBounds {
    /// The loosest sound seeds a cost model justifies: every selection
    /// result lies in `[0, domain_size]`. Always sound relative to the
    /// model's domain assumption, never tight.
    pub fn from_model<M: CostModel>(model: &M) -> SourceBounds {
        let d = model.domain_size().max(0.0);
        let all = Interval::new(0.0, d);
        SourceBounds {
            sq: vec![vec![all; model.n_sources()]; model.n_conditions()],
            items: vec![all; model.n_sources()],
            domain: d,
        }
    }

    /// *Believed* seeds: a multiplicative trust region of width `slack`
    /// around the model's own estimates, `[est/slack, min(est·slack, d)]`
    /// per cell. Unlike every other seeding these are **not sound** — they
    /// encode how far the optimizer is willing to trust its estimates
    /// before an observation counts as evidence the plan was chosen on
    /// bad numbers. The runtime re-optimizer propagates them through
    /// [`analyze_dataflow`] and treats an observation *outside* its
    /// propagated interval as the trigger to re-search the remaining
    /// plan suffix.
    ///
    /// # Panics
    /// Panics if `slack < 1` (the region must contain the estimate).
    pub fn believed_from_model<M: CostModel>(model: &M, slack: f64) -> SourceBounds {
        assert!(slack >= 1.0, "trust-region slack must be >= 1, got {slack}");
        let d = model.domain_size().max(0.0);
        let sq = (0..model.n_conditions())
            .map(|i| {
                (0..model.n_sources())
                    .map(|j| {
                        let est = model.est_sq_items(CondId(i), SourceId(j)).max(0.0);
                        Interval::new(est / slack, (est * slack).min(d))
                    })
                    .collect()
            })
            .collect();
        SourceBounds {
            sq,
            items: vec![Interval::new(0.0, d); model.n_sources()],
            domain: d,
        }
    }

    /// Seeds derived from per-source [`TableStats`]: exact distinct-item
    /// counts cap every cell, exact MCV counts tighten point predicates,
    /// and exact histogram min/max prove range predicates empty when the
    /// queried range misses the observed one. Only *exact* statistics
    /// are used — estimates never tighten a bound — so the result is
    /// sound whenever the statistics describe the actual relations.
    pub fn from_stats(conditions: &[Condition], stats: &[TableStats]) -> SourceBounds {
        let items: Vec<Interval> = stats
            .iter()
            .map(|ts| Interval::point(ts.distinct_items as f64))
            .collect();
        let domain: f64 = stats.iter().map(|ts| ts.distinct_items as f64).sum();
        let sq = conditions
            .iter()
            .map(|c| {
                stats
                    .iter()
                    .map(|ts| pred_item_bound(&c.pred, ts))
                    .collect()
            })
            .collect();
        SourceBounds { sq, items, domain }
    }

    /// Exact seeds computed by running every selection against the real
    /// relations: each cell is a point interval. Used by the soundness
    /// battery and anywhere ground truth is available.
    ///
    /// # Errors
    /// Propagates predicate evaluation failures.
    pub fn exact_from_relations(
        conditions: &[Condition],
        relations: &[Relation],
    ) -> Result<SourceBounds> {
        let mut sq = Vec::with_capacity(conditions.len());
        for c in conditions {
            let mut row = Vec::with_capacity(relations.len());
            for r in relations {
                let res = r.select_items(c)?;
                row.push(Interval::point(res.items.len() as f64));
            }
            sq.push(row);
        }
        let items: Vec<Interval> = relations
            .iter()
            .map(|r| Interval::point(r.distinct_items().len() as f64))
            .collect();
        let mut all = ItemSet::empty();
        for r in relations {
            all = all.union(&r.distinct_items());
        }
        Ok(SourceBounds {
            sq,
            items,
            domain: all.len() as f64,
        })
    }
}

/// Bounds the number of distinct merge items `sq(pred, R)` returns,
/// using only exact statistics from `ts`.
fn pred_item_bound(pred: &Predicate, ts: &TableStats) -> Interval {
    let d = ts.distinct_items as f64;
    let rows = pred_row_bound(pred, ts);
    // `k` matching rows hold at most `min(k, d)` distinct items and,
    // when `k >= 1`, at least one.
    let lo = if rows.lo >= ts.rows as f64 - 0.5 {
        // Every row matches: the result carries every distinct item.
        d
    } else if rows.lo >= 1.0 {
        1.0
    } else {
        0.0
    };
    Interval::new(lo, rows.hi.min(d))
}

/// Bounds the number of *rows* of the relation matching `pred`, using
/// only exact statistics (MCV counts and histogram min/max are exact in
/// [`fusion_stats`]; everything estimated is ignored).
fn pred_row_bound(pred: &Predicate, ts: &TableStats) -> Interval {
    let rows = ts.rows as f64;
    let loose = Interval::new(0.0, rows);
    match pred {
        Predicate::Const(true) => Interval::point(rows),
        Predicate::Const(false) => Interval::point(0.0),
        Predicate::And(ps) => {
            if ps.is_empty() {
                return Interval::point(rows);
            }
            let hi = ps
                .iter()
                .map(|p| pred_row_bound(p, ts).hi)
                .fold(rows, f64::min);
            // Inclusion–exclusion low side: |∩| >= Σ lo_i − (k−1)·rows.
            let lo_sum: f64 = ps.iter().map(|p| pred_row_bound(p, ts).lo).sum();
            Interval::new(lo_sum - (ps.len() as f64 - 1.0) * rows, hi)
        }
        Predicate::Or(ps) => {
            if ps.is_empty() {
                return Interval::point(0.0);
            }
            let hi = ps
                .iter()
                .map(|p| pred_row_bound(p, ts).hi)
                .sum::<f64>()
                .min(rows);
            let lo = ps
                .iter()
                .map(|p| pred_row_bound(p, ts).lo)
                .fold(0.0, f64::max);
            Interval::new(lo, hi)
        }
        Predicate::Cmp {
            attr,
            op: CmpOp::Eq,
            value,
        } => {
            let Some(col) = ts.column(attr) else {
                return loose;
            };
            match col.mcv.iter().find(|(v, _)| v == value) {
                Some((_, c)) => Interval::point(*c as f64),
                None if col.distinct <= col.mcv.len() => {
                    // The MCV list covers every observed value.
                    Interval::point(0.0)
                }
                None => {
                    // Untracked values occur at most as often as the
                    // rarest tracked one.
                    let cap = col.mcv.last().map_or(rows, |(_, c)| *c as f64);
                    Interval::new(0.0, cap)
                }
            }
        }
        Predicate::Cmp { attr, op, value } => range_row_bound(attr, ts, pred_range(*op, value)),
        Predicate::Between { attr, lo, hi } => match (lo.as_f64(), hi.as_f64()) {
            (Some(l), Some(h)) => range_row_bound(attr, ts, Some((l, h))),
            _ => loose,
        },
        Predicate::InList { attr, values } => {
            let per: Vec<Interval> = values
                .iter()
                .map(|v| pred_row_bound(&Predicate::eq(attr.clone(), v.clone()), ts))
                .collect();
            let hi = per.iter().map(|b| b.hi).sum::<f64>().min(rows);
            let lo = per.iter().map(|b| b.lo).fold(0.0, f64::max);
            Interval::new(lo, hi)
        }
        _ => loose,
    }
}

/// The *closed* numeric range `[lo, hi]` a comparison accepts, if
/// representable. Strict comparisons exclude the boundary, so their
/// endpoint steps to the adjacent representable float — otherwise
/// `D < max` would wrongly count the rows sitting exactly at `max`.
fn pred_range(op: CmpOp, value: &fusion_types::Value) -> Option<(f64, f64)> {
    let v = value.as_f64()?;
    match op {
        CmpOp::Lt => Some((f64::NEG_INFINITY, v.next_down())),
        CmpOp::Le => Some((f64::NEG_INFINITY, v)),
        CmpOp::Gt => Some((v.next_up(), f64::INFINITY)),
        CmpOp::Ge => Some((v, f64::INFINITY)),
        CmpOp::Eq => Some((v, v)),
        CmpOp::Ne => None,
    }
}

/// Row bound for a numeric range predicate: the histogram's min/max are
/// exact, so a query range strictly outside `[min, max]` matches zero
/// rows, and a range covering it matches every non-null row.
fn range_row_bound(attr: &str, ts: &TableStats, range: Option<(f64, f64)>) -> Interval {
    let rows = ts.rows as f64;
    let loose = Interval::new(0.0, rows);
    let (Some(col), Some((qlo, qhi))) = (ts.column(attr), range) else {
        return loose;
    };
    let Some(h) = &col.histogram else {
        return loose;
    };
    if qhi < h.min() || qlo > h.max() {
        return Interval::point(0.0);
    }
    if qlo <= h.min() && qhi >= h.max() && col.nulls == 0 {
        return Interval::point(rows);
    }
    loose
}

/// The parallel-stage decomposition of a plan: a partition of the step
/// indices into wavefronts such that, within a stage, no two steps touch
/// the same source or exchange data. Stages execute sequentially; steps
/// inside a stage are free to run concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDecomposition {
    /// Step indices per stage, in ascending order inside each stage.
    pub stages: Vec<Vec<usize>>,
    /// Stage index of each step.
    pub stage_of: Vec<usize>,
}

impl StageDecomposition {
    /// The steps flattened stage by stage — a valid execution order.
    pub fn flattened_order(&self) -> Vec<usize> {
        self.stages.iter().flatten().copied().collect()
    }
}

/// The completed dataflow analysis of one plan.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Step defining each item-set variable (indexed by `VarId`).
    pub def_of: Vec<Option<usize>>,
    /// Per-step data dependencies: indices of the steps whose outputs
    /// this step reads (variables read, plus the `lq` behind a local
    /// selection).
    pub deps: Vec<Vec<usize>>,
    /// Per-step liveness: does the step's output reach the result?
    pub live: Vec<bool>,
    /// Per-variable liveness: is the variable the result or read by a
    /// live step?
    pub live_vars: Vec<bool>,
    /// The certified parallel-stage decomposition.
    pub stages: StageDecomposition,
    /// Cardinality interval of every item-set variable.
    pub var_bounds: Vec<Interval>,
    /// Cardinality interval of every step's output set (for `lq`, the
    /// loaded relation's distinct items).
    pub step_bounds: Vec<Interval>,
    /// Cost interval of every step (zero for local operations).
    pub step_costs: Vec<CostInterval>,
    /// Plan-level cost interval (sum over steps).
    pub total_cost: CostInterval,
    /// Critical-path response-time lower bound: no schedule respecting
    /// the dependency DAG and per-source serialization finishes the
    /// result sooner than this, even at guaranteed-minimum step costs.
    pub response_lb: f64,
    /// Per-step read/write footprints over the executors' shared state
    /// (see [`step_footprint`]).
    pub footprints: Vec<Footprint>,
}

/// Def-use structure: the defining step per variable and the data
/// dependencies per step.
pub(crate) fn dependencies(plan: &Plan) -> (Vec<Option<usize>>, Vec<Vec<usize>>) {
    let mut def_of: Vec<Option<usize>> = vec![None; plan.var_names.len()];
    let mut rel_def: Vec<Option<usize>> = vec![None; plan.rel_names.len()];
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(plan.steps.len());
    for (t, s) in plan.steps.iter().enumerate() {
        let mut d: Vec<usize> = s.used_vars().iter().filter_map(|v| def_of[v.0]).collect();
        if let Step::LocalSq { rel, .. } = s {
            if let Some(lq) = rel_def[rel.0] {
                d.push(lq);
            }
        }
        d.sort_unstable();
        d.dedup();
        deps.push(d);
        if let Some(v) = s.defined_var() {
            def_of[v.0] = Some(t);
        }
        if let Step::Lq { out, .. } = s {
            rel_def[out.0] = Some(t);
        }
    }
    (def_of, deps)
}

/// Per-step and per-variable liveness: a backward walk from the result.
fn liveness(plan: &Plan, def_of: &[Option<usize>]) -> (Vec<bool>, Vec<bool>) {
    let mut live = vec![false; plan.steps.len()];
    let mut live_vars = vec![false; plan.var_names.len()];
    let mut live_rel = vec![false; plan.rel_names.len()];
    let mut stack = vec![plan.result];
    live_vars[plan.result.0] = true;
    while let Some(v) = stack.pop() {
        let Some(t) = def_of.get(v.0).copied().flatten() else {
            continue;
        };
        if live[t] {
            continue;
        }
        live[t] = true;
        for u in plan.steps[t].used_vars() {
            if !live_vars[u.0] {
                live_vars[u.0] = true;
                stack.push(u);
            }
        }
        if let Step::LocalSq { rel, .. } = &plan.steps[t] {
            live_rel[rel.0] = true;
        }
    }
    for (t, s) in plan.steps.iter().enumerate() {
        if let Step::Lq { out, .. } = s {
            live[t] = live_rel[out.0];
        }
    }
    (live, live_vars)
}

/// Computes the certified parallel-stage decomposition of a plan.
///
/// Construction: each step's *level* is one past the deepest level among
/// its data dependencies; levels are emitted in order, and a level whose
/// steps contend for a source is split greedily into sub-stages of
/// source-disjoint steps. The result is then **checked**, not trusted:
///
/// 1. structurally — the stages partition the steps, every dependency
///    sits in a strictly earlier stage, and no two steps of a stage
///    share a source or exchange data;
/// 2. semantically — replaying the steps stage by stage through the BDD
///    analyzer yields a result predicate *identical* to listing-order
///    interpretation, for any world.
///
/// # Errors
/// Fails on structurally invalid plans, and on any certificate-check
/// failure (which would indicate a bug in this module, never silently).
pub fn stage_decomposition(plan: &Plan) -> Result<StageDecomposition> {
    plan.validate()?;
    let (_, deps) = dependencies(plan);
    let mut level = vec![0usize; plan.steps.len()];
    let mut n_levels = 0usize;
    for t in 0..plan.steps.len() {
        let l = deps[t].iter().map(|&d| level[d] + 1).max().unwrap_or(0);
        level[t] = l;
        n_levels = n_levels.max(l + 1);
    }
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for l in 0..n_levels {
        // Greedy source-disjoint splitting inside the level: each
        // sub-stage tracks the sources it already occupies.
        let mut subs: Vec<(Vec<usize>, Vec<SourceId>)> = Vec::new();
        for t in (0..plan.steps.len()).filter(|&t| level[t] == l) {
            let src = plan.steps[t].source();
            let slot = subs.iter_mut().find(|(_, used)| match src {
                Some(s) => !used.contains(&s),
                None => true,
            });
            match slot {
                Some((steps, used)) => {
                    steps.push(t);
                    if let Some(s) = src {
                        used.push(s);
                    }
                }
                None => {
                    subs.push((vec![t], src.into_iter().collect()));
                }
            }
        }
        stages.extend(subs.into_iter().map(|(steps, _)| steps));
    }
    let mut stage_of = vec![0usize; plan.steps.len()];
    for (s, steps) in stages.iter().enumerate() {
        for &t in steps {
            stage_of[t] = s;
        }
    }
    let decomposition = StageDecomposition { stages, stage_of };
    verify_stages(plan, &deps, &decomposition)?;
    Ok(decomposition)
}

/// The certificate checker behind [`stage_decomposition`]; also run by
/// consumers that receive a decomposition from elsewhere.
fn verify_stages(plan: &Plan, deps: &[Vec<usize>], d: &StageDecomposition) -> Result<()> {
    let fail = |msg: String| {
        Err(FusionError::invalid_plan(format!(
            "stage certificate: {msg}"
        )))
    };
    // Partition check.
    let mut seen = vec![false; plan.steps.len()];
    for steps in &d.stages {
        for &t in steps {
            if t >= plan.steps.len() || seen[t] {
                return fail(format!("step {t} missing, duplicated, or out of range"));
            }
            seen[t] = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return fail("stages do not cover every step".into());
    }
    // Dependency and disjointness checks.
    for (s, steps) in d.stages.iter().enumerate() {
        let mut sources: Vec<SourceId> = Vec::new();
        for &t in steps {
            for &dep in &deps[t] {
                if d.stage_of[dep] >= s {
                    return fail(format!(
                        "step {t} in stage {s} reads step {dep} of stage {}",
                        d.stage_of[dep]
                    ));
                }
            }
            if let Some(src) = plan.steps[t].source() {
                if sources.contains(&src) {
                    return fail(format!("stage {s} queries R{} twice", src.0 + 1));
                }
                sources.push(src);
            }
        }
    }
    // Semantic check: stage-order replay computes the same predicate as
    // listing-order interpretation, in every possible world.
    let mut analysis = analyze_plan(plan)?;
    let order = d.flattened_order();
    if analysis.result_with_step_order(plan, &order) != analysis.result_value() {
        return fail("stage-order replay changes the plan's semantics".into());
    }
    Ok(())
}

/// Runs the full dataflow analysis of `plan` under `model`, seeding the
/// cardinality intervals from `bounds`.
///
/// # Errors
/// Fails on structurally invalid plans, on dimension mismatches between
/// the plan and the seeds, and on stage-certificate failures.
pub fn analyze_dataflow<M: CostModel>(
    plan: &Plan,
    model: &M,
    bounds: &SourceBounds,
) -> Result<Dataflow> {
    plan.validate()?;
    if bounds.sq.len() != plan.n_conditions
        || bounds.sq.iter().any(|row| row.len() != plan.n_sources)
        || bounds.items.len() != plan.n_sources
    {
        return Err(FusionError::invalid_plan(format!(
            "source bounds are {}x{} but the plan needs {}x{}",
            bounds.sq.len(),
            bounds.sq.first().map_or(0, Vec::len),
            plan.n_conditions,
            plan.n_sources
        )));
    }
    let (def_of, deps) = dependencies(plan);
    let (live, live_vars) = liveness(plan, &def_of);
    let stages = stage_decomposition(plan)?;
    let domain = bounds.domain.max(0.0);

    // Cardinality interval propagation.
    let mut var_bounds = vec![Interval::point(0.0); plan.var_names.len()];
    let mut rel_bounds = vec![Interval::point(0.0); plan.rel_names.len()];
    let mut rel_source = vec![None; plan.rel_names.len()];
    let mut var_support: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); plan.var_names.len()];
    let mut step_bounds = Vec::with_capacity(plan.steps.len());
    let mut step_costs = Vec::with_capacity(plan.steps.len());
    let support_mass =
        |s: &std::collections::BTreeSet<usize>| s.iter().map(|&j| bounds.items[j].hi).sum::<f64>();
    for step in &plan.steps {
        // Source support: which sources can contribute items to the
        // step's output (the union key-constraint bound's input).
        let support: std::collections::BTreeSet<usize> = match step {
            Step::Sq { source, .. }
            | Step::Sjq { source, .. }
            | Step::SjqBloom { source, .. }
            | Step::Lq { source, .. } => [source.0].into_iter().collect(),
            Step::LocalSq { rel, .. } => rel_source[rel.0]
                .map(|s: SourceId| s.0)
                .into_iter()
                .collect(),
            Step::Union { inputs, .. } => inputs
                .iter()
                .flat_map(|v| var_support[v.0].iter().copied())
                .collect(),
            Step::Intersect { inputs, .. } => inputs
                .iter()
                .map(|v| &var_support[v.0])
                .min_by(|a, b| {
                    support_mass(a)
                        .partial_cmp(&support_mass(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .cloned()
                .unwrap_or_default(),
            Step::Diff { left, .. } => var_support[left.0].clone(),
        };
        let (out_bound, cost) = match step {
            Step::Sq { cond, source, .. } => (
                bounds.sq[cond.0][source.0],
                CostInterval {
                    lo: model.sq_cost(*cond, *source),
                    hi: model.sq_cost(*cond, *source),
                },
            ),
            Step::Sjq {
                cond,
                source,
                input,
                ..
            } => {
                let y = var_bounds[input.0];
                let cell = bounds.sq[cond.0][source.0];
                let b = Interval::new((y.lo + cell.lo - domain).max(0.0), y.hi.min(cell.hi));
                // The executor skips provably empty shipments outright,
                // so the guaranteed cost of an empty-input semijoin is
                // zero; otherwise monotonicity brackets the charge.
                let lo = if y.lo <= 0.0 {
                    Cost::ZERO
                } else {
                    model.sjq_cost(*cond, *source, y.lo)
                };
                (
                    b,
                    CostInterval {
                        lo,
                        hi: model.sjq_cost(*cond, *source, y.hi),
                    },
                )
            }
            Step::SjqBloom {
                cond,
                source,
                input,
                bits,
                ..
            } => {
                let y = var_bounds[input.0];
                let cell = bounds.sq[cond.0][source.0];
                // The raw Bloom result is a superset of the exact
                // semijoin but still a subset of the full selection.
                let b = Interval::new((y.lo + cell.lo - domain).max(0.0), cell.hi);
                (
                    b,
                    CostInterval {
                        lo: model.sjq_bloom_cost(*cond, *source, y.lo, *bits),
                        hi: model.sjq_bloom_cost(*cond, *source, y.hi, *bits),
                    },
                )
            }
            Step::Lq { out, source } => {
                rel_bounds[out.0] = bounds.items[source.0];
                rel_source[out.0] = Some(*source);
                (
                    bounds.items[source.0],
                    CostInterval {
                        lo: model.lq_cost(*source),
                        hi: model.lq_cost(*source),
                    },
                )
            }
            Step::LocalSq { cond, rel, .. } => {
                let j = rel_source[rel.0].expect("validated: loaded before use");
                (bounds.sq[cond.0][j.0], CostInterval::ZERO)
            }
            Step::Union { inputs, .. } => {
                let lo = inputs
                    .iter()
                    .map(|v| var_bounds[v.0].lo)
                    .fold(0.0, f64::max);
                // Key constraint: every item of the union lives at one
                // of the supporting sources, so their distinct-item
                // masses cap the result alongside Σ hi and the domain.
                let hi = inputs
                    .iter()
                    .map(|v| var_bounds[v.0].hi)
                    .sum::<f64>()
                    .min(support_mass(&support))
                    .min(domain);
                (Interval::new(lo, hi.max(lo)), CostInterval::ZERO)
            }
            Step::Intersect { inputs, .. } => {
                let k = inputs.len() as f64;
                let lo =
                    inputs.iter().map(|v| var_bounds[v.0].lo).sum::<f64>() - (k - 1.0) * domain;
                let hi = inputs
                    .iter()
                    .map(|v| var_bounds[v.0].hi)
                    .fold(f64::INFINITY, f64::min);
                (Interval::new(lo.max(0.0), hi), CostInterval::ZERO)
            }
            Step::Diff { left, right, .. } => {
                let l = var_bounds[left.0];
                let r = var_bounds[right.0];
                (
                    Interval::new((l.lo - r.hi).max(0.0), l.hi),
                    CostInterval::ZERO,
                )
            }
        };
        if let Some(out) = step.defined_var() {
            var_bounds[out.0] = out_bound;
            var_support[out.0] = support;
        }
        step_bounds.push(out_bound);
        step_costs.push(cost);
    }
    let total_cost = CostInterval {
        lo: step_costs.iter().map(|c| c.lo).sum(),
        hi: step_costs.iter().map(|c| c.hi).sum(),
    };
    let response_lb = response_lower_bound(plan, &def_of, &deps, &step_costs);
    let footprints = plan_footprints(plan);
    Ok(Dataflow {
        def_of,
        deps,
        live,
        live_vars,
        stages,
        var_bounds,
        step_bounds,
        step_costs,
        total_cost,
        response_lb,
        footprints,
    })
}

/// Critical-path response-time lower bound: the result cannot appear
/// before (a) the longest dependency chain into its defining step at
/// guaranteed step costs, nor (b) any single source has served all of
/// the result's ancestors it is responsible for (sources are serial).
fn response_lower_bound(
    plan: &Plan,
    def_of: &[Option<usize>],
    deps: &[Vec<usize>],
    step_costs: &[CostInterval],
) -> f64 {
    let Some(result_step) = def_of.get(plan.result.0).copied().flatten() else {
        return 0.0;
    };
    // Longest lo-cost path ending at each step.
    let mut cp = vec![0.0f64; plan.steps.len()];
    for t in 0..plan.steps.len() {
        let into = deps[t].iter().map(|&d| cp[d]).fold(0.0, f64::max);
        cp[t] = into + step_costs[t].lo.value();
    }
    // Ancestors of the result step (inclusive).
    let mut anc = vec![false; plan.steps.len()];
    let mut stack = vec![result_step];
    while let Some(t) = stack.pop() {
        if anc[t] {
            continue;
        }
        anc[t] = true;
        stack.extend(deps[t].iter().copied());
    }
    let mut per_source = vec![0.0f64; plan.n_sources];
    for (t, step) in plan.steps.iter().enumerate() {
        if anc[t] {
            if let Some(src) = step.source() {
                per_source[src.0] += step_costs[t].lo.value();
            }
        }
    }
    per_source.into_iter().fold(cp[result_step], f64::max)
}

/// Admissible lower bound on the cost of completing a partial SJ/SJA
/// ordering: with `used` marking already-placed conditions and `placing`
/// the one being placed, every remaining condition must still pay, per
/// source, at least the cheaper of its selection cost and its semijoin
/// cost at `x_min` — the running-set size after *every* other remaining
/// condition has already shrunk it. By the §2.4 monotonicity axiom on
/// `sjq_cost` this never overestimates, so branch-and-bound pruning on
/// it preserves exactness ([`sja_branch_and_bound`]).
///
/// [`sja_branch_and_bound`]: crate::optimizer::sja_branch_and_bound
pub fn remaining_cost_lower_bound<M: CostModel>(
    model: &M,
    used: &[bool],
    placing: usize,
    x_after: f64,
) -> Cost {
    let n = model.n_sources();
    let remaining: Vec<usize> = (0..used.len())
        .filter(|&i| !used[i] && i != placing)
        .collect();
    if remaining.is_empty() {
        return Cost::ZERO;
    }
    let mut x_min = x_after;
    for &u in &remaining {
        x_min *= model.gsel(fusion_types::CondId(u));
    }
    let mut lb = Cost::ZERO;
    for &u in &remaining {
        let cond = fusion_types::CondId(u);
        for j in 0..n {
            let sq = model.sq_cost(cond, SourceId(j));
            let sjq = model.sjq_cost(cond, SourceId(j), x_min);
            lb += sq.min(sjq);
        }
    }
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::evaluate::evaluate_plan_vars;
    use crate::optimizer::{filter_plan, sja_optimal};
    use crate::plan::{SimplePlanSpec, SourceChoice, VarId};
    use crate::postopt::build_with_difference;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, CondId, Value};

    fn model() -> TableCostModel {
        TableCostModel::uniform(3, 2, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0)
    }

    fn sja_spec(m: usize, n: usize) -> SimplePlanSpec {
        SimplePlanSpec {
            order: (0..m).map(CondId).collect(),
            choices: (0..m)
                .map(|r| {
                    (0..n)
                        .map(|j| {
                            if r > 0 && (r + j) % 2 == 0 {
                                SourceChoice::Semijoin
                            } else {
                                SourceChoice::Selection
                            }
                        })
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn interval_arithmetic_clamps() {
        let i = Interval::new(5.0, 3.0);
        assert_eq!(i.lo, 3.0);
        assert!(Interval::new(-2.0, 4.0).lo == 0.0);
        assert!(Interval::point(7.0).contains(7.0));
        assert!(!Interval::point(7.0).contains(8.0));
        assert_eq!(Interval::new(1.0, 9.0).to_string(), "[1, 9]");
    }

    #[test]
    fn stage_decomposition_certifies_optimizer_plans() {
        let m = model();
        for opt in [filter_plan(&m), sja_optimal(&m)] {
            let d = stage_decomposition(&opt.plan).unwrap();
            // Every step appears exactly once.
            let mut all: Vec<usize> = d.flattened_order();
            all.sort_unstable();
            assert_eq!(all, (0..opt.plan.steps.len()).collect::<Vec<_>>());
            // A filter plan's remote steps split into per-source stages;
            // with 2 sources and free locals there must be >= 2 stages.
            assert!(d.stages.len() >= 2);
        }
    }

    #[test]
    fn filter_plan_first_wave_is_fully_parallel() {
        // m=2, n=3: the 6 selections have no dependencies; the first
        // level splits into exactly 2 source-disjoint waves of 3.
        let m = TableCostModel::uniform(2, 3, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0);
        let plan = filter_plan(&m).plan;
        let d = stage_decomposition(&plan).unwrap();
        let remote_stages: Vec<&Vec<usize>> = d
            .stages
            .iter()
            .filter(|s| s.iter().any(|&t| plan.steps[t].is_remote()))
            .collect();
        assert_eq!(remote_stages.len(), 2);
        for s in remote_stages {
            let mut sources: Vec<_> = s.iter().filter_map(|&t| plan.steps[t].source()).collect();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), s.len(), "sources not disjoint: {s:?}");
        }
    }

    #[test]
    fn stage_verification_rejects_bad_decompositions() {
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let (_, deps) = dependencies(&plan);
        let good = stage_decomposition(&plan).unwrap();
        // Merge everything into one stage: source conflicts + same-stage
        // reads must be caught.
        let bad = StageDecomposition {
            stages: vec![(0..plan.steps.len()).collect()],
            stage_of: vec![0; plan.steps.len()],
        };
        assert!(verify_stages(&plan, &deps, &bad).is_err());
        // Dropping a step breaks the partition.
        let mut partial = good.clone();
        partial.stages[0].clear();
        assert!(verify_stages(&plan, &deps, &partial).is_err());
        assert!(verify_stages(&plan, &deps, &good).is_ok());
    }

    #[test]
    fn exact_bounds_make_point_intervals_on_filter_plans() {
        let s = dmv_schema();
        let relations = vec![
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["J55", "dui", 1993i64],
                    tuple!["T21", "sp", 1994i64],
                    tuple!["T80", "dui", 1993i64],
                ],
            ),
            Relation::from_rows(
                s.clone(),
                vec![tuple!["T21", "dui", 1996i64], tuple!["J55", "sp", 1996i64]],
            ),
        ];
        let conditions: Vec<Condition> = vec![
            fusion_types::Predicate::eq("V", "dui").into(),
            fusion_types::Predicate::eq("V", "sp").into(),
        ];
        let bounds = SourceBounds::exact_from_relations(&conditions, &relations).unwrap();
        let m = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 100.0, 5.0, bounds.domain);
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let df = analyze_dataflow(&plan, &m, &bounds).unwrap();
        let vars = evaluate_plan_vars(&plan, &conditions, &relations).unwrap();
        for (v, b) in df.var_bounds.iter().enumerate() {
            if let Some(set) = &vars[v] {
                assert!(
                    b.contains(set.len() as f64),
                    "var {v}: |{}| = {} outside {b}",
                    plan.var_name(VarId(v)),
                    set.len()
                );
            }
        }
    }

    #[test]
    fn intervals_stay_sound_through_difference_and_semijoins() {
        let s = dmv_schema();
        let relations = vec![
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["A1", "dui", 1990i64],
                    tuple!["A2", "dui", 1991i64],
                    tuple!["A3", "sp", 1992i64],
                ],
            ),
            Relation::from_rows(
                s.clone(),
                vec![tuple!["A1", "sp", 1993i64], tuple!["A4", "sp", 1994i64]],
            ),
        ];
        let conditions: Vec<Condition> = vec![
            fusion_types::Predicate::eq("V", "dui").into(),
            fusion_types::Predicate::eq("V", "sp").into(),
        ];
        let bounds = SourceBounds::exact_from_relations(&conditions, &relations).unwrap();
        let plan = build_with_difference(&sja_spec(2, 2), 2);
        let m = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 100.0, 5.0, bounds.domain);
        let df = analyze_dataflow(&plan, &m, &bounds).unwrap();
        let vars = evaluate_plan_vars(&plan, &conditions, &relations).unwrap();
        for (v, b) in df.var_bounds.iter().enumerate() {
            if let Some(set) = &vars[v] {
                assert!(b.contains(set.len() as f64), "var {v} outside {b}");
            }
        }
    }

    #[test]
    fn cost_interval_brackets_the_estimate() {
        let m = model();
        let opt = sja_optimal(&m);
        let bounds = SourceBounds::from_model(&m);
        let df = analyze_dataflow(&opt.plan, &m, &bounds).unwrap();
        let est = crate::estimate::estimate_plan_cost(&opt.plan, &m);
        assert!(
            df.total_cost.contains(est.cost),
            "estimate {} outside {}",
            est.cost,
            df.total_cost
        );
        assert!(df.total_cost.lo <= df.total_cost.hi);
        // The response lower bound never exceeds guaranteed total work.
        assert!(df.response_lb <= df.total_cost.lo.value() + 1e-9);
    }

    #[test]
    fn liveness_flags_dead_steps_and_variables() {
        let mut plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let dead = plan.fresh_var("DEAD");
        plan.steps.push(Step::Sq {
            out: dead,
            cond: CondId(0),
            source: SourceId(0),
        });
        let m = TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0);
        let df = analyze_dataflow(&plan, &m, &SourceBounds::from_model(&m)).unwrap();
        assert!(!df.live[plan.steps.len() - 1]);
        assert!(!df.live_vars[dead.0]);
        assert!(df.live_vars[plan.result.0]);
        assert!(df.live[..plan.steps.len() - 1].iter().all(|&l| l));
    }

    #[test]
    fn stats_seeds_are_sound_and_tighter_than_model_seeds() {
        let s = dmv_schema();
        let rel = Relation::from_rows(
            s.clone(),
            (0..100)
                .map(|i| {
                    tuple![
                        format!("L{i}"),
                        if i % 4 == 0 { "dui" } else { "sp" },
                        1990 + (i % 10)
                    ]
                })
                .collect(),
        );
        let stats = vec![TableStats::build(&rel, 7)];
        let conditions: Vec<Condition> = vec![
            fusion_types::Predicate::eq("V", "dui").into(),
            fusion_types::Predicate::cmp("D", CmpOp::Gt, 2050i64).into(),
            fusion_types::Predicate::Const(true).into(),
            fusion_types::Predicate::Between {
                attr: "D".into(),
                lo: Value::Int(0),
                hi: Value::Int(3000),
            }
            .into(),
        ];
        let b = SourceBounds::from_stats(&conditions, &stats);
        // Exact truths per condition.
        let truths: Vec<usize> = conditions
            .iter()
            .map(|c| rel.select_items(c).unwrap().items.len())
            .collect();
        for (i, t) in truths.iter().enumerate() {
            assert!(
                b.sq[i][0].contains(*t as f64),
                "c{i}: truth {t} outside {}",
                b.sq[i][0]
            );
        }
        // The disjoint range is proved empty; the covering range and the
        // trivially-true condition are proved full.
        assert_eq!(b.sq[1][0], Interval::point(0.0));
        assert_eq!(b.sq[2][0], Interval::point(100.0));
        assert_eq!(b.sq[3][0], Interval::point(100.0));
        // The MCV bound caps the equality tighter than the domain.
        assert!(b.sq[0][0].hi <= 25.0 + 1e-9);
    }

    #[test]
    fn mismatched_bounds_are_rejected() {
        let m = model();
        let plan = filter_plan(&m).plan;
        let mut b = SourceBounds::from_model(&m);
        b.sq.pop();
        assert!(analyze_dataflow(&plan, &m, &b).is_err());
    }

    #[test]
    fn remaining_bound_matches_inline_pricing() {
        // The admissible bound must never exceed the true remaining cost
        // of the optimal completion (checked indirectly: bnb equals the
        // exhaustive optimum — see optimizer::bnb tests); here, sanity:
        // with nothing remaining it is zero.
        let m = model();
        let used = vec![true, true, false];
        assert_eq!(remaining_cost_lower_bound(&m, &used, 2, 10.0), Cost::ZERO);
        let none_used = vec![false, false, false];
        assert!(remaining_cost_lower_bound(&m, &none_used, 0, 10.0) > Cost::ZERO);
    }
}
