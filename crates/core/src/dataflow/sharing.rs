//! Cross-query sharing analysis: proved multi-query step merging.
//!
//! The mediator server admits many fusion queries concurrently, and
//! under skewed multi-tenant traffic co-running queries repeatedly fire
//! identical or subsumed `sq(c, R)` steps before the first harvest
//! commits. This module is the static side of merging that work: given
//! the **in-flight plans** visible inside the server's admission
//! critical section, it computes
//!
//! * a **sharing graph** over their remote steps — equivalence and
//!   containment edges between selection steps, proved by a
//!   caller-supplied containment prover (the BDD `subsumes` decision
//!   procedure in production, a hand prover in unit tests), plus groups
//!   of **batchable semijoin probes**: probe steps against the same
//!   source whose canonical step signatures are byte-equal, so a single
//!   shipped binding set would serve all of them;
//! * a **merged schedule**: one exchange per select equivalence class
//!   with fan-out to every waiting query, and redirects for *proper*
//!   containment — a narrower class serves from a broader class's
//!   harvest through a residual filter. Because the prover is sound but
//!   incomplete, a redirect requires a **direct** proof against the
//!   fetching class; chains are never assumed transitively;
//! * a **merge certificate** ([`verify_merged_schedule`]): the schedule
//!   is re-checked, never trusted — every fan-out edge's containment is
//!   re-proved, and the schedule's events are assigned read/write
//!   footprints over [`Resource::SharedFetch`] slots so that any two
//!   conflicting events are ordered by the fan-out discipline (the
//!   leader's publish happens before every follower's read, and no two
//!   leaders write one slot).
//!
//! The lints at the bottom package the three sharing defects the server
//! must stay free of: duplicate in-flight exchanges, unshared subsumed
//! steps, and unsound merge residuals. Like the interference lints they
//! are driven from explicit (possibly mutant) schedules, so the golden
//! corpus can exhibit each defect with a concrete witness schedule.
//!
//! [`verify_share_windows`] is the dynamic half's always-on guard: a
//! follower may only have attached to a leader that was admitted before
//! it and still uncommitted at its admission.

use super::interference::{Footprint, Resource};
use crate::analyze::{Analysis, Diagnostic, Lint, Severity};
use crate::plan::{Plan, Step};
use fusion_types::error::{FusionError, Result};
use fusion_types::{CondId, Condition, Predicate, SourceId};

/// A containment prover: `prove(broad, narrow)` must return `true` only
/// when every tuple satisfying `narrow` provably satisfies `broad`.
/// Sound-but-incomplete provers are expected; the analysis never chains
/// unproved implications.
pub type Prover<'p> = &'p dyn Fn(&Predicate, &Predicate) -> bool;

/// One query in flight inside the admission critical section.
#[derive(Debug, Clone, Copy)]
pub struct InFlightPlan<'a> {
    /// The query's admission ticket (stable, globally ordered id).
    pub qid: u64,
    /// Its optimized plan.
    pub plan: &'a Plan,
    /// The query's conditions, indexed by the plan's `CondId`s.
    pub conditions: &'a [Condition],
}

impl InFlightPlan<'_> {
    fn pred(&self, cond: CondId) -> &Predicate {
        &self.conditions[cond.0].pred
    }
}

/// One remote step of one in-flight plan — a node of the sharing graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepNode {
    /// Index of the owning query in the analyzed slice.
    pub query: usize,
    /// The owning query's admission ticket.
    pub qid: u64,
    /// 0-based step index inside the owning plan.
    pub step: usize,
    /// The contacted source.
    pub source: SourceId,
    /// The step's condition.
    pub cond: CondId,
    /// The condition's predicate-equivalence class.
    pub pred_class: usize,
    /// Fetch class for select (`sq`) nodes; `None` for probe nodes.
    pub class: Option<usize>,
    /// True for semijoin probes (`sjq`/Bloom), false for selections.
    pub probe: bool,
}

impl StepNode {
    /// Display label `q{qid}#{step}` (1-based step, matching listings).
    pub fn label(&self) -> String {
        format!("q{}#{}", self.qid, self.step + 1)
    }
}

/// The kind of a sharing edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Both steps provably return the same set (containment both ways
    /// for selections, byte-equal canonical signatures for probes).
    Equivalent,
    /// The `from` step's result provably contains the `to` step's.
    Contains,
}

/// A proved relation between two remote steps of *different* queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingEdge {
    /// Node index of the broader (or equal) side.
    pub from: usize,
    /// Node index of the narrower (or equal) side.
    pub to: usize,
    /// What was proved.
    pub kind: EdgeKind,
}

/// The sharing graph over a set of in-flight plans.
#[derive(Debug, Clone)]
pub struct SharingGraph {
    /// Remote-step nodes, ascending by `(query, step)`.
    pub nodes: Vec<StepNode>,
    /// Proved cross-query edges.
    pub edges: Vec<SharingEdge>,
    /// Number of predicate-equivalence classes.
    pub n_pred_classes: usize,
    /// Select-node indices per fetch class (a fetch class is one
    /// `(source, predicate class)` pair); ascending inside each class.
    pub class_members: Vec<Vec<usize>>,
    /// Source of each fetch class.
    pub class_source: Vec<SourceId>,
    /// Predicate class of each fetch class.
    pub class_pred: Vec<usize>,
    /// `class_contains[a][b]`: fetch class `a`'s predicate provably
    /// *properly* contains `b`'s, same source, `a != b`.
    pub class_contains: Vec<Vec<bool>>,
    /// Batchable probe groups: probe-node indices whose canonical step
    /// signatures are byte-equal, spanning at least two queries.
    pub probe_batches: Vec<Vec<usize>>,
}

impl SharingGraph {
    /// Builds the sharing graph over `plans` using `prove` for every
    /// containment question.
    ///
    /// # Errors
    /// Fails on structurally invalid plans and on plans whose condition
    /// slice does not cover their `CondId`s.
    pub fn build(plans: &[InFlightPlan<'_>], prove: Prover<'_>) -> Result<SharingGraph> {
        for p in plans {
            p.plan.validate()?;
            if p.conditions.len() < p.plan.n_conditions {
                return Err(FusionError::invalid_plan(format!(
                    "q{}: {} conditions given but the plan names {}",
                    p.qid,
                    p.conditions.len(),
                    p.plan.n_conditions
                )));
            }
        }
        // Distinct predicates across every plan, and each condition's
        // index into them — the prover is only ever asked about a pair
        // of distinct predicates once.
        let mut preds: Vec<&Predicate> = Vec::new();
        let mut pred_ix: Vec<Vec<usize>> = Vec::with_capacity(plans.len());
        for p in plans {
            let row = p
                .conditions
                .iter()
                .map(|c| match preds.iter().position(|&q| q == &c.pred) {
                    Some(i) => i,
                    None => {
                        preds.push(&c.pred);
                        preds.len() - 1
                    }
                })
                .collect();
            pred_ix.push(row);
        }
        let np = preds.len();
        let mut contains = vec![vec![false; np]; np];
        for (i, row) in contains.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = i == j || prove(preds[i], preds[j]);
            }
        }
        // Predicate-equivalence classes: mutual proved containment.
        let mut pred_class = vec![usize::MAX; np];
        let mut n_pred_classes = 0;
        for i in 0..np {
            pred_class[i] = (0..i)
                .find(|&j| contains[i][j] && contains[j][i])
                .map_or_else(
                    || {
                        n_pred_classes += 1;
                        n_pred_classes - 1
                    },
                    |j| pred_class[j],
                );
        }
        // Class-level containment: any representative pair proves.
        let mut pc_contains = vec![vec![false; n_pred_classes]; n_pred_classes];
        for (i, row) in contains.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c {
                    pc_contains[pred_class[i]][pred_class[j]] = true;
                }
            }
        }
        // Nodes, fetch classes, probe signatures.
        let mut nodes: Vec<StepNode> = Vec::new();
        let mut class_members: Vec<Vec<usize>> = Vec::new();
        let mut class_source: Vec<SourceId> = Vec::new();
        let mut class_pred: Vec<usize> = Vec::new();
        let mut class_of_key: Vec<((usize, usize), usize)> = Vec::new();
        let mut probe_sigs: Vec<(String, usize)> = Vec::new();
        for (q, p) in plans.iter().enumerate() {
            let sigs = plan_signatures(p.plan, &pred_ix[q], &pred_class);
            for (t, s) in p.plan.steps.iter().enumerate() {
                let (source, cond, probe) = match s {
                    Step::Sq { cond, source, .. } => (*source, *cond, false),
                    Step::Sjq { cond, source, .. } | Step::SjqBloom { cond, source, .. } => {
                        (*source, *cond, true)
                    }
                    _ => continue,
                };
                let pc = pred_class[pred_ix[q][cond.0]];
                let idx = nodes.len();
                let class = if probe {
                    probe_sigs.push((sigs[t].clone(), idx));
                    None
                } else {
                    let key = (source.0, pc);
                    let c = match class_of_key.iter().find(|(k, _)| *k == key) {
                        Some(&(_, c)) => c,
                        None => {
                            class_members.push(Vec::new());
                            class_source.push(source);
                            class_pred.push(pc);
                            class_of_key.push((key, class_members.len() - 1));
                            class_members.len() - 1
                        }
                    };
                    class_members[c].push(idx);
                    Some(c)
                };
                nodes.push(StepNode {
                    query: q,
                    qid: p.qid,
                    step: t,
                    source,
                    cond,
                    pred_class: pc,
                    class,
                    probe,
                });
            }
        }
        let nc = class_members.len();
        let mut class_contains = vec![vec![false; nc]; nc];
        for (a, row) in class_contains.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                *cell = a != b
                    && class_source[a] == class_source[b]
                    && class_pred[a] != class_pred[b]
                    && pc_contains[class_pred[a]][class_pred[b]];
            }
        }
        // Batchable probes: byte-equal signatures spanning >= 2 queries
        // (intra-query duplicates are `duplicate-query`'s finding).
        let mut probe_batches: Vec<Vec<usize>> = Vec::new();
        let mut grouped: Vec<bool> = vec![false; probe_sigs.len()];
        for i in 0..probe_sigs.len() {
            if grouped[i] {
                continue;
            }
            let mut batch = vec![probe_sigs[i].1];
            for j in i + 1..probe_sigs.len() {
                if !grouped[j] && probe_sigs[j].0 == probe_sigs[i].0 {
                    grouped[j] = true;
                    batch.push(probe_sigs[j].1);
                }
            }
            let queries: Vec<usize> = batch.iter().map(|&n| nodes[n].query).collect();
            if batch.len() >= 2 && queries.iter().any(|&q| q != queries[0]) {
                probe_batches.push(batch);
            }
        }
        // Edges: cross-query select pairs on one source, plus probe
        // batch members (pairwise equivalent by signature).
        let mut edges: Vec<SharingEdge> = Vec::new();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                let (a, b) = (&nodes[i], &nodes[j]);
                if a.query == b.query || a.probe || b.probe || a.source != b.source {
                    continue;
                }
                let (ca, cb) = (
                    a.class.expect("select nodes carry a class"),
                    b.class.expect("select nodes carry a class"),
                );
                if ca == cb {
                    edges.push(SharingEdge {
                        from: i,
                        to: j,
                        kind: EdgeKind::Equivalent,
                    });
                } else {
                    if class_contains[ca][cb] {
                        edges.push(SharingEdge {
                            from: i,
                            to: j,
                            kind: EdgeKind::Contains,
                        });
                    }
                    if class_contains[cb][ca] {
                        edges.push(SharingEdge {
                            from: j,
                            to: i,
                            kind: EdgeKind::Contains,
                        });
                    }
                }
            }
        }
        for batch in &probe_batches {
            for (bi, &i) in batch.iter().enumerate() {
                for &j in &batch[bi + 1..] {
                    if nodes[i].query != nodes[j].query {
                        edges.push(SharingEdge {
                            from: i.min(j),
                            to: i.max(j),
                            kind: EdgeKind::Equivalent,
                        });
                    }
                }
            }
        }
        Ok(SharingGraph {
            nodes,
            edges,
            n_pred_classes,
            class_members,
            class_source,
            class_pred,
            class_contains,
            probe_batches,
        })
    }
}

/// Canonical step signatures of one plan: two steps (of any plans over
/// the same predicate-class numbering) with equal signatures provably
/// perform byte-equal exchanges. Union/intersect children are sorted
/// (commutative), difference children are ordered (antitone in the
/// right operand — `A − B` and `B − A` must never unify).
fn plan_signatures(plan: &Plan, pred_ix: &[usize], pred_class: &[usize]) -> Vec<String> {
    let pc = |c: CondId| pred_class[pred_ix[c.0]];
    let mut var_sig: Vec<Option<String>> = vec![None; plan.var_names.len()];
    let mut rel_sig: Vec<Option<String>> = vec![None; plan.rel_names.len()];
    let mut sigs = Vec::with_capacity(plan.steps.len());
    for s in &plan.steps {
        let vs = |v: &crate::plan::VarId, var_sig: &[Option<String>]| {
            var_sig[v.0].clone().unwrap_or_else(|| format!("v?{}", v.0))
        };
        let sig = match s {
            Step::Sq { cond, source, .. } => format!("sq(R{},p{})", source.0, pc(*cond)),
            Step::Sjq {
                cond,
                source,
                input,
                ..
            } => format!("sjq(R{},p{},{})", source.0, pc(*cond), vs(input, &var_sig)),
            Step::SjqBloom {
                cond,
                source,
                input,
                bits,
                ..
            } => format!(
                "sjqb{}(R{},p{},{})",
                bits,
                source.0,
                pc(*cond),
                vs(input, &var_sig)
            ),
            Step::Lq { source, .. } => format!("lq(R{})", source.0),
            Step::LocalSq { cond, rel, .. } => {
                let rs = rel_sig[rel.0]
                    .clone()
                    .unwrap_or_else(|| format!("t?{}", rel.0));
                format!("lsq(p{},{rs})", pc(*cond))
            }
            Step::Union { inputs, .. } => {
                let mut kids: Vec<String> = inputs.iter().map(|v| vs(v, &var_sig)).collect();
                kids.sort_unstable();
                format!("u({})", kids.join(","))
            }
            Step::Intersect { inputs, .. } => {
                let mut kids: Vec<String> = inputs.iter().map(|v| vs(v, &var_sig)).collect();
                kids.sort_unstable();
                format!("i({})", kids.join(","))
            }
            Step::Diff { left, right, .. } => {
                format!("d({},{})", vs(left, &var_sig), vs(right, &var_sig))
            }
        };
        if let Some(out) = s.defined_var() {
            var_sig[out.0] = Some(sig.clone());
        }
        if let Step::Lq { out, .. } = s {
            rel_sig[out.0] = Some(sig.clone());
        }
        sigs.push(sig);
    }
    sigs
}

/// One fan-out target of a merged fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanOut {
    /// The served select node.
    pub node: usize,
    /// True when the follower's condition is *properly* contained in
    /// the leader's: the harvest must pass through a residual filter.
    pub residual: bool,
}

/// One merged exchange: a leader performs the fetch, every follower is
/// served from its harvest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedFetch {
    /// The fetch class whose predicate is shipped.
    pub class: usize,
    /// The contacted source.
    pub source: SourceId,
    /// The select node performing the one exchange (smallest
    /// `(query, step)` of the class).
    pub leader: usize,
    /// Served nodes, ascending by node index.
    pub followers: Vec<FanOut>,
}

/// The merged schedule over a sharing graph: one exchange per fetching
/// class, fan-out to every waiting query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergedSchedule {
    /// The merged exchanges, ascending by class.
    pub fetches: Vec<MergedFetch>,
}

/// Derives the merged schedule from a sharing graph.
///
/// Every fetch class either *fetches* (performs its own exchange) or
/// *redirects* to a fetching class that provably properly contains it.
/// Because the prover is incomplete, a redirect needs a **direct**
/// proof against the class that actually fetches — a class whose only
/// proved containers themselves redirect fetches on its own, rather
/// than assuming a transitive chain of proofs.
pub fn merged_schedule(graph: &SharingGraph) -> MergedSchedule {
    let nc = graph.class_members.len();
    // Root classes: no proved container at all.
    let is_root: Vec<bool> = (0..nc)
        .map(|b| (0..nc).all(|a| !graph.class_contains[a][b]))
        .collect();
    // A non-root redirects to its smallest *root* container (direct
    // proof by construction of `class_contains`); if every container is
    // itself contained, the class fetches for itself.
    let redirect: Vec<Option<usize>> = (0..nc)
        .map(|b| {
            if is_root[b] {
                None
            } else {
                (0..nc).find(|&a| is_root[a] && graph.class_contains[a][b])
            }
        })
        .collect();
    let mut fetches = Vec::new();
    for c in 0..nc {
        if redirect[c].is_some() {
            continue;
        }
        let leader = graph.class_members[c][0];
        let mut followers: Vec<FanOut> = graph.class_members[c][1..]
            .iter()
            .map(|&n| FanOut {
                node: n,
                residual: false,
            })
            .collect();
        for (b, r) in redirect.iter().enumerate() {
            if *r == Some(c) {
                followers.extend(graph.class_members[b].iter().map(|&n| FanOut {
                    node: n,
                    residual: true,
                }));
            }
        }
        followers.sort_unstable_by_key(|f| f.node);
        fetches.push(MergedFetch {
            class: c,
            source: graph.class_source[c],
            leader,
            followers,
        });
    }
    MergedSchedule { fetches }
}

/// The checked certificate of a merged schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeCertificate {
    /// Merged exchanges performed.
    pub exchanges: usize,
    /// Select nodes served from another query's harvest.
    pub served: usize,
    /// Served nodes that pass through a residual filter.
    pub residuals: usize,
    /// Containment obligations discharged by the prover.
    pub containments_proved: usize,
    /// Conflicting event pairs ordered by the fan-out discipline.
    pub ordered_pairs: usize,
}

/// Verifies a merged schedule against the plans it claims to serve,
/// re-proving every fan-out edge and checking the schedule's
/// [`Resource::SharedFetch`] footprints. Accepts exactly the schedules
/// whose merged execution is byte-equivalent to isolated execution:
///
/// * every select node plays exactly one role (leader or follower);
/// * a fetch's leader and followers contact one source;
/// * an exact (non-residual) serve is proved equivalent *both ways*; a
///   residual serve is proved contained in the leader's condition;
/// * assigning each fetch one `SharedFetch(source, class)` slot — the
///   leader writes it, followers read it — every conflicting event
///   pair is ordered by the leader-publishes-first fan-out discipline.
///   Two fetches of one class are a write–write conflict no discipline
///   orders, so duplicated exchanges are rejected here.
///
/// # Errors
/// Fails with the first violated obligation.
pub fn verify_merged_schedule(
    plans: &[InFlightPlan<'_>],
    graph: &SharingGraph,
    schedule: &MergedSchedule,
    prove: Prover<'_>,
) -> Result<MergeCertificate> {
    let fail = |msg: String| {
        Err(FusionError::invalid_plan(format!(
            "merge certificate: {msg}"
        )))
    };
    let pred = |n: &StepNode| plans[n.query].pred(n.cond);
    let mut role: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut containments_proved = 0usize;
    let mut served = 0usize;
    let mut residuals = 0usize;
    for (fi, fetch) in schedule.fetches.iter().enumerate() {
        let leader = &graph.nodes[fetch.leader];
        if leader.probe || leader.source != fetch.source {
            return fail(format!(
                "fetch of class {} led by {}, which is not a selection on R{}",
                fetch.class,
                leader.label(),
                fetch.source.0 + 1
            ));
        }
        if role[fetch.leader].replace(fi).is_some() {
            return fail(format!("{} plays two roles", leader.label()));
        }
        for f in &fetch.followers {
            let n = &graph.nodes[f.node];
            if n.probe || n.source != fetch.source {
                return fail(format!(
                    "{} cannot be served from {}'s harvest of R{}",
                    n.label(),
                    leader.label(),
                    fetch.source.0 + 1
                ));
            }
            if role[f.node].replace(fi).is_some() {
                return fail(format!("{} plays two roles", n.label()));
            }
            if !prove(pred(leader), pred(n)) {
                return fail(format!(
                    "serving {} from {}'s harvest has no containment proof",
                    n.label(),
                    leader.label()
                ));
            }
            containments_proved += 1;
            served += 1;
            if f.residual {
                residuals += 1;
            } else if !prove(pred(n), pred(leader)) {
                return fail(format!(
                    "{} is served {}'s harvest without a residual filter, \
                     but only one-way containment is proved",
                    n.label(),
                    leader.label()
                ));
            } else {
                containments_proved += 1;
            }
        }
    }
    for (i, n) in graph.nodes.iter().enumerate() {
        if !n.probe && role[i].is_none() {
            return fail(format!(
                "{} is scheduled neither to fetch nor to serve",
                n.label()
            ));
        }
    }
    // Footprint check over the shared-fetch slots: leader writes, every
    // follower reads; conflicts are legal only when the fan-out
    // discipline orders them (same fetch, exactly one side the leader).
    let mut events: Vec<(usize, bool, Footprint)> = Vec::new();
    for (fi, fetch) in schedule.fetches.iter().enumerate() {
        let slot = Resource::SharedFetch(fetch.source.0, fetch.class);
        events.push((
            fi,
            true,
            Footprint {
                reads: vec![],
                writes: vec![slot],
            },
        ));
        for _ in &fetch.followers {
            events.push((
                fi,
                false,
                Footprint {
                    reads: vec![slot],
                    writes: vec![],
                },
            ));
        }
    }
    let mut ordered_pairs = 0usize;
    for (i, (fa, la, a)) in events.iter().enumerate() {
        for (fb, lb, b) in events.iter().skip(i + 1) {
            let Some(r) = a.conflicts_with(b) else {
                continue;
            };
            if fa == fb && la != lb {
                ordered_pairs += 1;
            } else {
                return fail(format!(
                    "unordered schedule events conflict on {r}: the fan-out \
                     discipline orders only a leader against its own \
                     followers (duplicated exchange for one class?)"
                ));
            }
        }
    }
    Ok(MergeCertificate {
        exchanges: schedule.fetches.len(),
        served,
        residuals,
        containments_proved,
        ordered_pairs,
    })
}

/// A sharing analysis bundle: graph, schedule, and checked certificate.
#[derive(Debug, Clone)]
pub struct SharingReport {
    /// The sharing graph.
    pub graph: SharingGraph,
    /// The derived merged schedule.
    pub schedule: MergedSchedule,
    /// The certificate [`verify_merged_schedule`] issued for it.
    pub certificate: MergeCertificate,
}

/// Builds the sharing graph, derives the merged schedule, and verifies
/// it — the one-call entry point the server and the CLI use.
///
/// # Errors
/// Fails on invalid plans and on any certificate failure (which would
/// indicate a bug in this module, never silently).
pub fn sharing_report(plans: &[InFlightPlan<'_>], prove: Prover<'_>) -> Result<SharingReport> {
    let graph = SharingGraph::build(plans, prove)?;
    let schedule = merged_schedule(&graph);
    let certificate = verify_merged_schedule(plans, &graph, &schedule, prove)?;
    Ok(SharingReport {
        graph,
        schedule,
        certificate,
    })
}

/// Node → `(fetch index, is_leader)` role map under a schedule; nodes
/// absent from the schedule map to `None`.
fn roles(graph: &SharingGraph, schedule: &MergedSchedule) -> Vec<Option<(usize, bool)>> {
    let mut role = vec![None; graph.nodes.len()];
    for (fi, fetch) in schedule.fetches.iter().enumerate() {
        role[fetch.leader] = Some((fi, true));
        for f in &fetch.followers {
            role[f.node] = Some((fi, false));
        }
    }
    role
}

fn sq_word(n: &StepNode) -> String {
    format!("sq(c{}, R{})", n.cond.0 + 1, n.source.0 + 1)
}

/// `duplicate-inflight-step` findings: two in-flight queries both
/// exchange provably equivalent selections although either could serve
/// from the other's harvest.
pub fn duplicate_inflight_findings(
    _plans: &[InFlightPlan<'_>],
    graph: &SharingGraph,
    schedule: &MergedSchedule,
) -> Vec<Diagnostic> {
    let role = roles(graph, schedule);
    let mut out = Vec::new();
    for e in &graph.edges {
        if e.kind != EdgeKind::Equivalent {
            continue;
        }
        let (a, b) = (&graph.nodes[e.from], &graph.nodes[e.to]);
        if a.probe || b.probe {
            continue;
        }
        // Neither serves from the other's fetch: distinct exchanges.
        let (Some((fa, _)), Some((fb, _))) = (role[e.from], role[e.to]) else {
            continue;
        };
        if fa == fb {
            continue;
        }
        out.push(Diagnostic {
            rule: "duplicate-inflight-step",
            severity: Severity::Warning,
            step: b.step + 1,
            message: format!(
                "{} and {} both exchange {} for provably equivalent \
                 conditions; witness: duplicate [{la}:fetch; {lb}:fetch] \
                 vs merged [{la}:fetch; {lb}:serve«{la}»]",
                a.label(),
                b.label(),
                sq_word(a),
                la = a.label(),
                lb = b.label(),
            ),
        });
    }
    out
}

/// `unshared-subsumed-step` findings: a class fetches remotely although
/// a proved broader class is fetching in the same schedule — the
/// narrower harvest is a residual filter away from free.
pub fn unshared_subsumed_findings(
    _plans: &[InFlightPlan<'_>],
    graph: &SharingGraph,
    schedule: &MergedSchedule,
) -> Vec<Diagnostic> {
    let fetching: Vec<usize> = schedule.fetches.iter().map(|f| f.class).collect();
    let mut out = Vec::new();
    for fetch in &schedule.fetches {
        let narrow = &graph.nodes[fetch.leader];
        let Some(broad_class) = fetching
            .iter()
            .copied()
            .find(|&a| graph.class_contains[a][fetch.class])
        else {
            continue;
        };
        let broad_leader = schedule
            .fetches
            .iter()
            .find(|f| f.class == broad_class)
            .map_or(graph.class_members[broad_class][0], |f| f.leader);
        let broad = &graph.nodes[broad_leader];
        out.push(Diagnostic {
            rule: "unshared-subsumed-step",
            severity: Severity::Warning,
            step: narrow.step + 1,
            message: format!(
                "{} exchanges {} although {}'s {} provably contains it; \
                 witness: unshared [{lb}:fetch; {ln}:fetch] vs merged \
                 [{lb}:fetch; {ln}:serve«{lb}»+residual]",
                narrow.label(),
                sq_word(narrow),
                broad.label(),
                sq_word(broad),
                lb = broad.label(),
                ln = narrow.label(),
            ),
        });
    }
    out
}

/// `unsound-merge-residual` findings: a fan-out edge whose containment
/// the prover cannot discharge, or a proper containment served without
/// its residual filter — either way merged execution can diverge from
/// isolated execution.
pub fn unsound_merge_findings(
    plans: &[InFlightPlan<'_>],
    graph: &SharingGraph,
    schedule: &MergedSchedule,
    prove: Prover<'_>,
) -> Vec<Diagnostic> {
    let pred = |n: &StepNode| plans[n.query].pred(n.cond);
    let mut out = Vec::new();
    for fetch in &schedule.fetches {
        let leader = &graph.nodes[fetch.leader];
        for f in &fetch.followers {
            let n = &graph.nodes[f.node];
            let (defect, fix) = if !prove(pred(leader), pred(n)) {
                (
                    "has no containment proof".to_string(),
                    format!("isolated [{}:fetch]", n.label()),
                )
            } else if !f.residual && !prove(pred(n), pred(leader)) {
                (
                    "drops the residual filter on a proper containment".to_string(),
                    format!("sound [{}:serve«{}»+residual]", n.label(), leader.label()),
                )
            } else {
                continue;
            };
            out.push(Diagnostic {
                rule: "unsound-merge-residual",
                severity: Severity::Error,
                step: n.step + 1,
                message: format!(
                    "serving {}'s {} from {}'s {} {defect}: merged execution \
                     can diverge from isolated; witness: merged \
                     [{ll}:fetch; {ln}:serve«{ll}»] vs {fix}",
                    n.label(),
                    sq_word(n),
                    leader.label(),
                    sq_word(leader),
                    ll = leader.label(),
                    ln = n.label(),
                ),
            });
        }
    }
    out
}

/// A sharing lint with findings precomputed from an explicit (possibly
/// mutant) graph and schedule.
macro_rules! sharing_lint {
    ($name:ident, $rule:literal, $doc:literal) => {
        #[doc = $doc]
        pub struct $name {
            findings: Vec<Diagnostic>,
        }

        impl Lint for $name {
            fn name(&self) -> &'static str {
                $rule
            }

            fn check(&self, _plan: &Plan, _analysis: &mut Analysis) -> Vec<Diagnostic> {
                self.findings.clone()
            }
        }
    };
}

sharing_lint!(
    DuplicateInflightStep,
    "duplicate-inflight-step",
    "See [`duplicate_inflight_findings`]."
);
sharing_lint!(
    UnsharedSubsumedStep,
    "unshared-subsumed-step",
    "See [`unshared_subsumed_findings`]."
);
sharing_lint!(
    UnsoundMergeResidual,
    "unsound-merge-residual",
    "See [`unsound_merge_findings`]."
);

impl DuplicateInflightStep {
    /// Precomputes findings over an explicit schedule.
    pub fn from_schedule(
        plans: &[InFlightPlan<'_>],
        graph: &SharingGraph,
        schedule: &MergedSchedule,
    ) -> DuplicateInflightStep {
        DuplicateInflightStep {
            findings: duplicate_inflight_findings(plans, graph, schedule),
        }
    }
}

impl UnsharedSubsumedStep {
    /// Precomputes findings over an explicit schedule.
    pub fn from_schedule(
        plans: &[InFlightPlan<'_>],
        graph: &SharingGraph,
        schedule: &MergedSchedule,
    ) -> UnsharedSubsumedStep {
        UnsharedSubsumedStep {
            findings: unshared_subsumed_findings(plans, graph, schedule),
        }
    }
}

impl UnsoundMergeResidual {
    /// Precomputes findings over an explicit schedule.
    pub fn from_schedule(
        plans: &[InFlightPlan<'_>],
        graph: &SharingGraph,
        schedule: &MergedSchedule,
        prove: Prover<'_>,
    ) -> UnsoundMergeResidual {
        UnsoundMergeResidual {
            findings: unsound_merge_findings(plans, graph, schedule, prove),
        }
    }
}

/// The three sharing lints over an explicit graph and schedule —
/// provably quiet on any schedule [`verify_merged_schedule`] accepts
/// with the same prover, loud on hand-built mutants (see the golden
/// corpus).
pub fn sharing_rules(
    plans: &[InFlightPlan<'_>],
    graph: &SharingGraph,
    schedule: &MergedSchedule,
    prove: Prover<'_>,
) -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(DuplicateInflightStep::from_schedule(plans, graph, schedule)),
        Box::new(UnsharedSubsumedStep::from_schedule(plans, graph, schedule)),
        Box::new(UnsoundMergeResidual::from_schedule(
            plans, graph, schedule, prove,
        )),
    ]
}

/// One logged share link of a server run: a follower admission that
/// attached to a leader's in-flight fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareLink {
    /// The follower's admission ticket.
    pub follower: u64,
    /// The leader's admission ticket.
    pub leader: u64,
}

/// Verifies the share windows of a server run: every logged share link
/// must attach a follower to a query that was **admitted before it**
/// (`leader admit < follower admit`) and **still uncommitted at its
/// admission** (`follower admit < leader commit`, when the leader
/// committed). `admits` holds every admission ticket, `commits` maps
/// admission tickets to commit tickets. Returns the number of links
/// checked — the always-on dynamic guard behind the fan-out discipline.
///
/// # Errors
/// Fails with the violated window.
pub fn verify_share_windows(
    links: &[ShareLink],
    admits: &[u64],
    commits: &[(u64, u64)],
) -> Result<usize> {
    let fail = |msg: String| {
        Err(FusionError::invalid_plan(format!(
            "share-window certificate: {msg}"
        )))
    };
    for l in links {
        if !admits.contains(&l.leader) {
            return fail(format!(
                "ticket {} served from unknown admission {}",
                l.follower, l.leader
            ));
        }
        if l.leader >= l.follower {
            return fail(format!(
                "ticket {} served from leader {} admitted at or after it — \
                 followers may only attach to earlier admissions",
                l.follower, l.leader
            ));
        }
        if let Some(&(_, ct)) = commits.iter().find(|&&(a, _)| a == l.leader) {
            if ct <= l.follower {
                return fail(format!(
                    "ticket {} attached to leader {} after its commit \
                     (ticket {ct}) — the fetch slot was already drained",
                    l.follower, l.leader
                ));
            }
        }
    }
    Ok(links.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::VarId;
    use fusion_types::CmpOp;

    fn ge(v: i64) -> Predicate {
        Predicate::cmp("D", CmpOp::Ge, v)
    }

    /// Hand prover: `D >= a` contains `D >= b` iff `b >= a`; everything
    /// else only by syntactic equality.
    fn hand_prover(broad: &Predicate, narrow: &Predicate) -> bool {
        match (broad, narrow) {
            (
                Predicate::Cmp {
                    attr: a,
                    op: CmpOp::Ge,
                    value: va,
                },
                Predicate::Cmp {
                    attr: b,
                    op: CmpOp::Ge,
                    value: vb,
                },
            ) if a == b => match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => y >= x,
                _ => va == vb,
            },
            _ => broad == narrow,
        }
    }

    /// A one-selection plan `sq(c1, R{src+1})`.
    fn sq_plan(src: usize) -> Plan {
        let mut p = Plan::new(vec![], VarId(0), 1, src + 1);
        let x = p.fresh_var("X");
        p.steps = vec![Step::Sq {
            out: x,
            cond: CondId(0),
            source: SourceId(src),
        }];
        p.result = x;
        p
    }

    fn conds(preds: Vec<Predicate>) -> Vec<Condition> {
        preds.into_iter().map(Condition::from).collect()
    }

    fn inflight<'a>(qid: u64, plan: &'a Plan, conditions: &'a [Condition]) -> InFlightPlan<'a> {
        InFlightPlan {
            qid,
            plan,
            conditions,
        }
    }

    #[test]
    fn equivalent_steps_merge_into_one_exchange() {
        let (pa, pb) = (sq_plan(1), sq_plan(1));
        let (ca, cb) = (conds(vec![ge(1990)]), conds(vec![ge(1990)]));
        let plans = vec![inflight(1, &pa, &ca), inflight(2, &pb, &cb)];
        let report = sharing_report(&plans, &hand_prover).unwrap();
        assert_eq!(report.graph.nodes.len(), 2);
        assert_eq!(report.graph.edges.len(), 1);
        assert_eq!(report.graph.edges[0].kind, EdgeKind::Equivalent);
        assert_eq!(report.schedule.fetches.len(), 1);
        let f = &report.schedule.fetches[0];
        assert_eq!(f.leader, 0);
        assert_eq!(
            f.followers,
            vec![FanOut {
                node: 1,
                residual: false
            }]
        );
        assert_eq!(report.certificate.exchanges, 1);
        assert_eq!(report.certificate.served, 1);
        assert_eq!(report.certificate.residuals, 0);
        assert_eq!(report.certificate.ordered_pairs, 1);
        // The derived schedule is lint-quiet.
        let mut analysis = crate::analyze::analyze_plan(&pa).unwrap();
        for rule in sharing_rules(&plans, &report.graph, &report.schedule, &hand_prover) {
            assert!(rule.check(&pa, &mut analysis).is_empty(), "{}", rule.name());
        }
    }

    #[test]
    fn proper_containment_redirects_through_a_residual() {
        let (pa, pb) = (sq_plan(0), sq_plan(0));
        let (ca, cb) = (conds(vec![ge(1990)]), conds(vec![ge(1995)]));
        let plans = vec![inflight(1, &pa, &ca), inflight(2, &pb, &cb)];
        let report = sharing_report(&plans, &hand_prover).unwrap();
        // One Contains edge, broad -> narrow.
        assert_eq!(report.graph.edges.len(), 1);
        assert_eq!(report.graph.edges[0].kind, EdgeKind::Contains);
        assert_eq!(report.graph.edges[0].from, 0);
        assert_eq!(report.schedule.fetches.len(), 1);
        assert_eq!(
            report.schedule.fetches[0].followers,
            vec![FanOut {
                node: 1,
                residual: true
            }]
        );
        assert_eq!(report.certificate.residuals, 1);
    }

    #[test]
    fn unrelated_conditions_fetch_separately() {
        let (pa, pb) = (sq_plan(0), sq_plan(0));
        let (ca, cb) = (
            conds(vec![ge(1990)]),
            conds(vec![Predicate::eq("V", "dui")]),
        );
        let plans = vec![inflight(1, &pa, &ca), inflight(2, &pb, &cb)];
        let report = sharing_report(&plans, &hand_prover).unwrap();
        assert!(report.graph.edges.is_empty());
        assert_eq!(report.schedule.fetches.len(), 2);
        assert!(report
            .schedule
            .fetches
            .iter()
            .all(|f| f.followers.is_empty()));
        assert_eq!(report.certificate.served, 0);
    }

    #[test]
    fn redirects_need_a_direct_proof_never_transitivity() {
        // A chain prover that proves A ⊇ B and B ⊇ C but *not* A ⊇ C:
        // an incomplete prover's world. C's only proved container (B)
        // redirects itself, so C must fetch on its own.
        let chain = |broad: &Predicate, narrow: &Predicate| -> bool {
            let (a, b, c) = (ge(1990), ge(1995), ge(2000));
            (broad, narrow) == (&a, &b) || (broad, narrow) == (&b, &c) || broad == narrow
        };
        let (pa, pb, pc) = (sq_plan(0), sq_plan(0), sq_plan(0));
        let (ca, cb, cc) = (
            conds(vec![ge(1990)]),
            conds(vec![ge(1995)]),
            conds(vec![ge(2000)]),
        );
        let plans = vec![
            inflight(1, &pa, &ca),
            inflight(2, &pb, &cb),
            inflight(3, &pc, &cc),
        ];
        let report = sharing_report(&plans, &chain).unwrap();
        // B serves from A; C fetches for itself.
        assert_eq!(report.schedule.fetches.len(), 2);
        assert_eq!(report.schedule.fetches[0].leader, 0);
        assert_eq!(
            report.schedule.fetches[0].followers,
            vec![FanOut {
                node: 1,
                residual: true
            }]
        );
        assert_eq!(report.schedule.fetches[1].leader, 2);
        assert!(report.schedule.fetches[1].followers.is_empty());
        // The unshared lint still points at the missed chain: C's class
        // is contained in B's, which fetches... it does not — B
        // redirects. No fetching class contains C, so the lint is quiet.
        let findings = unshared_subsumed_findings(&plans, &report.graph, &report.schedule);
        assert!(findings.is_empty(), "{findings:?}");
    }

    /// A plan probing `sjq(c2, R2, X)` where `X = sq(c1, R1) − sq(c2, R1)`
    /// or the mirrored difference, to exercise antitone signatures.
    fn diff_probe_plan(mirror: bool) -> Plan {
        let mut p = Plan::new(vec![], VarId(0), 2, 2);
        let a = p.fresh_var("A");
        let b = p.fresh_var("B");
        let d = p.fresh_var("D");
        let y = p.fresh_var("Y");
        let (l, r) = if mirror { (b, a) } else { (a, b) };
        p.steps = vec![
            Step::Sq {
                out: a,
                cond: CondId(0),
                source: SourceId(0),
            },
            Step::Sq {
                out: b,
                cond: CondId(1),
                source: SourceId(0),
            },
            Step::Diff {
                out: d,
                left: l,
                right: r,
            },
            Step::Sjq {
                out: y,
                cond: CondId(1),
                source: SourceId(1),
                input: d,
            },
        ];
        p.result = y;
        p
    }

    #[test]
    fn probe_batches_require_byte_equal_signatures() {
        let cs = conds(vec![ge(1990), ge(1995)]);
        // Same shape: the probes batch.
        let (pa, pb) = (diff_probe_plan(false), diff_probe_plan(false));
        let plans = vec![inflight(1, &pa, &cs), inflight(2, &pb, &cs)];
        let g = SharingGraph::build(&plans, &hand_prover).unwrap();
        assert_eq!(g.probe_batches.len(), 1);
        assert_eq!(g.probe_batches[0].len(), 2);
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == EdgeKind::Equivalent && g.nodes[e.from].probe));
        // Mirrored difference: `A − B` vs `B − A` is antitone in the
        // swapped operand — the signatures differ, nothing batches.
        let pm = diff_probe_plan(true);
        let plans = vec![inflight(1, &pa, &cs), inflight(2, &pm, &cs)];
        let g = SharingGraph::build(&plans, &hand_prover).unwrap();
        assert!(g.probe_batches.is_empty());
        assert!(!g
            .edges
            .iter()
            .any(|e| g.nodes[e.from].probe || g.nodes[e.to].probe));
    }

    #[test]
    fn union_signatures_are_commutative() {
        // u(sq A, sq B) and u(sq B, sq A) batch the downstream probe.
        let build = |swap: bool| {
            let mut p = Plan::new(vec![], VarId(0), 2, 2);
            let a = p.fresh_var("A");
            let b = p.fresh_var("B");
            let u = p.fresh_var("U");
            let y = p.fresh_var("Y");
            p.steps = vec![
                Step::Sq {
                    out: a,
                    cond: CondId(0),
                    source: SourceId(0),
                },
                Step::Sq {
                    out: b,
                    cond: CondId(1),
                    source: SourceId(0),
                },
                Step::Union {
                    out: u,
                    inputs: if swap { vec![b, a] } else { vec![a, b] },
                },
                Step::Sjq {
                    out: y,
                    cond: CondId(0),
                    source: SourceId(1),
                    input: u,
                },
            ];
            p.result = y;
            p
        };
        let cs = conds(vec![ge(1990), Predicate::eq("V", "dui")]);
        let (pa, pb) = (build(false), build(true));
        let plans = vec![inflight(1, &pa, &cs), inflight(2, &pb, &cs)];
        let g = SharingGraph::build(&plans, &hand_prover).unwrap();
        assert_eq!(g.probe_batches.len(), 1);
    }

    #[test]
    fn duplicate_inflight_mutant_fires_and_fails_the_certificate() {
        let (pa, pb) = (sq_plan(1), sq_plan(1));
        let (ca, cb) = (conds(vec![ge(1990)]), conds(vec![ge(1990)]));
        let plans = vec![inflight(1, &pa, &ca), inflight(2, &pb, &cb)];
        let g = SharingGraph::build(&plans, &hand_prover).unwrap();
        // Mutant: both queries exchange — today's first-fetches/rest-hit
        // behavior, one fetch per node.
        let mutant = MergedSchedule {
            fetches: vec![
                MergedFetch {
                    class: 0,
                    source: SourceId(1),
                    leader: 0,
                    followers: vec![],
                },
                MergedFetch {
                    class: 0,
                    source: SourceId(1),
                    leader: 1,
                    followers: vec![],
                },
            ],
        };
        let findings = duplicate_inflight_findings(&plans, &g, &mutant);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Warning);
        assert!(findings[0].message.contains("witness"), "{}", findings[0]);
        assert!(
            findings[0].message.contains("serve«q1#1»"),
            "{}",
            findings[0]
        );
        // Two writers of one shared-fetch slot: the certificate refuses.
        let err = verify_merged_schedule(&plans, &g, &mutant, &hand_prover).unwrap_err();
        assert!(err.to_string().contains("unordered"), "{err}");
        // The derived schedule is quiet.
        let good = merged_schedule(&g);
        assert!(duplicate_inflight_findings(&plans, &g, &good).is_empty());
    }

    #[test]
    fn unshared_subsumed_mutant_fires_but_stays_sound() {
        let (pa, pb) = (sq_plan(0), sq_plan(0));
        let (ca, cb) = (conds(vec![ge(1990)]), conds(vec![ge(1995)]));
        let plans = vec![inflight(1, &pa, &ca), inflight(2, &pb, &cb)];
        let g = SharingGraph::build(&plans, &hand_prover).unwrap();
        // Mutant: the narrow class fetches although the broad one does.
        let mutant = MergedSchedule {
            fetches: vec![
                MergedFetch {
                    class: 0,
                    source: SourceId(0),
                    leader: 0,
                    followers: vec![],
                },
                MergedFetch {
                    class: 1,
                    source: SourceId(0),
                    leader: 1,
                    followers: vec![],
                },
            ],
        };
        let findings = unshared_subsumed_findings(&plans, &g, &mutant);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Warning);
        assert!(
            findings[0].message.contains("serve«q1#1»+residual"),
            "{}",
            findings[0]
        );
        // Wasteful but sound: the certificate still passes.
        let cert = verify_merged_schedule(&plans, &g, &mutant, &hand_prover).unwrap();
        assert_eq!(cert.exchanges, 2);
        assert_eq!(cert.served, 0);
        // The derived schedule is quiet.
        let good = merged_schedule(&g);
        assert!(unshared_subsumed_findings(&plans, &g, &good).is_empty());
    }

    #[test]
    fn unsound_merge_mutants_fire_and_fail_the_certificate() {
        let (pa, pb) = (sq_plan(0), sq_plan(0));
        let (ca, cb) = (conds(vec![ge(1990)]), conds(vec![ge(1995)]));
        let plans = vec![inflight(1, &pa, &ca), inflight(2, &pb, &cb)];
        let g = SharingGraph::build(&plans, &hand_prover).unwrap();
        // Mutant 1: the proper containment is served *without* its
        // residual filter — extra tuples leak into the narrow answer.
        let no_residual = MergedSchedule {
            fetches: vec![MergedFetch {
                class: 0,
                source: SourceId(0),
                leader: 0,
                followers: vec![FanOut {
                    node: 1,
                    residual: false,
                }],
            }],
        };
        let findings = unsound_merge_findings(&plans, &g, &no_residual, &hand_prover);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(
            findings[0].message.contains("residual filter"),
            "{}",
            findings[0]
        );
        assert!(verify_merged_schedule(&plans, &g, &no_residual, &hand_prover).is_err());
        // Mutant 2: the containment runs the wrong way — the *narrow*
        // class fans out to the broad one. No proof exists.
        let inverted = MergedSchedule {
            fetches: vec![MergedFetch {
                class: 1,
                source: SourceId(0),
                leader: 1,
                followers: vec![FanOut {
                    node: 0,
                    residual: true,
                }],
            }],
        };
        let findings = unsound_merge_findings(&plans, &g, &inverted, &hand_prover);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("no containment proof"),
            "{}",
            findings[0]
        );
        let err = verify_merged_schedule(&plans, &g, &inverted, &hand_prover).unwrap_err();
        assert!(err.to_string().contains("no containment proof"), "{err}");
        // The derived schedule passes and is lint-quiet.
        let report = sharing_report(&plans, &hand_prover).unwrap();
        assert!(unsound_merge_findings(&plans, &g, &report.schedule, &hand_prover).is_empty());
    }

    #[test]
    fn certificate_rejects_dropped_and_double_roles() {
        let (pa, pb) = (sq_plan(0), sq_plan(0));
        let (ca, cb) = (conds(vec![ge(1990)]), conds(vec![ge(1990)]));
        let plans = vec![inflight(1, &pa, &ca), inflight(2, &pb, &cb)];
        let g = SharingGraph::build(&plans, &hand_prover).unwrap();
        // Dropping the follower leaves a node with no role.
        let dropped = MergedSchedule {
            fetches: vec![MergedFetch {
                class: 0,
                source: SourceId(0),
                leader: 0,
                followers: vec![],
            }],
        };
        let err = verify_merged_schedule(&plans, &g, &dropped, &hand_prover).unwrap_err();
        assert!(err.to_string().contains("neither"), "{err}");
        // Serving the leader from itself is a double role.
        let doubled = MergedSchedule {
            fetches: vec![MergedFetch {
                class: 0,
                source: SourceId(0),
                leader: 0,
                followers: vec![
                    FanOut {
                        node: 0,
                        residual: false,
                    },
                    FanOut {
                        node: 1,
                        residual: false,
                    },
                ],
            }],
        };
        let err = verify_merged_schedule(&plans, &g, &doubled, &hand_prover).unwrap_err();
        assert!(err.to_string().contains("two roles"), "{err}");
    }

    #[test]
    fn share_windows_enforce_admit_and_commit_order() {
        let links = |f: u64, l: u64| {
            vec![ShareLink {
                follower: f,
                leader: l,
            }]
        };
        let admits = vec![1, 3, 5];
        let commits = vec![(1, 7), (3, 4)];
        // Leader admitted first, follower admitted before its commit.
        assert_eq!(
            verify_share_windows(&links(3, 1), &admits, &commits).unwrap(),
            1
        );
        assert_eq!(
            verify_share_windows(&links(5, 1), &admits, &commits).unwrap(),
            1
        );
        // Follower admitted after the leader's commit: the slot was
        // already drained.
        let err = verify_share_windows(&links(5, 3), &admits, &commits).unwrap_err();
        assert!(err.to_string().contains("after its commit"), "{err}");
        // Leader admitted after the follower.
        let err = verify_share_windows(&links(1, 3), &admits, &commits).unwrap_err();
        assert!(err.to_string().contains("earlier admissions"), "{err}");
        // Unknown leader ticket.
        let err = verify_share_windows(&links(3, 2), &admits, &commits).unwrap_err();
        assert!(err.to_string().contains("unknown admission"), "{err}");
        // Empty logs always certify.
        assert_eq!(verify_share_windows(&[], &[], &[]).unwrap(), 0);
    }
}
