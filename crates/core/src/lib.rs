//! Fusion query plans, cost models, and the paper's optimizers.
//!
//! This crate is the reproduction of the paper's contribution:
//!
//! * [`FusionQuery`] — the query class of §2.2: find the merge-attribute
//!   items that satisfy every condition `c_1..c_m`, where each condition
//!   may hold at any of the sources `R_1..R_n`.
//! * [`plan`] — the simple-plan language of §2.3 (`sq`, `sjq`, local
//!   `∪`/`∩`) plus the extended operations of §4 (`lq`, local selection,
//!   set difference), as an ANF-style step list that prints in the paper's
//!   own notation.
//! * [`cost`] — the general cost model interface of §2.4 and two
//!   implementations: an explicit table model (for tests and worked
//!   examples) and a network model deriving costs from link parameters,
//!   source capabilities, and statistics.
//! * [`optimizer`] — FILTER, SJ (Fig. 3), SJA (Fig. 4), and the greedy
//!   variants the paper attributes to its extended version \[24\].
//! * [`postopt`] — the SJA+ postoptimizations of §4: semijoin-set pruning
//!   with set difference and whole-source loading.
//! * [`estimate`] — optimizer-side cost/cardinality estimation for any
//!   plan, used both during search and for estimated-vs-actual studies.
//! * [`evaluate`] — a pure reference interpreter of plans over in-memory
//!   relations, used to prove plan transformations semantics-preserving.
//! * [`sampler`] — a generator of random *correct* simple plans, used to
//!   validate the optimality theorem empirically.
//! * [`analyze`] — the semantic plan analyzer: an abstract interpreter
//!   over the step IR that *proves* (or refutes with a counterexample
//!   world) that a plan computes `⋂_i ⋃_j sq(c_i, R_j)`, plus a lint
//!   framework flagging dead steps, duplicate queries, oversized
//!   semijoin inputs, unused loads, and un-re-intersected Bloom results.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod cost;
pub mod dataflow;
pub mod estimate;
pub mod evaluate;
pub mod explain;
pub mod optimizer;
pub mod phase2;
pub mod plan;
pub mod postopt;
pub mod query;
pub mod sampler;

pub use analyze::{analyze_plan, lint_plan, Analysis, Counterexample, Diagnostic, Verdict};
pub use cost::{
    calibrate, CalibratedCostModel, CostModel, FeedbackCostModel, NetworkCostModel, TableCostModel,
};
pub use dataflow::{
    analyze_dataflow, certify_switch, dataflow_lint_plan, interference_report, interference_rules,
    plan_footprints, serial_queue_stages, stage_decomposition, step_footprint,
    verify_serial_queue_stages, CostInterval, Dataflow, Event, EventGraph, Footprint, Interference,
    Interval, Resource, SourceBounds, StageDecomposition, SwitchCertificate, Witness,
};
pub use estimate::{estimate_plan_cost, PlanEstimate};
pub use evaluate::{evaluate_plan, evaluate_plan_vars};
pub use explain::explain;
pub use optimizer::{filter_plan, greedy_sja, sj_optimal, sja_optimal, OptimizedPlan};
pub use plan::{Plan, PlanClass, RelVar, SimplePlanSpec, SourceChoice, Step, VarId};
pub use postopt::{sja_plus, PostOptConfig};
pub use query::FusionQuery;
