//! Random generation of *correct* simple plans.
//!
//! The paper's optimality theorem (\[24\], summarized in §1 step 3) says the
//! best semijoin-adaptive plan is the best *simple* plan when conditions
//! are independent (always, for m = 2). We validate that claim empirically
//! by sampling from a strictly larger family of correct simple plans than
//! the SJA search space and checking that none beats the SJA optimum.
//!
//! The sampled family generalizes condition-at-a-time plans in two ways:
//!
//! * the semijoin set of a round-`r` query may be **any** earlier round
//!   result `X_k` (`k < r`), not just the tightest `X_{r-1}`;
//! * the condition order and per-source choices are arbitrary.
//!
//! Every sampled plan is correct: a semijoin input `X_k` is always a
//! superset of the final answer, so no qualifying item is lost, and every
//! round intersects with the running result.

use crate::plan::{Plan, SourceChoice, Step, VarId};
use fusion_stats::SplitMix64;
use fusion_types::{CondId, SourceId};

/// Describes one sampled plan (for reporting which shape won, if any).
#[derive(Debug, Clone)]
pub struct SampledPlan {
    /// The plan itself.
    pub plan: Plan,
    /// Condition order used.
    pub order: Vec<CondId>,
    /// Per-round, per-source: `None` = selection, `Some(k)` = semijoin
    /// against round `k`'s result.
    pub choices: Vec<Vec<Option<usize>>>,
}

/// Samples a random correct simple plan for `m` conditions and `n`
/// sources, deterministically under `seed`.
pub fn random_simple_plan(m: usize, n: usize, seed: u64) -> SampledPlan {
    assert!(m >= 1 && n >= 1, "need at least one condition and source");
    let mut rng = SplitMix64::new(seed);
    // Random condition order (Fisher–Yates).
    let mut order: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = rng.next_below(i + 1);
        order.swap(i, j);
    }
    let mut choices: Vec<Vec<Option<usize>>> = Vec::with_capacity(m);
    choices.push(vec![None; n]);
    for r in 1..m {
        let row = (0..n)
            .map(|_| {
                if rng.next_f64() < 0.5 {
                    None
                } else {
                    Some(rng.next_below(r))
                }
            })
            .collect();
        choices.push(row);
    }
    let plan = build_sampled(&order, &choices, n);
    SampledPlan {
        plan,
        order: order.into_iter().map(CondId).collect(),
        choices,
    }
}

/// Builds the plan for an explicit sampled shape.
fn build_sampled(order: &[usize], choices: &[Vec<Option<usize>>], n: usize) -> Plan {
    let m = order.len();
    let mut plan = Plan {
        steps: Vec::new(),
        result: VarId(0),
        n_conditions: m,
        n_sources: n,
        var_names: Vec::new(),
        rel_names: Vec::new(),
    };
    let mut round_results: Vec<VarId> = Vec::with_capacity(m);
    for (r, &cond) in order.iter().enumerate() {
        let round_no = r + 1;
        let mut per_source = Vec::with_capacity(n);
        for (j, choice) in choices[r].iter().enumerate() {
            let out = plan.fresh_var(format!("X{round_no}{}", j + 1));
            let step = match *choice {
                None => Step::Sq {
                    out,
                    cond: CondId(cond),
                    source: SourceId(j),
                },
                Some(k) => Step::Sjq {
                    out,
                    cond: CondId(cond),
                    source: SourceId(j),
                    input: round_results[k],
                },
            };
            plan.steps.push(step);
            per_source.push(out);
        }
        let union_out = plan.fresh_var(format!("X{round_no}"));
        plan.steps.push(Step::Union {
            out: union_out,
            inputs: per_source,
        });
        // The intersection with the running result is redundant exactly
        // when every source was semijoined against `X_{r-1}` itself (each
        // output is then already a subset). Omitting it in that case
        // matches the builder convention of `SimplePlanSpec::build` and
        // keeps the independence-based estimator from double-shrinking
        // correlated sets.
        let all_tight_semijoin = r > 0 && choices[r].iter().all(|c| *c == Some(r - 1));
        let result = if r == 0 || all_tight_semijoin {
            union_out
        } else {
            let inter = plan.fresh_var(format!("X{round_no}"));
            plan.steps.push(Step::Intersect {
                out: inter,
                inputs: vec![union_out, round_results[r - 1]],
            });
            inter
        };
        round_results.push(result);
    }
    plan.result = *round_results.last().expect("m >= 1");
    plan
}

/// Converts a sampled shape into the equivalent [`SourceChoice`] row for
/// reporting (any semijoin, regardless of its input round, counts as a
/// semijoin choice).
pub fn choice_kinds(choices: &[Vec<Option<usize>>]) -> Vec<Vec<SourceChoice>> {
    choices
        .iter()
        .map(|row| {
            row.iter()
                .map(|c| match c {
                    None => SourceChoice::Selection,
                    Some(_) => SourceChoice::Semijoin,
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::estimate::estimate_plan_cost;
    use crate::evaluate::evaluate_plan;
    use crate::optimizer::sja_optimal;
    use crate::query::FusionQuery;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Predicate, Relation};

    #[test]
    fn sampled_plans_validate() {
        for seed in 0..200 {
            let s = random_simple_plan(3, 3, seed);
            s.plan.validate().unwrap();
        }
    }

    #[test]
    fn sampled_plans_are_deterministic() {
        let a = random_simple_plan(4, 2, 7);
        let b = random_simple_plan(4, 2, 7);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn sampled_plans_compute_the_right_answer() {
        let q = FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
                Predicate::cmp("D", fusion_types::CmpOp::Ge, 1993i64).into(),
            ],
        )
        .unwrap();
        let s = dmv_schema();
        let sources = vec![
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["J55", "dui", 1993i64],
                    tuple!["T21", "sp", 1994i64],
                    tuple!["T80", "dui", 1993i64],
                ],
            ),
            Relation::from_rows(
                s,
                vec![
                    tuple!["T21", "dui", 1996i64],
                    tuple!["J55", "sp", 1996i64],
                    tuple!["T11", "sp", 1993i64],
                ],
            ),
        ];
        let truth = q.naive_answer(&sources).unwrap();
        for seed in 0..100 {
            let sampled = random_simple_plan(3, 2, seed);
            let got = evaluate_plan(&sampled.plan, q.conditions(), &sources).unwrap();
            assert_eq!(got, truth, "seed {seed}, plan:\n{}", sampled.plan);
        }
    }

    #[test]
    fn no_sample_beats_sja_under_independence() {
        // The empirical optimality check that E10 scales up.
        let m = TableCostModel::uniform(3, 3, 10.0, 1.0, 0.2, 1e9, 6.0, 300.0);
        // Price the SJA optimum with the same plan walker the samples use,
        // so composition differences cannot bias the comparison.
        let best = estimate_plan_cost(&sja_optimal(&m).plan, &m).cost;
        for seed in 0..500 {
            let sampled = random_simple_plan(3, 3, seed);
            let est = estimate_plan_cost(&sampled.plan, &m).cost;
            assert!(
                est.value() >= best.value() * (1.0 - 1e-9),
                "seed {seed} beat SJA: {est} < {best}\n{}",
                sampled.plan
            );
        }
    }

    #[test]
    fn choice_kinds_maps_correctly() {
        let kinds = choice_kinds(&[vec![None, Some(0)], vec![Some(1), None]]);
        assert_eq!(
            kinds,
            vec![
                vec![SourceChoice::Selection, SourceChoice::Semijoin],
                vec![SourceChoice::Semijoin, SourceChoice::Selection],
            ]
        );
    }
}
