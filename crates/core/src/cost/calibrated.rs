//! A cost model *learned* from probe queries — no cooperation from the
//! sources required.
//!
//! The paper's cost functions "can use whatever information is available
//! at query optimization time", citing query-sampling techniques (Zhu &
//! Larson \[25\], Du et al. \[5\]) for gathering it. This module closes
//! that loop end-to-end: [`calibrate`] issues a handful of probe queries
//! per source (varying request and response sizes), observes the actual
//! costs through the network, and least-squares-fits per-source affine
//! coefficients; the resulting [`CalibratedCostModel`] implements
//! [`CostModel`] from the fitted coefficients plus wrapper statistics —
//! nothing else.

use crate::cost::CostModel;
use crate::query::FusionQuery;
use fusion_net::message::ENVELOPE_BYTES;
use fusion_net::{ExchangeKind, MessageSize, Network};
use fusion_source::{Capabilities, SourceSet};
use fusion_stats::{estimate_selectivity, CostCalibration, Observation, SplitMix64};
use fusion_types::error::{FusionError, Result};
use fusion_types::{CondId, Cost, ItemSet, Predicate, SourceId};

/// Per-source learned parameters.
#[derive(Debug, Clone)]
struct SourceFit {
    cal: CostCalibration,
    caps: Capabilities,
    rows: f64,
    avg_item_bytes: f64,
    avg_tuple_bytes: f64,
    /// Estimated items per condition (selectivity × rows).
    est: Vec<f64>,
}

/// A [`CostModel`] whose coefficients were fitted from observed probe
/// exchanges. Estimation mirrors `NetworkCostModel`, with
/// `cal.predict(req_bytes, resp_bytes)` in place of the link formula.
#[derive(Debug, Clone)]
pub struct CalibratedCostModel {
    m: usize,
    sources: Vec<SourceFit>,
    cond_wire: Vec<usize>,
    domain: f64,
    /// Total cost spent on the calibration probes themselves.
    pub calibration_cost: Cost,
}

/// Probes every source and fits its cost coefficients.
///
/// Per source, the probes are semijoin queries with binding sets of
/// geometrically growing sizes (so request bytes vary) — emulated
/// transparently where the source lacks native support — plus one
/// never-matching selection (so the fixed cost is observed in isolation).
/// The shipped bindings are synthetic items, not user data.
///
/// # Errors
/// Fails if a source cannot answer any probe, or its observations are
/// too degenerate to fit.
pub fn calibrate(
    sources: &SourceSet,
    network: &mut Network,
    query: &FusionQuery,
    seed: u64,
) -> Result<CalibratedCostModel> {
    let mut rng = SplitMix64::new(seed);
    let mut fits = Vec::with_capacity(sources.len());
    let mut calibration_cost = Cost::ZERO;
    let never: fusion_types::Condition = Predicate::Const(false).into();
    for (id, w) in sources.iter() {
        let mut obs: Vec<Observation> = Vec::new();
        // One empty selection: isolates the fixed per-query cost.
        {
            let resp = w.select(&never)?;
            let req = MessageSize::sq_request(&never);
            let resp_bytes = MessageSize::items_response(&resp.payload);
            let c = network.exchange(id, ExchangeKind::Selection, req, resp_bytes);
            calibration_cost += c;
            obs.push(Observation {
                req_bytes: req as f64,
                resp_bytes: resp_bytes as f64,
                cost: c.value(),
            });
        }
        // One match-everything selection: varies the *response* size (the
        // empty probes all answer with bare envelopes, which would leave
        // the receive coefficient unidentifiable).
        {
            let all: fusion_types::Condition = Predicate::Const(true).into();
            let resp = w.select(&all)?;
            let req = MessageSize::sq_request(&all);
            let resp_bytes = MessageSize::items_response(&resp.payload);
            let c = network.exchange(id, ExchangeKind::Selection, req, resp_bytes);
            calibration_cost += c;
            obs.push(Observation {
                req_bytes: req as f64,
                resp_bytes: resp_bytes as f64,
                cost: c.value(),
            });
        }
        // Semijoin probes with growing synthetic binding sets.
        for &k in &[16usize, 64, 256, 1024] {
            let bindings: ItemSet = (0..k)
                .map(|_| fusion_types::Item::new(format!("__probe{:08x}", rng.next_u64() as u32)))
                .collect();
            let (cost, req, resp_bytes) = probe_semijoin(w, id, network, &never, &bindings)?;
            calibration_cost += cost;
            obs.push(Observation {
                req_bytes: req as f64,
                resp_bytes: resp_bytes as f64,
                cost: cost.value(),
            });
        }
        let cal = CostCalibration::fit(&obs).ok_or_else(|| {
            FusionError::execution(format!(
                "calibration observations for `{}` are degenerate",
                w.name()
            ))
        })?;
        let stats = w.stats();
        let est = query
            .conditions()
            .iter()
            .map(|c| {
                (estimate_selectivity(&c.pred, stats) * stats.rows as f64)
                    .min(stats.distinct_items as f64)
            })
            .collect();
        fits.push(SourceFit {
            cal,
            caps: *w.capabilities(),
            rows: stats.rows as f64,
            avg_item_bytes: stats.avg_item_bytes,
            avg_tuple_bytes: stats.avg_tuple_bytes,
            est,
        });
    }
    let domain = sources
        .iter()
        .map(|(_, w)| w.stats().distinct_items as f64)
        .sum();
    Ok(CalibratedCostModel {
        m: query.m(),
        sources: fits,
        cond_wire: query
            .conditions()
            .iter()
            .map(MessageSize::sq_request)
            .collect(),
        domain,
        calibration_cost,
    })
}

/// Executes one probing semijoin (native or emulated) and returns
/// `(total cost, request bytes, response bytes)`.
fn probe_semijoin(
    w: &dyn fusion_source::Wrapper,
    id: SourceId,
    network: &mut Network,
    cond: &fusion_types::Condition,
    bindings: &ItemSet,
) -> Result<(Cost, usize, usize)> {
    let caps = *w.capabilities();
    if caps.native_semijoin {
        let resp = w.semijoin(cond, bindings)?;
        let req = MessageSize::sjq_request(cond, bindings);
        let resp_bytes = MessageSize::items_response(&resp.payload);
        let c = network.exchange(id, ExchangeKind::Semijoin, req, resp_bytes);
        return Ok((c, req, resp_bytes));
    }
    if !caps.passed_bindings {
        return Err(FusionError::Unsupported {
            detail: format!("source `{}` cannot be probed with bindings", w.name()),
        });
    }
    let batch_size = caps.binding_batch.max(1);
    let items: Vec<_> = bindings.iter().cloned().collect();
    let (mut cost, mut req_total, mut resp_total) = (Cost::ZERO, 0usize, 0usize);
    for chunk in items.chunks(batch_size) {
        let batch = ItemSet::from_items(chunk.iter().cloned());
        let resp = w.probe(cond, &batch)?;
        let req = MessageSize::sjq_request(cond, &batch);
        let resp_bytes = MessageSize::items_response(&resp.payload);
        cost += network.exchange(id, ExchangeKind::BindingProbe, req, resp_bytes);
        req_total += req;
        resp_total += resp_bytes;
    }
    Ok((cost, req_total, resp_total))
}

impl CalibratedCostModel {
    fn fit(&self, source: SourceId) -> &SourceFit {
        &self.sources[source.0]
    }
}

impl CostModel for CalibratedCostModel {
    fn n_conditions(&self) -> usize {
        self.m
    }

    fn n_sources(&self) -> usize {
        self.sources.len()
    }

    fn sq_cost(&self, cond: CondId, source: SourceId) -> Cost {
        let f = self.fit(source);
        let returned = f.est[cond.0];
        let req = self.cond_wire[cond.0] as f64;
        let resp = MessageSize::items_response_estimated(returned, f.avg_item_bytes);
        Cost::new(f.cal.predict(req, resp).max(0.0))
    }

    fn sjq_cost(&self, cond: CondId, source: SourceId, est_items: f64) -> Cost {
        let f = self.fit(source);
        let k = est_items.max(0.0);
        let returned = k * self.source_sel(cond, source);
        let cond_bytes = self.cond_wire[cond.0] as f64;
        if f.caps.native_semijoin {
            let req = cond_bytes + k * f.avg_item_bytes;
            let resp = MessageSize::items_response_estimated(returned, f.avg_item_bytes);
            return Cost::new(f.cal.predict(req, resp).max(0.0));
        }
        if !f.caps.passed_bindings {
            return Cost::INFINITE;
        }
        // Emulation: the fixed coefficient is paid once per probe batch.
        let batch = f.caps.binding_batch.max(1) as f64;
        let probes = (k / batch).ceil().max(if k > 0.0 { 1.0 } else { 0.0 });
        let req = probes * cond_bytes + k * f.avg_item_bytes;
        let resp = probes * ENVELOPE_BYTES as f64 + returned * f.avg_item_bytes;
        let variable = f.cal.send_per_byte * req + f.cal.recv_per_byte * resp;
        Cost::new((probes * f.cal.base + variable).max(0.0))
    }

    fn lq_cost(&self, source: SourceId) -> Cost {
        let f = self.fit(source);
        if !f.caps.full_load {
            return Cost::INFINITE;
        }
        let req = MessageSize::lq_request() as f64;
        let resp = ENVELOPE_BYTES as f64 + f.rows * f.avg_tuple_bytes;
        Cost::new(f.cal.predict(req, resp).max(0.0))
    }

    fn est_sq_items(&self, cond: CondId, source: SourceId) -> f64 {
        self.fit(source).est[cond.0]
    }

    fn domain_size(&self) -> f64 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NetworkCostModel;
    use crate::optimizer::sja_optimal;
    use fusion_net::LinkProfile;
    use fusion_source::{InMemoryWrapper, ProcessingProfile};
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Relation};

    fn setup(caps: Capabilities) -> (FusionQuery, SourceSet, Network) {
        let s = dmv_schema();
        let sources = SourceSet::new(
            (0..3)
                .map(|j| {
                    let rows = (0..300)
                        .map(|i| {
                            tuple![
                                format!("L{j}{i:04}"),
                                if i % 10 == 0 { "dui" } else { "sp" },
                                (1990 + (i % 10)) as i64
                            ]
                        })
                        .collect();
                    Box::new(InMemoryWrapper::new(
                        format!("R{}", j + 1),
                        Relation::from_rows(s.clone(), rows),
                        caps,
                        ProcessingProfile::free(),
                        j as u64,
                    )) as Box<dyn fusion_source::Wrapper>
                })
                .collect(),
        );
        let q = FusionQuery::new(
            s,
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
            ],
        )
        .unwrap();
        // Heterogeneous links: calibration must recover each one.
        let net = Network::new(vec![
            LinkProfile::Lan.link(),
            LinkProfile::Wan.link(),
            LinkProfile::Slow.link(),
        ]);
        (q, sources, net)
    }

    #[test]
    fn calibrated_costs_track_oracle_costs() {
        let (q, sources, mut net) = setup(Capabilities::full());
        let oracle = NetworkCostModel::new(&sources, &net, &q, None);
        let learned = calibrate(&sources, &mut net, &q, 42).unwrap();
        assert!(learned.calibration_cost > Cost::ZERO);
        for j in 0..3 {
            for i in 0..2 {
                let (c, s) = (CondId(i), SourceId(j));
                let o = oracle.sq_cost(c, s).value();
                let l = learned.sq_cost(c, s).value();
                assert!(
                    (l - o).abs() < 0.15 * o.max(0.05),
                    "sq({c},{s}): learned {l:.4} vs oracle {o:.4}"
                );
                for k in [5.0, 50.0, 400.0] {
                    let o = oracle.sjq_cost(c, s, k).value();
                    let l = learned.sjq_cost(c, s, k).value();
                    assert!(
                        (l - o).abs() < 0.2 * o.max(0.05),
                        "sjq({c},{s},{k}): learned {l:.4} vs oracle {o:.4}"
                    );
                }
            }
        }
    }

    #[test]
    fn calibrated_model_yields_near_oracle_plans() {
        let (q, sources, mut net) = setup(Capabilities::full());
        let oracle = NetworkCostModel::new(&sources, &net, &q, None);
        let learned = calibrate(&sources, &mut net, &q, 7).unwrap();
        let oracle_plan = sja_optimal(&oracle);
        let learned_plan = sja_optimal(&learned);
        // The learned plan, priced by the oracle, must be close to the
        // oracle's own optimum (regret ≤ 10%).
        let regret = crate::estimate::estimate_plan_cost(&learned_plan.plan, &oracle)
            .cost
            .value()
            / crate::estimate::estimate_plan_cost(&oracle_plan.plan, &oracle)
                .cost
                .value();
        assert!(regret <= 1.10, "regret {regret:.3}");
    }

    #[test]
    fn calibration_works_through_emulation() {
        let (q, sources, mut net) = setup(Capabilities::emulated(64));
        let learned = calibrate(&sources, &mut net, &q, 9).unwrap();
        // Emulated semijoins must be priced above native-style costs for
        // batch-crossing sizes (extra per-probe fixed cost).
        let one_batch = learned.sjq_cost(CondId(0), SourceId(2), 60.0);
        let many_batches = learned.sjq_cost(CondId(0), SourceId(2), 600.0);
        assert!(many_batches > one_batch * 5.0);
    }

    #[test]
    fn selection_only_sources_cannot_calibrate() {
        let (q, sources, mut net) = setup(Capabilities::selection_only());
        assert!(calibrate(&sources, &mut net, &q, 1).is_err());
    }
}
