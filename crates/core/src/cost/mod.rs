//! The general cost model of §2.4 and its implementations.
//!
//! "We do not make any assumptions as to how the costs of source queries
//! are computed" — the optimizers are generic over [`CostModel`], which
//! exposes exactly the quantities the SJ/SJA algorithms consume:
//! `sq_cost(c_i, R_j)`, `sjq_cost(c_i, R_j, X)` (with the semijoin set
//! abstracted to its estimated cardinality), `lq_cost(R_j)` for the §4
//! postoptimizer, and the cardinality estimates needed to chain semijoin
//! set sizes across rounds.

mod calibrated;
mod feedback;
mod network;
mod table;

pub use calibrated::{calibrate, CalibratedCostModel};
pub use feedback::FeedbackCostModel;
pub use network::NetworkCostModel;
pub use table::TableCostModel;

use fusion_stats::union_estimate;
use fusion_types::{CondId, Cost, SourceId};

/// Cost and cardinality estimation interface consumed by the optimizers.
///
/// Implementations must satisfy the §2.4 axioms for the optimality results
/// to carry over:
///
/// * all costs are non-negative ([`Cost`] enforces this);
/// * `sjq_cost` is **sub-additive** in the semijoin set: splitting a set
///   never helps;
/// * local mediator operations are free (they never appear here);
/// * unsupported operations return [`Cost::INFINITE`].
///
/// Implementations should also keep `sjq_cost` **monotone** in
/// `est_items`; the SJA+ difference-pruning postoptimization (§4) is a
/// guaranteed improvement only under monotone models.
pub trait CostModel {
    /// Number of query conditions `m`.
    fn n_conditions(&self) -> usize;

    /// Number of sources `n`.
    fn n_sources(&self) -> usize;

    /// Estimated cost of the selection query `sq(c, R)`.
    fn sq_cost(&self, cond: CondId, source: SourceId) -> Cost;

    /// Estimated cost of the semijoin query `sjq(c, R, X)` for a semijoin
    /// set of `est_items` items (including emulation penalties, §2.3).
    fn sjq_cost(&self, cond: CondId, source: SourceId, est_items: f64) -> Cost;

    /// Estimated cost of loading the entire source (`lq(R)`, §4).
    fn lq_cost(&self, source: SourceId) -> Cost;

    /// Estimated cost of a Bloom-filter semijoin (extension): ship a
    /// `bits`-per-item filter of an `est_items`-item set, receive the
    /// qualifying items plus false positives. Models without Bloom
    /// support report infinity, which disables the rewrite.
    fn sjq_bloom_cost(&self, cond: CondId, source: SourceId, est_items: f64, bits: u8) -> Cost {
        let _ = (cond, source, est_items, bits);
        Cost::INFINITE
    }

    /// Estimated number of items `sq(c, R)` returns.
    fn est_sq_items(&self, cond: CondId, source: SourceId) -> f64;

    /// Estimated number of distinct items in the union of all sources.
    fn domain_size(&self) -> f64;

    /// Estimated `|⋃_j sq(c, R_j)|`: the size of the first round's result
    /// if `c` is processed first.
    fn est_condition_union(&self, cond: CondId) -> f64 {
        let per: Vec<f64> = (0..self.n_sources())
            .map(|j| self.est_sq_items(cond, SourceId(j)))
            .collect();
        union_estimate(&per, self.domain_size())
    }

    /// Global selectivity of a condition: the probability that a domain
    /// item satisfies `c` at some source. Drives the chaining
    /// `|X_i| = |X_{i-1}| · gsel(c_i)` under the independence assumption.
    fn gsel(&self, cond: CondId) -> f64 {
        let d = self.domain_size();
        if d <= 0.0 {
            return 0.0;
        }
        (self.est_condition_union(cond) / d).clamp(0.0, 1.0)
    }

    /// Per-source hit probability: the chance a domain item satisfies `c`
    /// *at source `j`* — the factor by which a semijoin at `j` shrinks its
    /// input.
    fn source_sel(&self, cond: CondId, source: SourceId) -> f64 {
        let d = self.domain_size();
        if d <= 0.0 {
            return 0.0;
        }
        (self.est_sq_items(cond, source) / d).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal hand-rolled model to exercise the provided methods.
    struct Uniform {
        m: usize,
        n: usize,
        per_source: f64,
        domain: f64,
    }

    impl CostModel for Uniform {
        fn n_conditions(&self) -> usize {
            self.m
        }
        fn n_sources(&self) -> usize {
            self.n
        }
        fn sq_cost(&self, _: CondId, _: SourceId) -> Cost {
            Cost::new(1.0)
        }
        fn sjq_cost(&self, _: CondId, _: SourceId, est: f64) -> Cost {
            Cost::new(0.5 + 0.01 * est)
        }
        fn lq_cost(&self, _: SourceId) -> Cost {
            Cost::new(10.0)
        }
        fn est_sq_items(&self, _: CondId, _: SourceId) -> f64 {
            self.per_source
        }
        fn domain_size(&self) -> f64 {
            self.domain
        }
    }

    #[test]
    fn union_and_gsel_account_for_overlap() {
        let m = Uniform {
            m: 2,
            n: 2,
            per_source: 50.0,
            domain: 100.0,
        };
        assert!((m.est_condition_union(CondId(0)) - 75.0).abs() < 1e-9);
        assert!((m.gsel(CondId(0)) - 0.75).abs() < 1e-9);
        assert!((m.source_sel(CondId(0), SourceId(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_domain_yields_zero_selectivity() {
        let m = Uniform {
            m: 1,
            n: 1,
            per_source: 5.0,
            domain: 0.0,
        };
        assert_eq!(m.gsel(CondId(0)), 0.0);
        assert_eq!(m.source_sel(CondId(0), SourceId(0)), 0.0);
    }
}
