//! A cost model recalibrated by observed cardinalities.
//!
//! [`FeedbackCostModel`] wraps any [`CostModel`] and overrides
//! `est_sq_items` wherever the executor has observed the true value
//! (an exact selection count or a sampled semijoin selectivity,
//! [`fusion_stats::CardinalityFeedback`]). Because `est_condition_union`,
//! `gsel`, and `source_sel` are derived from `est_sq_items` by the trait's
//! default methods, every downstream estimate the optimizers consume is
//! consistently recalibrated by overriding this single point. Costs
//! (`sq_cost`/`sjq_cost`/`lq_cost`) pass through untouched: observing a
//! cardinality says nothing new about a source's pricing function.

use super::CostModel;
use fusion_stats::CardinalityFeedback;
use fusion_types::{CondId, Cost, SourceId};

/// A [`CostModel`] whose cardinality estimates defer to runtime
/// observations where available.
#[derive(Debug, Clone)]
pub struct FeedbackCostModel<'a, M: CostModel> {
    inner: &'a M,
    feedback: &'a CardinalityFeedback,
}

impl<'a, M: CostModel> FeedbackCostModel<'a, M> {
    /// Wraps `inner`, overriding cells `feedback` has observed.
    ///
    /// # Panics
    /// If the feedback table's shape does not match the model's.
    pub fn new(inner: &'a M, feedback: &'a CardinalityFeedback) -> FeedbackCostModel<'a, M> {
        assert!(
            feedback.n_conditions() == inner.n_conditions()
                && feedback.n_sources() == inner.n_sources(),
            "feedback shape {}×{} does not match model {}×{}",
            feedback.n_conditions(),
            feedback.n_sources(),
            inner.n_conditions(),
            inner.n_sources(),
        );
        FeedbackCostModel { inner, feedback }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        self.inner
    }
}

impl<M: CostModel> CostModel for FeedbackCostModel<'_, M> {
    fn n_conditions(&self) -> usize {
        self.inner.n_conditions()
    }

    fn n_sources(&self) -> usize {
        self.inner.n_sources()
    }

    fn sq_cost(&self, cond: CondId, source: SourceId) -> Cost {
        self.inner.sq_cost(cond, source)
    }

    fn sjq_cost(&self, cond: CondId, source: SourceId, est_items: f64) -> Cost {
        self.inner.sjq_cost(cond, source, est_items)
    }

    fn sjq_bloom_cost(&self, cond: CondId, source: SourceId, est_items: f64, bits: u8) -> Cost {
        self.inner.sjq_bloom_cost(cond, source, est_items, bits)
    }

    fn lq_cost(&self, source: SourceId) -> Cost {
        self.inner.lq_cost(source)
    }

    fn est_sq_items(&self, cond: CondId, source: SourceId) -> f64 {
        self.feedback
            .est_items(cond, source, self.inner.domain_size())
            .unwrap_or_else(|| self.inner.est_sq_items(cond, source))
    }

    fn domain_size(&self) -> f64 {
        self.inner.domain_size()
    }
}

#[cfg(test)]
mod tests {
    use super::super::TableCostModel;
    use super::*;

    #[test]
    fn observed_cells_override_estimates_and_derivations_follow() {
        let mut base = TableCostModel::uniform(2, 2, 5.0, 1.0, 0.5, 100.0, 50.0, 100.0);
        base.set_est_sq_items(CondId(0), SourceId(0), 50.0);
        base.set_est_sq_items(CondId(0), SourceId(1), 50.0);
        let mut fb = CardinalityFeedback::new(2, 2);
        fb.record_exact(CondId(0), SourceId(0), 10.0);
        fb.record_semijoin(CondId(0), SourceId(1), 1.0, 5.0); // sel 0.2 → 20 items
        let m = FeedbackCostModel::new(&base, &fb);
        assert_eq!(m.est_sq_items(CondId(0), SourceId(0)), 10.0);
        assert_eq!(m.est_sq_items(CondId(0), SourceId(1)), 20.0);
        // Unobserved cells keep the static estimate.
        assert_eq!(m.est_sq_items(CondId(1), SourceId(0)), 50.0);
        // Derived quantities use the overridden cells: the union estimate
        // must now be strictly below the static model's.
        assert!(m.est_condition_union(CondId(0)) < base.est_condition_union(CondId(0)));
        assert!(m.gsel(CondId(0)) < base.gsel(CondId(0)));
        // Costs pass through untouched.
        assert_eq!(
            m.sq_cost(CondId(0), SourceId(0)),
            base.sq_cost(CondId(0), SourceId(0))
        );
        assert_eq!(
            m.sjq_cost(CondId(0), SourceId(1), 7.0),
            base.sjq_cost(CondId(0), SourceId(1), 7.0)
        );
    }

    #[test]
    #[should_panic(expected = "does not match model")]
    fn shape_mismatch_is_rejected() {
        let base = TableCostModel::uniform(2, 2, 1.0, 1.0, 0.1, 10.0, 1.0, 10.0);
        let fb = CardinalityFeedback::new(3, 2);
        let _ = FeedbackCostModel::new(&base, &fb);
    }
}
