//! A cost model derived from source statistics, capabilities, and link
//! parameters — the model an actual mediator would run with.

use super::CostModel;
use crate::query::FusionQuery;
use fusion_net::message::ENVELOPE_BYTES;
use fusion_net::{MessageSize, Network};
use fusion_source::{Capabilities, ProcessingProfile, SourceSet};
use fusion_stats::estimate_selectivity;
use fusion_types::{CondId, Cost, Predicate, SourceId};

/// Per-source data the model snapshots at construction time.
#[derive(Debug, Clone)]
struct SourceProfile {
    link: fusion_net::Link,
    caps: Capabilities,
    proc: ProcessingProfile,
    rows: f64,
    avg_item_bytes: f64,
    avg_tuple_bytes: f64,
}

/// Estimates query costs the way a real mediator would: from per-source
/// statistics (selectivity × cardinality), per-source capabilities (§2.3
/// semijoin emulation pricing), and per-source link parameters (§2.4
/// communication pricing).
#[derive(Debug, Clone)]
pub struct NetworkCostModel {
    m: usize,
    sources: Vec<SourceProfile>,
    /// `est[i][j]`: estimated items returned by `sq(c_i, R_j)`.
    est: Vec<Vec<f64>>,
    /// Whether `c_i` is a single comparison an index can serve (affects
    /// the estimated tuples examined at the source).
    index_served: Vec<bool>,
    /// Request bytes of `sq(c_i, ·)`.
    cond_wire: Vec<usize>,
    domain: f64,
}

impl NetworkCostModel {
    /// Builds the model from the live sources, the network, and the query.
    ///
    /// `domain_hint` is the number of distinct items across all sources if
    /// known (e.g. from a catalog); otherwise the model uses the sum of
    /// per-source distinct counts — an upper bound that is exact for
    /// disjoint sources.
    pub fn new(
        sources: &SourceSet,
        network: &Network,
        query: &FusionQuery,
        domain_hint: Option<f64>,
    ) -> NetworkCostModel {
        let m = query.m();
        let mut profiles = Vec::with_capacity(sources.len());
        let mut est = vec![Vec::with_capacity(sources.len()); m];
        for (id, w) in sources.iter() {
            let stats = w.stats();
            profiles.push(SourceProfile {
                link: *network.link(id),
                caps: *w.capabilities(),
                proc: *w.processing(),
                rows: stats.rows as f64,
                avg_item_bytes: stats.avg_item_bytes,
                avg_tuple_bytes: stats.avg_tuple_bytes,
            });
            for (i, cond) in query.conditions().iter().enumerate() {
                let sel = estimate_selectivity(&cond.pred, stats);
                // Result cardinality: qualifying tuples, capped by the
                // distinct items of the source.
                let items = (sel * stats.rows as f64).min(stats.distinct_items as f64);
                est[i].push(items);
            }
        }
        let domain = domain_hint.unwrap_or_else(|| {
            sources
                .iter()
                .map(|(_, w)| w.stats().distinct_items as f64)
                .sum()
        });
        let index_served = query
            .conditions()
            .iter()
            .map(|c| matches!(c.pred, Predicate::Cmp { .. }))
            .collect();
        let cond_wire = query
            .conditions()
            .iter()
            .map(MessageSize::sq_request)
            .collect();
        NetworkCostModel {
            m,
            sources: profiles,
            est,
            index_served,
            cond_wire,
            domain,
        }
    }

    fn profile(&self, source: SourceId) -> &SourceProfile {
        &self.sources[source.0]
    }

    /// The capability record the model snapshotted for `source`.
    pub fn source_capabilities(&self, source: SourceId) -> &Capabilities {
        &self.profile(source).caps
    }

    /// Prices a phase-two fetch assignment at `source`: `k` surviving
    /// M-values shipped in `⌈k / fetch_batch⌉` round trips, each paying
    /// its own envelope, overhead, latency, and per-query fee. The
    /// response ships `attrs + 1` of the schema's `arity` values per
    /// record when the source accepts projection lists, full tuples
    /// otherwise. `Cost::INFINITE` when the source cannot serve record
    /// fetches at all.
    pub fn fetch_cost(&self, source: SourceId, k: usize, attrs: usize, arity: usize) -> Cost {
        let p = self.profile(source);
        if !p.caps.record_fetch {
            return Cost::INFINITE;
        }
        if k == 0 {
            return Cost::ZERO;
        }
        let batches = p.caps.fetch_batches_for(k) as f64;
        let per_value = p.avg_tuple_bytes / arity.max(1) as f64;
        let resp_per_record = if p.caps.projection {
            per_value * (attrs + 1) as f64
        } else {
            p.avg_tuple_bytes
        };
        let req = batches * ENVELOPE_BYTES as f64 + k as f64 * p.avg_item_bytes;
        let resp = batches * ENVELOPE_BYTES as f64 + k as f64 * resp_per_record;
        let comm =
            batches * (p.link.overhead + 2.0 * p.link.latency) + (req + resp) / p.link.bandwidth;
        // Each M-value is probed against the source's merge index, and
        // each matching record is shipped back.
        let work = batches * p.proc.fixed
            + p.proc.per_tuple_examined * k as f64
            + p.proc.per_item_returned * k as f64;
        Cost::new(comm + work + batches * p.caps.query_fee())
    }

    /// Admissible per-(item, attribute) floor of any phase-two fetch at
    /// `source`: the transfer time of one attribute value alone, with
    /// every fixed per-exchange cost (envelope, latency, fee, source
    /// work) dropped. Any feasible assignment that covers the pair at
    /// this source pays at least this much, so summing the per-pair
    /// minimum over sources lower-bounds every covering plan.
    pub fn fetch_attr_floor(&self, source: SourceId, arity: usize) -> f64 {
        let p = self.profile(source);
        if !p.caps.record_fetch {
            return f64::INFINITY;
        }
        (p.avg_tuple_bytes / arity.max(1) as f64) / p.link.bandwidth
    }

    /// Estimated tuples a source examines to answer `sq(c_i, ·)`.
    fn est_examined(&self, cond: CondId, source: SourceId) -> f64 {
        if self.index_served[cond.0] {
            self.est[cond.0][source.0]
        } else {
            self.profile(source).rows
        }
    }
}

impl CostModel for NetworkCostModel {
    fn n_conditions(&self) -> usize {
        self.m
    }

    fn n_sources(&self) -> usize {
        self.sources.len()
    }

    fn sq_cost(&self, cond: CondId, source: SourceId) -> Cost {
        let p = self.profile(source);
        let returned = self.est[cond.0][source.0];
        let req = self.cond_wire[cond.0] as f64;
        let resp = MessageSize::items_response_estimated(returned, p.avg_item_bytes);
        let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
        let work = p
            .proc
            .cost(self.est_examined(cond, source) as usize, returned as usize);
        Cost::new(comm + work + p.caps.query_fee())
    }

    fn sjq_cost(&self, cond: CondId, source: SourceId, est_items: f64) -> Cost {
        let p = self.profile(source);
        let k = est_items.max(0.0);
        if k == 0.0 {
            // The executor short-circuits a semijoin over ∅ to a free
            // local no-op (no round trip); price it the same way.
            return Cost::ZERO;
        }
        let hit = self.source_sel(cond, source);
        let returned = k * hit;
        if p.caps.native_semijoin {
            let req = self.cond_wire[cond.0] as f64 + k * p.avg_item_bytes;
            let resp = MessageSize::items_response_estimated(returned, p.avg_item_bytes);
            let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
            // Each binding is probed against the source's merge index.
            let work = p.proc.cost(k as usize, returned as usize);
            return Cost::new(comm + work + p.caps.query_fee());
        }
        if !p.caps.passed_bindings {
            return Cost::INFINITE;
        }
        // Emulation (§2.3): ⌈k / batch⌉ selection round trips, each with
        // its own envelope, condition text, overhead, and latency.
        let batch = p.caps.binding_batch.max(1) as f64;
        let probes = (k / batch).ceil().max(if k > 0.0 { 1.0 } else { 0.0 });
        let req = probes * self.cond_wire[cond.0] as f64 + k * p.avg_item_bytes;
        let resp = probes * ENVELOPE_BYTES as f64 + returned * p.avg_item_bytes;
        let comm =
            probes * (p.link.overhead + 2.0 * p.link.latency) + (req + resp) / p.link.bandwidth;
        let work = probes * p.proc.fixed
            + p.proc.per_tuple_examined * k
            + p.proc.per_item_returned * returned;
        // A paid tier charges per round trip: emulation multiplies the
        // fee by the probe count, which is what shifts SJA away from
        // per-binding emulation at paid sources.
        Cost::new(comm + work + probes * p.caps.query_fee())
    }

    fn sjq_bloom_cost(&self, cond: CondId, source: SourceId, est_items: f64, bits: u8) -> Cost {
        let p = self.profile(source);
        if !p.caps.bloom_semijoin {
            return Cost::INFINITE;
        }
        let k = est_items.max(0.0);
        // Filter bytes: k·bits/8 plus a small header.
        let filter_bytes = 8.0 + (k * bits as f64 / 8.0).max(8.0);
        let req = self.cond_wire[cond.0] as f64 + filter_bytes;
        // The source returns the true matches plus false positives among
        // the rest of its qualifying items.
        let true_matches = k * self.source_sel(cond, source);
        let fpr = fusion_types::bloom::expected_fpr_for_bits(bits as f64);
        let returned = true_matches + fpr * (self.est[cond.0][source.0] - true_matches).max(0.0);
        let resp = MessageSize::items_response_estimated(returned, p.avg_item_bytes);
        let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
        // The source evaluates the condition, then filters each
        // qualifying item through the Bloom filter.
        let work = p
            .proc
            .cost(self.est_examined(cond, source) as usize, returned as usize);
        Cost::new(comm + work + p.caps.query_fee())
    }

    fn lq_cost(&self, source: SourceId) -> Cost {
        let p = self.profile(source);
        if !p.caps.full_load {
            return Cost::INFINITE;
        }
        let req = MessageSize::lq_request() as f64;
        let resp = ENVELOPE_BYTES as f64 + p.rows * p.avg_tuple_bytes;
        let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
        let work = p.proc.cost(p.rows as usize, p.rows as usize);
        Cost::new(comm + work + p.caps.query_fee())
    }

    fn est_sq_items(&self, cond: CondId, source: SourceId) -> f64 {
        self.est[cond.0][source.0]
    }

    fn domain_size(&self) -> f64 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_net::LinkProfile;
    use fusion_source::InMemoryWrapper;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Relation};

    fn mk_sources(caps2: Capabilities) -> SourceSet {
        let s = dmv_schema();
        let mk_rows = |offset: usize| -> Vec<fusion_types::Tuple> {
            (0..200)
                .map(|i| {
                    tuple![
                        format!("L{:04}", i + offset),
                        if i % 10 == 0 { "dui" } else { "sp" },
                        (1990 + (i % 10)) as i64
                    ]
                })
                .collect()
        };
        SourceSet::new(vec![
            Box::new(InMemoryWrapper::new(
                "R1",
                Relation::from_rows(s.clone(), mk_rows(0)),
                Capabilities::full(),
                ProcessingProfile::indexed_db(),
                1,
            )),
            Box::new(InMemoryWrapper::new(
                "R2",
                Relation::from_rows(s, mk_rows(100)),
                caps2,
                ProcessingProfile::indexed_db(),
                2,
            )),
        ])
    }

    fn mk_query() -> FusionQuery {
        FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
            ],
        )
        .unwrap()
    }

    fn mk_model(caps2: Capabilities) -> NetworkCostModel {
        let sources = mk_sources(caps2);
        let network = Network::uniform(2, LinkProfile::Wan.link());
        NetworkCostModel::new(&sources, &network, &mk_query(), None)
    }

    #[test]
    fn selective_condition_costs_less_to_ship() {
        let m = mk_model(Capabilities::full());
        // c1 (dui, 10%) returns fewer items than c2 (sp, 90%).
        let c_dui = m.sq_cost(CondId(0), SourceId(0));
        let c_sp = m.sq_cost(CondId(1), SourceId(0));
        assert!(c_dui < c_sp, "dui={c_dui} sp={c_sp}");
        assert!(m.est_sq_items(CondId(0), SourceId(0)) < m.est_sq_items(CondId(1), SourceId(0)));
    }

    #[test]
    fn small_semijoin_beats_selection_large_loses() {
        let m = mk_model(Capabilities::full());
        // Shipping 2 bindings for 'sp' is cheaper than fetching ~180 items.
        let sj_small = m.sjq_cost(CondId(1), SourceId(0), 2.0);
        let sel = m.sq_cost(CondId(1), SourceId(0));
        assert!(sj_small < sel, "sj={sj_small} sel={sel}");
        // Shipping 10x the domain is worse than a plain selection.
        let sj_huge = m.sjq_cost(CondId(1), SourceId(0), 4000.0);
        assert!(sj_huge > sel);
    }

    #[test]
    fn emulated_semijoin_costs_more_than_native() {
        let native = mk_model(Capabilities::full());
        let emulated = mk_model(Capabilities::emulated(1));
        let k = 50.0;
        let c_native = native.sjq_cost(CondId(0), SourceId(1), k);
        let c_emulated = emulated.sjq_cost(CondId(0), SourceId(1), k);
        assert!(
            c_emulated > c_native * 5.0,
            "per-binding emulation should be much pricier: {c_emulated} vs {c_native}"
        );
        // Batched emulation sits in between.
        let batched = mk_model(Capabilities::emulated(25));
        let c_batched = batched.sjq_cost(CondId(0), SourceId(1), k);
        assert!(c_native < c_batched && c_batched < c_emulated);
    }

    #[test]
    fn unsupported_operations_are_infinite() {
        let m = mk_model(Capabilities::selection_only());
        assert!(m.sjq_cost(CondId(0), SourceId(1), 10.0).is_infinite());
        assert!(m.lq_cost(SourceId(1)).is_infinite());
        // Selections still work.
        assert!(m.sq_cost(CondId(0), SourceId(1)).is_finite());
    }

    #[test]
    fn sjq_cost_monotone_and_subadditive() {
        for caps in [Capabilities::full(), Capabilities::emulated(10)] {
            let m = mk_model(caps);
            let f = |k: f64| m.sjq_cost(CondId(0), SourceId(1), k);
            let mut prev = f(0.0);
            for k in [1.0, 5.0, 20.0, 100.0, 500.0] {
                let c = f(k);
                assert!(c >= prev, "monotonicity violated at {k}");
                prev = c;
            }
            for (x, y) in [(10.0, 20.0), (1.0, 1.0), (100.0, 300.0)] {
                assert!(
                    f(x + y) <= f(x) + f(y) + Cost::new(1e-9),
                    "sub-additivity violated at {x}+{y}"
                );
            }
        }
    }

    #[test]
    fn lq_scales_with_source_size_and_domain_defaults_to_sum() {
        let m = mk_model(Capabilities::full());
        assert!(m.lq_cost(SourceId(0)).is_finite());
        // Two 200-row sources with distinct items: domain = 400.
        assert_eq!(m.domain_size(), 400.0);
    }

    #[test]
    fn zero_item_semijoin_costs_nothing_extra_under_emulation() {
        let m = mk_model(Capabilities::emulated(10));
        let c = m.sjq_cost(CondId(0), SourceId(1), 0.0);
        // No probes needed: communication cost is zero.
        assert_eq!(c, Cost::ZERO);
    }

    #[test]
    fn query_fee_is_charged_per_round_trip() {
        let free = mk_model(Capabilities::full());
        let paid = mk_model(Capabilities::full().with_fee_millis(3000));
        let j = SourceId(1);
        let dc = paid.sq_cost(CondId(0), j).value() - free.sq_cost(CondId(0), j).value();
        assert!((dc - 3.0).abs() < 1e-9, "sq fee delta {dc}");
        let dn =
            paid.sjq_cost(CondId(0), j, 20.0).value() - free.sjq_cost(CondId(0), j, 20.0).value();
        assert!((dn - 3.0).abs() < 1e-9, "native sjq fee delta {dn}");
        let dl = paid.lq_cost(j).value() - free.lq_cost(j).value();
        assert!((dl - 3.0).abs() < 1e-9, "lq fee delta {dl}");
        // Emulation pays the fee once per probe: 20 bindings at batch 5
        // are 4 probes.
        let free_e = mk_model(Capabilities::emulated(5));
        let paid_e = mk_model(Capabilities::emulated(5).with_fee_millis(3000));
        let de = paid_e.sjq_cost(CondId(0), j, 20.0).value()
            - free_e.sjq_cost(CondId(0), j, 20.0).value();
        assert!((de - 12.0).abs() < 1e-9, "emulated fee delta {de}");
    }

    #[test]
    fn fetch_cost_batches_and_projects() {
        let m = mk_model(Capabilities::full());
        let j = SourceId(1);
        assert_eq!(m.fetch_cost(j, 0, 2, 3), Cost::ZERO);
        // More items cost more; a projection of fewer attributes costs
        // less than the full tuple.
        let narrow = m.fetch_cost(j, 50, 1, 3);
        let wide = m.fetch_cost(j, 50, 2, 3);
        assert!(narrow < wide, "narrow={narrow} wide={wide}");
        assert!(m.fetch_cost(j, 10, 2, 3) < m.fetch_cost(j, 50, 2, 3));
        // A bounded batch splits into extra round trips and costs more.
        let bounded = mk_model(Capabilities::full().with_fetch_batch(10));
        assert!(bounded.fetch_cost(j, 50, 2, 3) > m.fetch_cost(j, 50, 2, 3));
        // No fetch support prices at infinity; no projection support
        // prices the full tuple even for narrow requests.
        let none = mk_model(Capabilities::full().with_fetch(false));
        assert!(none.fetch_cost(j, 10, 2, 3).is_infinite());
        assert!(none.fetch_attr_floor(j, 3).is_infinite());
        let flat = mk_model(Capabilities::full().with_projection(false));
        assert_eq!(flat.fetch_cost(j, 50, 1, 3), flat.fetch_cost(j, 50, 2, 3));
    }

    #[test]
    fn fetch_attr_floor_is_admissible_against_fetch_cost() {
        for caps in [
            Capabilities::full(),
            Capabilities::full()
                .with_fetch_batch(7)
                .with_fee_millis(500),
            Capabilities::full().with_projection(false),
        ] {
            let m = mk_model(caps);
            let j = SourceId(1);
            for k in [1usize, 10, 50] {
                for attrs in [1usize, 2] {
                    let floor = m.fetch_attr_floor(j, 3) * (k * attrs) as f64;
                    let actual = m.fetch_cost(j, k, attrs, 3);
                    assert!(
                        floor <= actual.value() + 1e-12,
                        "floor {floor} exceeds cost {actual} at k={k} attrs={attrs}"
                    );
                }
            }
        }
    }
}
