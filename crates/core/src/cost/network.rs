//! A cost model derived from source statistics, capabilities, and link
//! parameters — the model an actual mediator would run with.

use super::CostModel;
use crate::query::FusionQuery;
use fusion_net::message::ENVELOPE_BYTES;
use fusion_net::{MessageSize, Network};
use fusion_source::{Capabilities, ProcessingProfile, SourceSet};
use fusion_stats::estimate_selectivity;
use fusion_types::{CondId, Cost, Predicate, SourceId};

/// Per-source data the model snapshots at construction time.
#[derive(Debug, Clone)]
struct SourceProfile {
    link: fusion_net::Link,
    caps: Capabilities,
    proc: ProcessingProfile,
    rows: f64,
    avg_item_bytes: f64,
    avg_tuple_bytes: f64,
}

/// Estimates query costs the way a real mediator would: from per-source
/// statistics (selectivity × cardinality), per-source capabilities (§2.3
/// semijoin emulation pricing), and per-source link parameters (§2.4
/// communication pricing).
#[derive(Debug, Clone)]
pub struct NetworkCostModel {
    m: usize,
    sources: Vec<SourceProfile>,
    /// `est[i][j]`: estimated items returned by `sq(c_i, R_j)`.
    est: Vec<Vec<f64>>,
    /// Whether `c_i` is a single comparison an index can serve (affects
    /// the estimated tuples examined at the source).
    index_served: Vec<bool>,
    /// Request bytes of `sq(c_i, ·)`.
    cond_wire: Vec<usize>,
    domain: f64,
}

impl NetworkCostModel {
    /// Builds the model from the live sources, the network, and the query.
    ///
    /// `domain_hint` is the number of distinct items across all sources if
    /// known (e.g. from a catalog); otherwise the model uses the sum of
    /// per-source distinct counts — an upper bound that is exact for
    /// disjoint sources.
    pub fn new(
        sources: &SourceSet,
        network: &Network,
        query: &FusionQuery,
        domain_hint: Option<f64>,
    ) -> NetworkCostModel {
        let m = query.m();
        let mut profiles = Vec::with_capacity(sources.len());
        let mut est = vec![Vec::with_capacity(sources.len()); m];
        for (id, w) in sources.iter() {
            let stats = w.stats();
            profiles.push(SourceProfile {
                link: *network.link(id),
                caps: *w.capabilities(),
                proc: *w.processing(),
                rows: stats.rows as f64,
                avg_item_bytes: stats.avg_item_bytes,
                avg_tuple_bytes: stats.avg_tuple_bytes,
            });
            for (i, cond) in query.conditions().iter().enumerate() {
                let sel = estimate_selectivity(&cond.pred, stats);
                // Result cardinality: qualifying tuples, capped by the
                // distinct items of the source.
                let items = (sel * stats.rows as f64).min(stats.distinct_items as f64);
                est[i].push(items);
            }
        }
        let domain = domain_hint.unwrap_or_else(|| {
            sources
                .iter()
                .map(|(_, w)| w.stats().distinct_items as f64)
                .sum()
        });
        let index_served = query
            .conditions()
            .iter()
            .map(|c| matches!(c.pred, Predicate::Cmp { .. }))
            .collect();
        let cond_wire = query
            .conditions()
            .iter()
            .map(MessageSize::sq_request)
            .collect();
        NetworkCostModel {
            m,
            sources: profiles,
            est,
            index_served,
            cond_wire,
            domain,
        }
    }

    fn profile(&self, source: SourceId) -> &SourceProfile {
        &self.sources[source.0]
    }

    /// Estimated tuples a source examines to answer `sq(c_i, ·)`.
    fn est_examined(&self, cond: CondId, source: SourceId) -> f64 {
        if self.index_served[cond.0] {
            self.est[cond.0][source.0]
        } else {
            self.profile(source).rows
        }
    }
}

impl CostModel for NetworkCostModel {
    fn n_conditions(&self) -> usize {
        self.m
    }

    fn n_sources(&self) -> usize {
        self.sources.len()
    }

    fn sq_cost(&self, cond: CondId, source: SourceId) -> Cost {
        let p = self.profile(source);
        let returned = self.est[cond.0][source.0];
        let req = self.cond_wire[cond.0] as f64;
        let resp = MessageSize::items_response_estimated(returned, p.avg_item_bytes);
        let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
        let work = p
            .proc
            .cost(self.est_examined(cond, source) as usize, returned as usize);
        Cost::new(comm + work)
    }

    fn sjq_cost(&self, cond: CondId, source: SourceId, est_items: f64) -> Cost {
        let p = self.profile(source);
        let k = est_items.max(0.0);
        if k == 0.0 {
            // The executor short-circuits a semijoin over ∅ to a free
            // local no-op (no round trip); price it the same way.
            return Cost::ZERO;
        }
        let hit = self.source_sel(cond, source);
        let returned = k * hit;
        if p.caps.native_semijoin {
            let req = self.cond_wire[cond.0] as f64 + k * p.avg_item_bytes;
            let resp = MessageSize::items_response_estimated(returned, p.avg_item_bytes);
            let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
            // Each binding is probed against the source's merge index.
            let work = p.proc.cost(k as usize, returned as usize);
            return Cost::new(comm + work);
        }
        if !p.caps.passed_bindings {
            return Cost::INFINITE;
        }
        // Emulation (§2.3): ⌈k / batch⌉ selection round trips, each with
        // its own envelope, condition text, overhead, and latency.
        let batch = p.caps.binding_batch.max(1) as f64;
        let probes = (k / batch).ceil().max(if k > 0.0 { 1.0 } else { 0.0 });
        let req = probes * self.cond_wire[cond.0] as f64 + k * p.avg_item_bytes;
        let resp = probes * ENVELOPE_BYTES as f64 + returned * p.avg_item_bytes;
        let comm =
            probes * (p.link.overhead + 2.0 * p.link.latency) + (req + resp) / p.link.bandwidth;
        let work = probes * p.proc.fixed
            + p.proc.per_tuple_examined * k
            + p.proc.per_item_returned * returned;
        Cost::new(comm + work)
    }

    fn sjq_bloom_cost(&self, cond: CondId, source: SourceId, est_items: f64, bits: u8) -> Cost {
        let p = self.profile(source);
        if !p.caps.bloom_semijoin {
            return Cost::INFINITE;
        }
        let k = est_items.max(0.0);
        // Filter bytes: k·bits/8 plus a small header.
        let filter_bytes = 8.0 + (k * bits as f64 / 8.0).max(8.0);
        let req = self.cond_wire[cond.0] as f64 + filter_bytes;
        // The source returns the true matches plus false positives among
        // the rest of its qualifying items.
        let true_matches = k * self.source_sel(cond, source);
        let fpr = fusion_types::bloom::expected_fpr_for_bits(bits as f64);
        let returned = true_matches + fpr * (self.est[cond.0][source.0] - true_matches).max(0.0);
        let resp = MessageSize::items_response_estimated(returned, p.avg_item_bytes);
        let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
        // The source evaluates the condition, then filters each
        // qualifying item through the Bloom filter.
        let work = p
            .proc
            .cost(self.est_examined(cond, source) as usize, returned as usize);
        Cost::new(comm + work)
    }

    fn lq_cost(&self, source: SourceId) -> Cost {
        let p = self.profile(source);
        if !p.caps.full_load {
            return Cost::INFINITE;
        }
        let req = MessageSize::lq_request() as f64;
        let resp = ENVELOPE_BYTES as f64 + p.rows * p.avg_tuple_bytes;
        let comm = p.link.overhead + 2.0 * p.link.latency + (req + resp) / p.link.bandwidth;
        let work = p.proc.cost(p.rows as usize, p.rows as usize);
        Cost::new(comm + work)
    }

    fn est_sq_items(&self, cond: CondId, source: SourceId) -> f64 {
        self.est[cond.0][source.0]
    }

    fn domain_size(&self) -> f64 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_net::LinkProfile;
    use fusion_source::InMemoryWrapper;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Relation};

    fn mk_sources(caps2: Capabilities) -> SourceSet {
        let s = dmv_schema();
        let mk_rows = |offset: usize| -> Vec<fusion_types::Tuple> {
            (0..200)
                .map(|i| {
                    tuple![
                        format!("L{:04}", i + offset),
                        if i % 10 == 0 { "dui" } else { "sp" },
                        (1990 + (i % 10)) as i64
                    ]
                })
                .collect()
        };
        SourceSet::new(vec![
            Box::new(InMemoryWrapper::new(
                "R1",
                Relation::from_rows(s.clone(), mk_rows(0)),
                Capabilities::full(),
                ProcessingProfile::indexed_db(),
                1,
            )),
            Box::new(InMemoryWrapper::new(
                "R2",
                Relation::from_rows(s, mk_rows(100)),
                caps2,
                ProcessingProfile::indexed_db(),
                2,
            )),
        ])
    }

    fn mk_query() -> FusionQuery {
        FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
            ],
        )
        .unwrap()
    }

    fn mk_model(caps2: Capabilities) -> NetworkCostModel {
        let sources = mk_sources(caps2);
        let network = Network::uniform(2, LinkProfile::Wan.link());
        NetworkCostModel::new(&sources, &network, &mk_query(), None)
    }

    #[test]
    fn selective_condition_costs_less_to_ship() {
        let m = mk_model(Capabilities::full());
        // c1 (dui, 10%) returns fewer items than c2 (sp, 90%).
        let c_dui = m.sq_cost(CondId(0), SourceId(0));
        let c_sp = m.sq_cost(CondId(1), SourceId(0));
        assert!(c_dui < c_sp, "dui={c_dui} sp={c_sp}");
        assert!(m.est_sq_items(CondId(0), SourceId(0)) < m.est_sq_items(CondId(1), SourceId(0)));
    }

    #[test]
    fn small_semijoin_beats_selection_large_loses() {
        let m = mk_model(Capabilities::full());
        // Shipping 2 bindings for 'sp' is cheaper than fetching ~180 items.
        let sj_small = m.sjq_cost(CondId(1), SourceId(0), 2.0);
        let sel = m.sq_cost(CondId(1), SourceId(0));
        assert!(sj_small < sel, "sj={sj_small} sel={sel}");
        // Shipping 10x the domain is worse than a plain selection.
        let sj_huge = m.sjq_cost(CondId(1), SourceId(0), 4000.0);
        assert!(sj_huge > sel);
    }

    #[test]
    fn emulated_semijoin_costs_more_than_native() {
        let native = mk_model(Capabilities::full());
        let emulated = mk_model(Capabilities::emulated(1));
        let k = 50.0;
        let c_native = native.sjq_cost(CondId(0), SourceId(1), k);
        let c_emulated = emulated.sjq_cost(CondId(0), SourceId(1), k);
        assert!(
            c_emulated > c_native * 5.0,
            "per-binding emulation should be much pricier: {c_emulated} vs {c_native}"
        );
        // Batched emulation sits in between.
        let batched = mk_model(Capabilities::emulated(25));
        let c_batched = batched.sjq_cost(CondId(0), SourceId(1), k);
        assert!(c_native < c_batched && c_batched < c_emulated);
    }

    #[test]
    fn unsupported_operations_are_infinite() {
        let m = mk_model(Capabilities::selection_only());
        assert!(m.sjq_cost(CondId(0), SourceId(1), 10.0).is_infinite());
        assert!(m.lq_cost(SourceId(1)).is_infinite());
        // Selections still work.
        assert!(m.sq_cost(CondId(0), SourceId(1)).is_finite());
    }

    #[test]
    fn sjq_cost_monotone_and_subadditive() {
        for caps in [Capabilities::full(), Capabilities::emulated(10)] {
            let m = mk_model(caps);
            let f = |k: f64| m.sjq_cost(CondId(0), SourceId(1), k);
            let mut prev = f(0.0);
            for k in [1.0, 5.0, 20.0, 100.0, 500.0] {
                let c = f(k);
                assert!(c >= prev, "monotonicity violated at {k}");
                prev = c;
            }
            for (x, y) in [(10.0, 20.0), (1.0, 1.0), (100.0, 300.0)] {
                assert!(
                    f(x + y) <= f(x) + f(y) + Cost::new(1e-9),
                    "sub-additivity violated at {x}+{y}"
                );
            }
        }
    }

    #[test]
    fn lq_scales_with_source_size_and_domain_defaults_to_sum() {
        let m = mk_model(Capabilities::full());
        assert!(m.lq_cost(SourceId(0)).is_finite());
        // Two 200-row sources with distinct items: domain = 400.
        assert_eq!(m.domain_size(), 400.0);
    }

    #[test]
    fn zero_item_semijoin_costs_nothing_extra_under_emulation() {
        let m = mk_model(Capabilities::emulated(10));
        let c = m.sjq_cost(CondId(0), SourceId(1), 0.0);
        // No probes needed: communication cost is zero.
        assert_eq!(c, Cost::ZERO);
    }
}
