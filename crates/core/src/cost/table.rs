//! An explicit, fully programmable cost model.

use super::CostModel;
use fusion_types::{CondId, Cost, SourceId};

/// A cost model given by explicit per-(condition, source) tables.
///
/// Selection costs are constants; semijoin costs are affine in the
/// estimated semijoin-set size (`base + per_item · |X|`), which satisfies
/// both sub-additivity and monotonicity. Used to stage the paper's worked
/// examples exactly and to drive property tests with arbitrary models.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCostModel {
    sq: Vec<Vec<f64>>,
    sjq_base: Vec<Vec<f64>>,
    sjq_per_item: Vec<Vec<f64>>,
    lq: Vec<f64>,
    est_sq: Vec<Vec<f64>>,
    domain: f64,
}

impl TableCostModel {
    /// Creates a uniform model: every selection costs `sq`, every semijoin
    /// `sjq_base + sjq_per_item·|X|`, every load `lq`, with each
    /// `sq(c, R)` estimated to return `est_items` out of `domain`.
    #[allow(clippy::too_many_arguments)] // a constructor of eight named scalars
    pub fn uniform(
        m: usize,
        n: usize,
        sq: f64,
        sjq_base: f64,
        sjq_per_item: f64,
        lq: f64,
        est_items: f64,
        domain: f64,
    ) -> TableCostModel {
        TableCostModel {
            sq: vec![vec![sq; n]; m],
            sjq_base: vec![vec![sjq_base; n]; m],
            sjq_per_item: vec![vec![sjq_per_item; n]; m],
            lq: vec![lq; n],
            est_sq: vec![vec![est_items; n]; m],
            domain,
        }
    }

    /// Sets the cost of one selection query.
    pub fn set_sq_cost(&mut self, cond: CondId, source: SourceId, cost: f64) -> &mut Self {
        self.sq[cond.0][source.0] = cost;
        self
    }

    /// Sets the affine semijoin cost of one (condition, source) pair.
    /// Pass `f64::INFINITY` as `base` for an unsupported semijoin (§2.3).
    pub fn set_sjq_cost(
        &mut self,
        cond: CondId,
        source: SourceId,
        base: f64,
        per_item: f64,
    ) -> &mut Self {
        self.sjq_base[cond.0][source.0] = base;
        self.sjq_per_item[cond.0][source.0] = per_item;
        self
    }

    /// Sets the cost of loading one source.
    pub fn set_lq_cost(&mut self, source: SourceId, cost: f64) -> &mut Self {
        self.lq[source.0] = cost;
        self
    }

    /// Sets the estimated result size of one selection query.
    pub fn set_est_sq_items(&mut self, cond: CondId, source: SourceId, est: f64) -> &mut Self {
        self.est_sq[cond.0][source.0] = est;
        self
    }

    /// Sets the domain size.
    pub fn set_domain(&mut self, domain: f64) -> &mut Self {
        self.domain = domain;
        self
    }
}

impl CostModel for TableCostModel {
    fn n_conditions(&self) -> usize {
        self.sq.len()
    }

    fn n_sources(&self) -> usize {
        self.lq.len()
    }

    fn sq_cost(&self, cond: CondId, source: SourceId) -> Cost {
        Cost::new(self.sq[cond.0][source.0])
    }

    fn sjq_cost(&self, cond: CondId, source: SourceId, est_items: f64) -> Cost {
        let base = self.sjq_base[cond.0][source.0];
        if base.is_infinite() {
            return Cost::INFINITE;
        }
        Cost::new(base + self.sjq_per_item[cond.0][source.0] * est_items.max(0.0))
    }

    fn lq_cost(&self, source: SourceId) -> Cost {
        if self.lq[source.0].is_infinite() {
            Cost::INFINITE
        } else {
            Cost::new(self.lq[source.0])
        }
    }

    fn est_sq_items(&self, cond: CondId, source: SourceId) -> f64 {
        self.est_sq[cond.0][source.0]
    }

    fn domain_size(&self) -> f64 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_setters() {
        let mut m = TableCostModel::uniform(2, 3, 5.0, 1.0, 0.1, 100.0, 20.0, 200.0);
        assert_eq!(m.n_conditions(), 2);
        assert_eq!(m.n_sources(), 3);
        assert_eq!(m.sq_cost(CondId(0), SourceId(0)), Cost::new(5.0));
        assert_eq!(m.sjq_cost(CondId(1), SourceId(2), 10.0), Cost::new(2.0));
        assert_eq!(m.lq_cost(SourceId(1)), Cost::new(100.0));
        m.set_sq_cost(CondId(0), SourceId(1), 42.0)
            .set_sjq_cost(CondId(0), SourceId(1), 2.0, 0.5)
            .set_lq_cost(SourceId(0), 7.0)
            .set_est_sq_items(CondId(0), SourceId(1), 3.0)
            .set_domain(50.0);
        assert_eq!(m.sq_cost(CondId(0), SourceId(1)), Cost::new(42.0));
        assert_eq!(m.sjq_cost(CondId(0), SourceId(1), 4.0), Cost::new(4.0));
        assert_eq!(m.lq_cost(SourceId(0)), Cost::new(7.0));
        assert_eq!(m.est_sq_items(CondId(0), SourceId(1)), 3.0);
        assert_eq!(m.domain_size(), 50.0);
    }

    #[test]
    fn infinite_semijoin_marks_unsupported() {
        let mut m = TableCostModel::uniform(1, 1, 1.0, 1.0, 0.0, 1.0, 1.0, 10.0);
        m.set_sjq_cost(CondId(0), SourceId(0), f64::INFINITY, 0.0);
        assert!(m.sjq_cost(CondId(0), SourceId(0), 5.0).is_infinite());
        m.set_lq_cost(SourceId(0), f64::INFINITY);
        assert!(m.lq_cost(SourceId(0)).is_infinite());
    }

    #[test]
    fn sjq_cost_is_monotone_and_subadditive() {
        let m = TableCostModel::uniform(1, 1, 1.0, 2.0, 0.3, 1.0, 1.0, 10.0);
        let c = CondId(0);
        let s = SourceId(0);
        let f = |k: f64| m.sjq_cost(c, s, k);
        assert!(f(10.0) <= f(20.0));
        // Sub-additive: cost(x+y) <= cost(x) + cost(y) for affine + base.
        assert!(f(30.0) <= f(10.0) + f(20.0));
        // Negative estimates clamp to the base.
        assert_eq!(f(-5.0), Cost::new(2.0));
    }
}
