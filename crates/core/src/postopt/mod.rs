//! SJA+ postoptimization (§4).
//!
//! Two techniques that step outside the space of simple plans:
//!
//! 1. **Difference pruning** — within a condition's round, items already
//!    confirmed to satisfy the condition at one source "need not be sent
//!    ... to ascertain the satisfaction of condition `c_i`" at the next:
//!    each semijoin ships `X_{i-1} − confirmed` instead of `X_{i-1}`.
//!    We execute a round's selection queries first (their results cost
//!    nothing extra to use as pruners) and sequence the semijoin queries,
//!    each subtracting everything confirmed so far — a slight
//!    strengthening of the paper's example, which prunes with whatever
//!    happens to precede the semijoin in the listing.
//! 2. **Source loading** — when the total cost of a source's queries
//!    exceeds one `lq`, "the mediator may consider issuing a single query
//!    to load the entire source contents", answering its queries locally;
//!    "advantageous in fusion queries involving extremely small source
//!    databases or large number of conditions".
//!
//! The driver `sja_plus` mimics SJA first and postoptimizes its output,
//! keeping the overall complexity at `O(m!·m·n + m·n)` — the
//! postoptimization itself is `O(mn)`. A systematic search over plans
//! with difference operations would be exponential in `n`, which is
//! exactly why the paper postoptimizes instead.

use crate::cost::CostModel;
use crate::estimate::estimate_plan_cost;
use crate::optimizer::{sja_optimal, OptimizedPlan};
use crate::plan::{Plan, SimplePlanSpec, SourceChoice, Step, VarId};
use fusion_types::{Cost, SourceId};

/// Which postoptimizations to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostOptConfig {
    /// Apply difference pruning to semijoin sets.
    pub use_difference: bool,
    /// Consider replacing a source's queries with one full load.
    pub use_loading: bool,
    /// Consider replacing explicit semijoin sets with Bloom filters
    /// (extension; off by default — not part of the paper's SJA+).
    pub use_bloom: bool,
    /// Filter density for Bloom rewrites, in bits per item.
    pub bloom_bits: u8,
}

impl Default for PostOptConfig {
    /// The paper's SJA+ (§4.1): difference pruning and source loading,
    /// no Bloom rewriting.
    fn default() -> Self {
        PostOptConfig {
            use_difference: true,
            use_loading: true,
            use_bloom: false,
            bloom_bits: 10,
        }
    }
}

/// The result of SJA+ optimization.
#[derive(Debug, Clone)]
pub struct SjaPlusPlan {
    /// The postoptimized (possibly extended) plan.
    pub plan: Plan,
    /// Its estimated cost.
    pub cost: Cost,
    /// The SJA plan postoptimization started from.
    pub base: OptimizedPlan,
    /// The base plan's cost under the same pricing as [`SjaPlusPlan::cost`]
    /// (the plan walker), for apples-to-apples improvement reporting.
    pub base_estimate: Cost,
    /// Sources whose queries were replaced by a full load.
    pub loaded_sources: Vec<SourceId>,
    /// Number of set-difference steps introduced.
    pub difference_steps: usize,
}

impl SjaPlusPlan {
    /// Estimated improvement over the base SJA plan, as a fraction of the
    /// base cost (0 when postoptimization found nothing).
    pub fn improvement(&self) -> f64 {
        match self.base_estimate.ratio(self.cost) {
            Some(r) if r.is_finite() && r > 0.0 => 1.0 - 1.0 / r,
            _ => 0.0,
        }
    }
}

/// The SJA+ algorithm (§4.1): optimal semijoin-adaptive plan, then
/// difference pruning, then source loading.
pub fn sja_plus<M: CostModel>(model: &M) -> SjaPlusPlan {
    sja_plus_with(model, PostOptConfig::default())
}

/// SJA+ with explicit technique selection (used by the ablation bench).
pub fn sja_plus_with<M: CostModel>(model: &M, config: PostOptConfig) -> SjaPlusPlan {
    let base = sja_optimal(model);
    postoptimize(base, model, config)
}

/// Postoptimizes an already-found condition-at-a-time plan.
pub fn postoptimize<M: CostModel>(
    base: OptimizedPlan,
    model: &M,
    config: PostOptConfig,
) -> SjaPlusPlan {
    let plan = if config.use_difference {
        build_with_difference(&base.spec, base.plan.n_sources)
    } else {
        base.plan.clone()
    };
    let plan = if config.use_bloom {
        apply_bloom(&plan, model, config.bloom_bits)
    } else {
        plan
    };
    let (plan, loaded_sources) = if config.use_loading {
        apply_loading(plan, model)
    } else {
        (plan, Vec::new())
    };
    debug_assert!(
        crate::analyze::analyze_plan(&plan).is_ok_and(|a| a.verdict().is_proved()),
        "postoptimization produced a semantically unsound plan:\n{}",
        plan.listing()
    );
    let difference_steps = plan
        .steps
        .iter()
        .filter(|s| matches!(s, Step::Diff { .. }))
        .count();
    let cost = estimate_plan_cost(&plan, model).cost;
    // Postoptimization must never hurt. Compare both plans under the same
    // pricing (the plan walker) — the optimizer's incremental pricing
    // composes round cardinalities slightly differently.
    let base_walker_cost = estimate_plan_cost(&base.plan, model).cost;
    if cost > base_walker_cost {
        return SjaPlusPlan {
            plan: base.plan.clone(),
            cost: base_walker_cost,
            base,
            base_estimate: base_walker_cost,
            loaded_sources: Vec::new(),
            difference_steps: 0,
        };
    }
    SjaPlusPlan {
        plan,
        cost,
        base,
        base_estimate: base_walker_cost,
        loaded_sources,
        difference_steps,
    }
}

/// Rebuilds a spec's plan with difference-pruned semijoin sets.
///
/// Within each round, selection queries run first; semijoin queries are
/// then sequenced, each shipping `X_{i-1} − confirmed` where `confirmed`
/// unions every result already obtained for this condition.
pub fn build_with_difference(spec: &SimplePlanSpec, n_sources: usize) -> Plan {
    spec.validate(n_sources)
        .expect("spec comes from an optimizer");
    let m = spec.order.len();
    let mut plan = Plan {
        steps: Vec::new(),
        result: VarId(0),
        n_conditions: m,
        n_sources,
        var_names: Vec::new(),
        rel_names: Vec::new(),
    };
    let mut prev: Option<VarId> = None;
    for (r, &cond) in spec.order.iter().enumerate() {
        let round_no = r + 1;
        let mut per_source: Vec<VarId> = Vec::with_capacity(n_sources);
        let selections: Vec<usize> = (0..n_sources)
            .filter(|&j| spec.choices[r][j] == SourceChoice::Selection)
            .collect();
        let semijoins: Vec<usize> = (0..n_sources)
            .filter(|&j| spec.choices[r][j] == SourceChoice::Semijoin)
            .collect();
        // Selections first (they double as pruners).
        let mut sel_vars = Vec::with_capacity(selections.len());
        for &j in &selections {
            let out = plan.fresh_var(format!("X{round_no}{}", j + 1));
            plan.steps.push(Step::Sq {
                out,
                cond,
                source: SourceId(j),
            });
            sel_vars.push(out);
        }
        // Confirmed-so-far accumulator — only materialized when there are
        // semijoin queries left to prune with it.
        let mut confirmed: Option<VarId> = if semijoins.is_empty() {
            None
        } else {
            match sel_vars.len() {
                0 => None,
                1 => Some(sel_vars[0]),
                _ => {
                    let y = plan.fresh_var(format!("Y{round_no}"));
                    plan.steps.push(Step::Union {
                        out: y,
                        inputs: sel_vars.clone(),
                    });
                    Some(y)
                }
            }
        };
        per_source.extend(&sel_vars);
        for (k, &j) in semijoins.iter().enumerate() {
            let input_prev = prev.expect("round 0 is all selections");
            let input = match confirmed {
                None => input_prev,
                Some(c) => {
                    let d = plan.fresh_var(format!("D{round_no}{}", j + 1));
                    plan.steps.push(Step::Diff {
                        out: d,
                        left: input_prev,
                        right: c,
                    });
                    d
                }
            };
            let out = plan.fresh_var(format!("X{round_no}{}", j + 1));
            plan.steps.push(Step::Sjq {
                out,
                cond,
                source: SourceId(j),
                input,
            });
            per_source.push(out);
            // Extend the accumulator unless this was the last semijoin.
            if k + 1 < semijoins.len() {
                confirmed = Some(match confirmed {
                    None => out,
                    Some(c) => {
                        let y = plan.fresh_var(format!("Y{round_no}"));
                        plan.steps.push(Step::Union {
                            out: y,
                            inputs: vec![c, out],
                        });
                        Some(y)
                    }
                    .expect("just constructed"),
                });
            }
        }
        let union_out = plan.fresh_var(format!("X{round_no}"));
        plan.steps.push(Step::Union {
            out: union_out,
            inputs: per_source,
        });
        let all_semijoin = selections.is_empty() && prev.is_some();
        let round_result = match prev {
            Some(p) if !all_semijoin => {
                let inter = plan.fresh_var(format!("X{round_no}"));
                plan.steps.push(Step::Intersect {
                    out: inter,
                    inputs: vec![union_out, p],
                });
                inter
            }
            _ => union_out,
        };
        prev = Some(round_result);
    }
    plan.result = prev.expect("at least one round");
    debug_assert!(
        crate::analyze::analyze_plan(&plan).is_ok_and(|a| a.verdict().is_proved()),
        "difference pruning broke plan semantics:\n{}",
        plan.listing()
    );
    plan
}

/// Rewrites semijoin queries to Bloom-filter semijoins where the model
/// estimates the filter cheaper than the explicit set (extension).
///
/// Each rewritten `X := sjq(c, R, Y)` becomes
/// `Raw := sjq(c, R, bloom(Y)); X := Raw ∩ Y`, restoring exact semantics
/// at the mediator.
pub fn apply_bloom<M: CostModel>(plan: &Plan, model: &M, bits: u8) -> Plan {
    let est = estimate_plan_cost(plan, model);
    let mut new = Plan {
        steps: Vec::new(),
        result: plan.result,
        n_conditions: plan.n_conditions,
        n_sources: plan.n_sources,
        var_names: plan.var_names.clone(),
        rel_names: plan.rel_names.clone(),
    };
    for step in &plan.steps {
        match step {
            Step::Sjq {
                out,
                cond,
                source,
                input,
            } => {
                let k = est.var_items[input.0];
                let explicit = model.sjq_cost(*cond, *source, k);
                let bloom = model.sjq_bloom_cost(*cond, *source, k, bits);
                if bloom < explicit {
                    let raw = new.fresh_var(format!("B{}{}", cond.0 + 1, source.0 + 1));
                    new.steps.push(Step::SjqBloom {
                        out: raw,
                        cond: *cond,
                        source: *source,
                        input: *input,
                        bits,
                    });
                    new.steps.push(Step::Intersect {
                        out: *out,
                        inputs: vec![raw, *input],
                    });
                } else {
                    new.steps.push(step.clone());
                }
            }
            other => new.steps.push(other.clone()),
        }
    }
    new
}

/// Applies the source-loading postoptimization: for every source whose
/// queries cost more than one `lq`, loads it once and answers its queries
/// locally. Returns the transformed plan and the loaded sources.
pub fn apply_loading<M: CostModel>(plan: Plan, model: &M) -> (Plan, Vec<SourceId>) {
    let est = estimate_plan_cost(&plan, model);
    let mut to_load: Vec<SourceId> = Vec::new();
    for j in 0..plan.n_sources {
        let source = SourceId(j);
        let queries = est.per_source[j];
        let lq = model.lq_cost(source);
        // Only load when the source has at least one query and the load is
        // strictly cheaper.
        if queries > Cost::ZERO && lq < queries {
            to_load.push(source);
        }
    }
    if to_load.is_empty() {
        return (plan, to_load);
    }
    let mut out = plan;
    for &source in &to_load {
        out = load_one_source(&out, source);
    }
    (out, to_load)
}

/// Rewrites every query at `source` into local evaluation over one `lq`.
fn load_one_source(plan: &Plan, source: SourceId) -> Plan {
    let mut new = Plan {
        steps: Vec::new(),
        result: plan.result,
        n_conditions: plan.n_conditions,
        n_sources: plan.n_sources,
        var_names: plan.var_names.clone(),
        rel_names: plan.rel_names.clone(),
    };
    let rel = new.fresh_rel(format!("T{}", source.0 + 1));
    let mut loaded = false;
    for step in &plan.steps {
        let touches = step.source() == Some(source);
        if touches && !loaded {
            new.steps.push(Step::Lq { out: rel, source });
            loaded = true;
        }
        match step {
            Step::Sq {
                out,
                cond,
                source: s,
            } if *s == source => {
                new.steps.push(Step::LocalSq {
                    out: *out,
                    cond: *cond,
                    rel,
                });
            }
            Step::Sjq {
                out,
                cond,
                source: s,
                input,
            } if *s == source => {
                // Local semijoin: apply the condition locally, then
                // intersect with the semijoin set at the mediator.
                let tmp = new.fresh_var(format!("S{}{}", cond.0 + 1, source.0 + 1));
                new.steps.push(Step::LocalSq {
                    out: tmp,
                    cond: *cond,
                    rel,
                });
                new.steps.push(Step::Intersect {
                    out: *out,
                    inputs: vec![tmp, *input],
                });
            }
            other => new.steps.push(other.clone()),
        }
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::evaluate::evaluate_plan;
    use crate::query::FusionQuery;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, CondId, Predicate, Relation};

    /// Model shaped like Figure 5's setting: 2 conditions, 3 sources,
    /// SJA chooses [sq, sjq, sq] for c2.
    fn figure5_model() -> TableCostModel {
        let mut m = TableCostModel::uniform(2, 3, 10.0, 2.0, 0.5, 1e6, 8.0, 100.0);
        // c1 first (make c2 selections expensive at R2 so sjq wins there).
        m.set_sq_cost(CondId(1), SourceId(1), 60.0);
        // Keep sjq unattractive at R1/R3 for c2.
        m.set_sjq_cost(CondId(1), SourceId(0), 50.0, 1.0);
        m.set_sjq_cost(CondId(1), SourceId(2), 50.0, 1.0);
        // And for c1 everywhere (it is round 1 anyway).
        m
    }

    #[test]
    fn difference_plan_has_expected_shape() {
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1)],
            choices: vec![
                vec![SourceChoice::Selection; 3],
                vec![
                    SourceChoice::Selection,
                    SourceChoice::Semijoin,
                    SourceChoice::Selection,
                ],
            ],
        };
        let plan = build_with_difference(&spec, 3);
        plan.validate().unwrap();
        let listing = plan.listing();
        // Selections for c2 run first, the semijoin ships X1 − (X21 ∪ X23).
        assert!(listing.contains("Y2 := X21 ∪ X23"), "{listing}");
        assert!(listing.contains("D22 := X1 − Y2"), "{listing}");
        assert!(listing.contains("X22 := sjq(c2, R2, D22)"), "{listing}");
    }

    #[test]
    fn difference_preserves_semantics() {
        let q = FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
            ],
        )
        .unwrap();
        let s = dmv_schema();
        let sources = vec![
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["J55", "dui", 1993i64],
                    tuple!["T21", "sp", 1994i64],
                    tuple!["T80", "dui", 1993i64],
                ],
            ),
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["T21", "dui", 1996i64],
                    tuple!["J55", "sp", 1996i64],
                    tuple!["T11", "sp", 1993i64],
                ],
            ),
            Relation::from_rows(s, vec![tuple!["T21", "sp", 1993i64]]),
        ];
        let truth = q.naive_answer(&sources).unwrap();
        for choices_r2 in [
            vec![
                SourceChoice::Selection,
                SourceChoice::Semijoin,
                SourceChoice::Selection,
            ],
            vec![SourceChoice::Semijoin; 3],
            vec![
                SourceChoice::Semijoin,
                SourceChoice::Semijoin,
                SourceChoice::Selection,
            ],
        ] {
            let spec = SimplePlanSpec {
                order: vec![CondId(0), CondId(1)],
                choices: vec![vec![SourceChoice::Selection; 3], choices_r2],
            };
            let plan = build_with_difference(&spec, 3);
            let got = evaluate_plan(&plan, q.conditions(), &sources).unwrap();
            assert_eq!(got, truth, "plan:\n{plan}");
        }
    }

    #[test]
    fn difference_never_increases_estimated_cost() {
        let m = figure5_model();
        let base = crate::optimizer::sja_optimal(&m);
        let pruned = build_with_difference(&base.spec, base.plan.n_sources);
        let base_est = estimate_plan_cost(&base.plan, &m).cost;
        let pruned_est = estimate_plan_cost(&pruned, &m).cost;
        assert!(pruned_est <= base_est, "{pruned_est} > {base_est}");
    }

    #[test]
    fn loading_replaces_expensive_sources() {
        // Make R3's load trivially cheap.
        let mut m = figure5_model();
        m.set_lq_cost(SourceId(2), 1.0);
        let base = crate::optimizer::sja_optimal(&m);
        let (plan, loaded) = apply_loading(base.plan.clone(), &m);
        assert_eq!(loaded, vec![SourceId(2)]);
        plan.validate().unwrap();
        let listing = plan.listing();
        assert!(listing.contains("T3 := lq(R3)"), "{listing}");
        assert!(listing.contains(", T3)"), "local sq missing: {listing}");
        // No remote queries to R3 remain.
        assert!(
            !plan
                .steps
                .iter()
                .any(|s| !matches!(s, Step::Lq { .. }) && s.source() == Some(SourceId(2))),
            "{listing}"
        );
    }

    #[test]
    fn loading_preserves_semantics_even_for_semijoins() {
        // Force loading of a source that receives a semijoin query.
        let q = FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
            ],
        )
        .unwrap();
        let s = dmv_schema();
        let sources = vec![
            Relation::from_rows(
                s.clone(),
                vec![tuple!["J55", "dui", 1993i64], tuple!["T21", "sp", 1994i64]],
            ),
            Relation::from_rows(
                s,
                vec![tuple!["T21", "dui", 1996i64], tuple!["J55", "sp", 1996i64]],
            ),
        ];
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1)],
            choices: vec![
                vec![SourceChoice::Selection; 2],
                vec![SourceChoice::Semijoin, SourceChoice::Semijoin],
            ],
        };
        let plan = spec.build(2).unwrap();
        let loaded = load_one_source(&plan, SourceId(1));
        loaded.validate().unwrap();
        let got = evaluate_plan(&loaded, q.conditions(), &sources).unwrap();
        assert_eq!(got, q.naive_answer(&sources).unwrap());
    }

    #[test]
    fn sja_plus_improves_or_matches_sja() {
        let mut m = figure5_model();
        m.set_lq_cost(SourceId(2), 5.0);
        let plus = sja_plus(&m);
        assert!(plus.cost <= plus.base_estimate);
        assert!(plus.improvement() >= 0.0);
        plus.plan.validate().unwrap();
    }

    #[test]
    fn config_toggles_techniques() {
        let mut m = figure5_model();
        m.set_lq_cost(SourceId(2), 1.0);
        let diff_only = sja_plus_with(
            &m,
            PostOptConfig {
                use_difference: true,
                use_loading: false,
                ..PostOptConfig::default()
            },
        );
        assert!(diff_only.loaded_sources.is_empty());
        let load_only = sja_plus_with(
            &m,
            PostOptConfig {
                use_difference: false,
                use_loading: true,
                ..PostOptConfig::default()
            },
        );
        assert_eq!(load_only.difference_steps, 0);
        assert!(!load_only.loaded_sources.is_empty());
    }

    #[test]
    fn no_opportunity_means_base_plan_unchanged() {
        // Loads priced out, no semijoins chosen → SJA+ returns the SJA
        // plan as-is.
        let m = TableCostModel::uniform(2, 2, 1.0, 1000.0, 100.0, 1e9, 50.0, 100.0);
        let plus = sja_plus(&m);
        assert_eq!(plus.cost, plus.base_estimate);
        assert_eq!(plus.difference_steps, 0);
        assert!(plus.loaded_sources.is_empty());
    }
}
