//! EXPLAIN-style plan rendering: the listing annotated with the
//! optimizer's per-step cost and cardinality estimates.

use crate::cost::CostModel;
use crate::estimate::estimate_plan_cost;
use crate::plan::Plan;
use fusion_types::Condition;
use std::fmt::Write as _;

/// Renders a plan with estimated output cardinality and cost per step,
/// plus a class/total footer — what a mediator's `EXPLAIN` would print.
///
/// Pass the query's conditions to spell them out (`sq(V = 'dui', R1)`);
/// with `None` they print symbolically (`sq(c1, R1)`).
pub fn explain<M: CostModel>(plan: &Plan, model: &M, conditions: Option<&[Condition]>) -> String {
    let est = estimate_plan_cost(plan, model);
    let rendered: Vec<String> = match conditions {
        Some(conds) => plan
            .listing_verbose(conds)
            .lines()
            .map(str::to_string)
            .collect(),
        None => plan.listing().lines().map(str::to_string).collect(),
    };
    let width = rendered.iter().map(String::len).max().unwrap_or(0).max(24);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<width$}  {:>10}  {:>10}",
        "step", "est.items", "est.cost"
    );
    for (i, line) in rendered.iter().enumerate() {
        let items = plan.steps[i]
            .defined_var()
            .map_or_else(|| "-".to_string(), |v| format!("{:.1}", est.var_items[v.0]));
        let cost = if est.step_costs[i].value() > 0.0 {
            est.step_costs[i].to_string()
        } else {
            "-".to_string()
        };
        let _ = writeln!(out, "{line:<width$}  {items:>10}  {cost:>10}");
    }
    let _ = writeln!(
        out,
        "-- class: {}, result ≈ {:.1} items, total estimated cost {}",
        plan.class(),
        est.result_items,
        est.cost
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::sja_optimal;
    use fusion_types::Predicate;

    fn model() -> TableCostModel {
        TableCostModel::uniform(2, 2, 10.0, 1.0, 0.1, 1e6, 5.0, 1000.0)
    }

    #[test]
    fn explain_annotates_every_step() {
        let m = model();
        let opt = sja_optimal(&m);
        let text = explain(&opt.plan, &m, None);
        // One header, one line per step, one footer.
        assert_eq!(text.lines().count(), opt.plan.steps.len() + 2);
        assert!(text.contains("est.cost"));
        assert!(text.contains("-- class:"));
        assert!(text.contains("total estimated cost"));
    }

    #[test]
    fn explain_verbose_spells_conditions() {
        let m = model();
        let opt = sja_optimal(&m);
        let conds = vec![
            Predicate::eq("V", "dui").into(),
            Predicate::eq("V", "sp").into(),
        ];
        let text = explain(&opt.plan, &m, Some(&conds));
        assert!(text.contains("V = 'dui'"), "{text}");
    }

    #[test]
    fn local_steps_show_no_cost() {
        let m = model();
        let opt = crate::optimizer::filter_plan(&m);
        let text = explain(&opt.plan, &m, None);
        // Union lines end with a dash in the cost column.
        let union_line = text
            .lines()
            .find(|l| l.contains('∪'))
            .expect("plan has a union");
        assert!(union_line.trim_end().ends_with('-'), "{union_line}");
    }
}
