//! Semantic plan analysis: a machine-checked proof that a plan computes
//! the fusion query.
//!
//! Every optimizer in this crate emits a step-list plan that is supposed
//! to compute `⋂_i ⋃_j sq(c_i, R_j)` — the fusion answer of §2.2. The
//! structural validator (`Plan::validate`) catches malformed listings,
//! but nothing stopped a *well-formed* plan from computing the wrong
//! set. This module closes that gap with an abstract interpreter over
//! the step IR.
//!
//! # The abstract domain
//!
//! Fix one hypothetical item `x`. Its fate under a plan is fully
//! determined by finitely many independent Boolean atoms:
//!
//! * `r_j`  — `x` appears in source relation `R_j`;
//! * `p_ij` — `x` satisfies condition `c_i` *as recorded at* `R_j`
//!   (kept per-source: the paper's sources are autonomous and may
//!   disagree about attribute values, and `sq(c_i, R_j) ⊆ R_j` is
//!   encoded by construction as `p_ij ∧ r_j`);
//! * `β_t`  — the Bloom filter shipped at step `t` collides on `x`
//!   (fresh per Bloom step; a collision admits `x` into the raw result
//!   even though `x` is absent from the semijoin input).
//!
//! Each item-set variable is interpreted as a Boolean function over
//! these atoms — its *membership predicate* — represented canonically
//! as a [hash-consed ROBDD](bdd). The transfer function mirrors §2.1/§4
//! exactly:
//!
//! | step                | membership predicate            |
//! |---------------------|---------------------------------|
//! | `sq(c_i, R_j)`      | `p_ij ∧ r_j`                    |
//! | `sjq(c_i, R_j, Y)`  | `p_ij ∧ r_j ∧ Y`                |
//! | `sjq(…, bloom(Y))`  | `p_ij ∧ r_j ∧ (Y ∨ β_t)`        |
//! | `lq(R_j)`           | `r_j` (for the loaded `T`)      |
//! | `sq(c_i, T_j)`      | `p_ij ∧ r_j`                    |
//! | `∪`, `∩`, `−`       | `∨`, `∧`, `∧¬`                  |
//!
//! A plan is **proved** when its result variable's predicate is
//! *identical* (same ROBDD node) to the fusion-query predicate
//! `⋀_i ⋁_j (p_ij ∧ r_j)` — identity of canonical forms is equality of
//! the computed sets in **every** possible world. Otherwise the plan is
//! **refuted**, and a satisfying path through the XOR of the two
//! predicates is decoded into a [`Counterexample`]: a concrete world
//! sketch plus the membership of `x` after every step.
//!
//! Difference pruning (`X − Y`), source loading (`lq` + local
//! selection), and Bloom steps (supersets requiring re-intersection)
//! all fall out of the same transfer function; no special cases.

pub mod bdd;
mod lint;

pub use lint::{lint_plan, Diagnostic, Lint, LintRegistry, Severity};

use crate::plan::{Plan, Step, VarId};
use bdd::{BVar, BddManager, NodeId, FALSE};
use fusion_types::error::Result;

/// Maps plan atoms to BDD variables.
///
/// World variables are ordered source-major (`r_j` directly above the
/// `p_ij` of the same source) so that the per-source conjunct
/// `p_ij ∧ r_j` stays local in the diagram; Bloom collision variables
/// sit below all world variables.
#[derive(Debug, Clone)]
struct AtomMap {
    m: usize,
    /// BDD variable index of each plan step's Bloom collision atom
    /// (indexed by step, `None` for non-Bloom steps).
    bloom: Vec<Option<BVar>>,
}

impl AtomMap {
    fn new(plan: &Plan, mgr: &mut BddManager) -> AtomMap {
        // World variables first: for j in 0..n, r_j then p_0j..p_{m-1}j.
        for _ in 0..plan.n_sources * (plan.n_conditions + 1) {
            mgr.fresh_var();
        }
        let bloom = plan
            .steps
            .iter()
            .map(|s| matches!(s, Step::SjqBloom { .. }).then(|| mgr.fresh_var()))
            .collect();
        AtomMap {
            m: plan.n_conditions,
            bloom,
        }
    }

    /// The atom `r_j`.
    fn r(&self, j: usize) -> BVar {
        BVar((j * (self.m + 1)) as u32)
    }

    /// The atom `p_ij`.
    fn p(&self, i: usize, j: usize) -> BVar {
        BVar((j * (self.m + 1) + 1 + i) as u32)
    }
}

/// The membership of one hypothetical item after one step, under the
/// counterexample world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepMembership {
    /// 1-based step number.
    pub step: usize,
    /// The step as rendered in the plan listing.
    pub rendering: String,
    /// Whether the item is in the step's output set in this world.
    pub member: bool,
}

/// A concrete refutation of a plan: a possible world (for one
/// hypothetical item) in which the plan's result disagrees with the
/// fusion answer, plus the item's membership after every step.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// `r_j` per source: does the item appear in `R_j`?
    pub in_source: Vec<bool>,
    /// `p_ij` per condition and source: does the item satisfy `c_i` as
    /// recorded at `R_j`? (Indexed `[i][j]`.)
    pub satisfies: Vec<Vec<bool>>,
    /// 1-based numbers of Bloom steps whose filter collides on the item.
    pub bloom_collisions: Vec<usize>,
    /// Is the item in the plan's result set?
    pub in_result: bool,
    /// Is the item in the true fusion answer `⋂_i ⋃_j sq(c_i, R_j)`?
    pub in_answer: bool,
    /// Membership of the item after every step, in execution order.
    pub trace: Vec<StepMembership>,
}

impl Counterexample {
    /// The 1-based number of the step that defines the plan's result
    /// variable — where the wrong value materializes.
    pub fn result_step(&self) -> usize {
        self.trace.last().map_or(0, |t| t.step)
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let srcs: Vec<String> = self
            .in_source
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(j, _)| format!("R{}", j + 1))
            .collect();
        writeln!(
            f,
            "counterexample world for an item x: x ∈ {{{}}}",
            srcs.join(", ")
        )?;
        for (i, row) in self.satisfies.iter().enumerate() {
            let at: Vec<String> = row
                .iter()
                .enumerate()
                .filter(|(j, &b)| b && self.in_source[*j])
                .map(|(j, _)| format!("R{}", j + 1))
                .collect();
            writeln!(
                f,
                "  c{} holds for x at: {}",
                i + 1,
                if at.is_empty() {
                    "no source".to_string()
                } else {
                    at.join(", ")
                }
            )?;
        }
        if !self.bloom_collisions.is_empty() {
            let at: Vec<String> = self
                .bloom_collisions
                .iter()
                .map(|s| format!("step {s}"))
                .collect();
            writeln!(f, "  Bloom filters colliding on x: {}", at.join(", "))?;
        }
        writeln!(
            f,
            "  fusion answer contains x: {}; plan result contains x: {}",
            if self.in_answer { "yes" } else { "NO" },
            if self.in_result { "yes" } else { "NO" },
        )?;
        writeln!(f, "  step trace:")?;
        for t in &self.trace {
            writeln!(
                f,
                "    {:>3}) {:<40} {}",
                t.step,
                t.rendering,
                if t.member { "x ∈ out" } else { "x ∉ out" }
            )?;
        }
        Ok(())
    }
}

/// The outcome of semantic analysis.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The plan computes `⋂_i ⋃_j sq(c_i, R_j)` in every possible world.
    Proved,
    /// The plan computes something else; here is a world showing it.
    Refuted(Box<Counterexample>),
}

impl Verdict {
    /// True when the plan is proved equivalent to the fusion query.
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved)
    }
}

/// A completed semantic analysis of one plan: the abstract value of
/// every variable, the fusion-query target, and the verdict.
#[derive(Debug)]
pub struct Analysis {
    mgr: BddManager,
    atoms: AtomMap,
    /// Membership predicate per item-set variable (`FALSE` placeholder
    /// for variables the plan never defines).
    values: Vec<NodeId>,
    /// The source loaded into each relation variable.
    rel_source: Vec<Option<usize>>,
    /// The fusion-query predicate `⋀_i ⋁_j (p_ij ∧ r_j)`.
    target: NodeId,
    /// The result variable's predicate.
    result_value: NodeId,
    verdict: Verdict,
}

/// Analyzes a plan, proving or refuting that it computes the fusion
/// query.
///
/// # Errors
/// Propagates structural validation failure ([`Plan::validate`]); a
/// structurally broken listing has no semantics to analyze.
pub fn analyze_plan(plan: &Plan) -> Result<Analysis> {
    plan.validate()?;
    let mut mgr = BddManager::new();
    let atoms = AtomMap::new(plan, &mut mgr);
    let (values, rel_source) = interpret(plan, &mut mgr, &atoms, None, &[], None);
    let target = fusion_target(plan, &mut mgr, &atoms);
    let result_value = values[plan.result.0];
    let verdict = decide(plan, &mut mgr, &atoms, &values, result_value, target);
    Ok(Analysis {
        mgr,
        atoms,
        values,
        rel_source,
        target,
        result_value,
        verdict,
    })
}

/// Runs the transfer function over the step list. With
/// `substitute = Some((t, z))`, step `t`'s semijoin input is replaced by
/// variable `z` (used by the superset-input lint to test whether a
/// smaller set provably suffices). Steps listed in `dropped` are modeled
/// as producing the empty set (`FALSE`), which is exactly what the
/// fault-tolerant executor substitutes when a source dies: a dropped `lq`
/// leaves an empty loaded relation, so local selections over it are empty
/// too. With `order = Some(o)`, the steps are interpreted in that order
/// instead of listing order (the dataflow stage certificate uses this to
/// prove a reordering semantics-preserving); Bloom collision atoms stay
/// keyed by *original* step index, so reorderings compare like for like.
fn interpret(
    plan: &Plan,
    mgr: &mut BddManager,
    atoms: &AtomMap,
    substitute: Option<(usize, VarId)>,
    dropped: &[usize],
    order: Option<&[usize]>,
) -> (Vec<NodeId>, Vec<Option<usize>>) {
    let mut values = vec![FALSE; plan.var_names.len()];
    let mut rel_source = vec![None; plan.rel_names.len()];
    let mut rel_dropped = vec![false; plan.rel_names.len()];
    let listing_order: Vec<usize>;
    let indices: &[usize] = match order {
        Some(o) => o,
        None => {
            listing_order = (0..plan.steps.len()).collect();
            &listing_order
        }
    };
    for &t in indices {
        let step = &plan.steps[t];
        if dropped.contains(&t) {
            match step {
                Step::Lq { out, .. } => rel_dropped[out.0] = true,
                _ => {
                    let out = step.defined_var().expect("non-Lq steps define a var");
                    values[out.0] = FALSE;
                }
            }
            continue;
        }
        if let Step::LocalSq { out, rel, .. } = step {
            if rel_dropped[rel.0] {
                values[out.0] = FALSE;
                continue;
            }
        }
        let input_of = |v: VarId| match substitute {
            Some((at, z)) if at == t => z,
            _ => v,
        };
        match step {
            Step::Sq { out, cond, source } => {
                let p = atoms.p(cond.0, source.0);
                let r = atoms.r(source.0);
                let pv = mgr.var(p);
                let rv = mgr.var(r);
                values[out.0] = mgr.and(pv, rv);
            }
            Step::Sjq {
                out,
                cond,
                source,
                input,
            } => {
                let p = atoms.p(cond.0, source.0);
                let r = atoms.r(source.0);
                let pv = mgr.var(p);
                let rv = mgr.var(r);
                let sq = mgr.and(pv, rv);
                let inp = values[input_of(*input).0];
                values[out.0] = mgr.and(sq, inp);
            }
            Step::SjqBloom {
                out,
                cond,
                source,
                input,
                ..
            } => {
                let p = atoms.p(cond.0, source.0);
                let r = atoms.r(source.0);
                let pv = mgr.var(p);
                let rv = mgr.var(r);
                let sq = mgr.and(pv, rv);
                let inp = values[input_of(*input).0];
                let beta = atoms.bloom[t].expect("Bloom step has a collision atom");
                let bv = mgr.var(beta);
                let loose = mgr.or(inp, bv);
                values[out.0] = mgr.and(sq, loose);
            }
            Step::Lq { out, source } => {
                rel_source[out.0] = Some(source.0);
            }
            Step::LocalSq { out, cond, rel } => {
                let j = rel_source[rel.0].expect("validated plan loads before use");
                let p = atoms.p(cond.0, j);
                let r = atoms.r(j);
                let pv = mgr.var(p);
                let rv = mgr.var(r);
                values[out.0] = mgr.and(pv, rv);
            }
            Step::Union { out, inputs } => {
                let mut acc = FALSE;
                for v in inputs {
                    let f = values[input_of(*v).0];
                    acc = mgr.or(acc, f);
                }
                values[out.0] = acc;
            }
            Step::Intersect { out, inputs } => {
                let mut acc = bdd::TRUE;
                for v in inputs {
                    let f = values[input_of(*v).0];
                    acc = mgr.and(acc, f);
                }
                values[out.0] = acc;
            }
            Step::Diff { out, left, right } => {
                let l = values[input_of(*left).0];
                let r = values[input_of(*right).0];
                values[out.0] = mgr.diff(l, r);
            }
        }
    }
    (values, rel_source)
}

/// The fusion-query predicate `⋀_i ⋁_j (p_ij ∧ r_j)`.
fn fusion_target(plan: &Plan, mgr: &mut BddManager, atoms: &AtomMap) -> NodeId {
    let mut conj = bdd::TRUE;
    for i in 0..plan.n_conditions {
        let mut disj = FALSE;
        for j in 0..plan.n_sources {
            let pv = mgr.var(atoms.p(i, j));
            let rv = mgr.var(atoms.r(j));
            let sq = mgr.and(pv, rv);
            disj = mgr.or(disj, sq);
        }
        conj = mgr.and(conj, disj);
    }
    conj
}

fn decide(
    plan: &Plan,
    mgr: &mut BddManager,
    atoms: &AtomMap,
    values: &[NodeId],
    result_value: NodeId,
    target: NodeId,
) -> Verdict {
    if result_value == target {
        return Verdict::Proved;
    }
    let delta = mgr.xor(result_value, target);
    let witness = mgr
        .sat_one(delta)
        .expect("distinct canonical forms differ somewhere");
    // Complete the partial path assignment with `false` for don't-cares.
    let mut assignment = vec![false; mgr.n_vars() as usize];
    for (v, b) in witness {
        assignment[v.0 as usize] = b;
    }
    let in_source: Vec<bool> = (0..plan.n_sources)
        .map(|j| assignment[atoms.r(j).0 as usize])
        .collect();
    let satisfies: Vec<Vec<bool>> = (0..plan.n_conditions)
        .map(|i| {
            (0..plan.n_sources)
                .map(|j| assignment[atoms.p(i, j).0 as usize])
                .collect()
        })
        .collect();
    let bloom_collisions: Vec<usize> = atoms
        .bloom
        .iter()
        .enumerate()
        .filter_map(|(t, v)| v.filter(|v| assignment[v.0 as usize]).map(|_| t + 1))
        .collect();
    let listing = plan.listing();
    let lines: Vec<&str> = listing.lines().collect();
    let trace: Vec<StepMembership> = plan
        .steps
        .iter()
        .enumerate()
        .map(|(t, step)| {
            let member = match step {
                Step::Lq { source, .. } => in_source[source.0],
                _ => {
                    let out = step.defined_var().expect("non-Lq steps define a var");
                    mgr.eval(values[out.0], &assignment)
                }
            };
            // The listing already numbers each line (`3) X := ...`);
            // strip that so Display's own step numbers don't repeat it.
            let line = lines.get(t).copied().unwrap_or("");
            let rendering = line
                .split_once(") ")
                .filter(|(num, _)| num.chars().all(|c| c.is_ascii_digit()))
                .map_or(line, |(_, rest)| rest)
                .to_string();
            StepMembership {
                step: t + 1,
                rendering,
                member,
            }
        })
        .collect();
    Verdict::Refuted(Box::new(Counterexample {
        in_source,
        satisfies,
        bloom_collisions,
        in_result: mgr.eval(result_value, &assignment),
        in_answer: mgr.eval(target, &assignment),
        trace,
    }))
}

impl Analysis {
    /// The verdict: proved equivalent to the fusion query, or refuted.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The membership predicate of a variable (`None` for out-of-range
    /// ids; variables the plan never assigns read as the empty set).
    pub fn value(&self, v: VarId) -> Option<NodeId> {
        self.values.get(v.0).copied()
    }

    /// The source a relation variable was loaded from, if any.
    pub fn loaded_source(&self, rel: crate::plan::RelVar) -> Option<usize> {
        self.rel_source.get(rel.0).copied().flatten()
    }

    /// True when `a`'s set is contained in `b`'s in every world.
    pub fn is_subset(&mut self, a: NodeId, b: NodeId) -> bool {
        self.mgr.implies(a, b)
    }

    /// True when the result still depends on the Bloom collision atom of
    /// step `t` (0-based) — i.e. a filter false positive can leak into
    /// the answer because the raw superset was never re-intersected.
    pub fn result_tainted_by_bloom(&self, t: usize) -> bool {
        match self.atoms.bloom.get(t).copied().flatten() {
            Some(beta) => self.mgr.support(self.result_value).contains(&beta),
            None => false,
        }
    }

    /// Re-interprets the plan with step `t`'s semijoin input replaced by
    /// `z`, returning the new result predicate. Hash-consing makes this
    /// cheap: unchanged prefixes reuse existing nodes.
    pub fn result_with_semijoin_input(&mut self, plan: &Plan, t: usize, z: VarId) -> NodeId {
        let (values, _) = interpret(plan, &mut self.mgr, &self.atoms, Some((t, z)), &[], None);
        values[plan.result.0]
    }

    /// Re-interprets the plan with its steps executed in `order` (a
    /// permutation of step indices) and returns the result predicate.
    /// Equality with [`result_value`](Analysis::result_value) proves the
    /// reordering semantics-preserving in every possible world — the
    /// machine check behind the dataflow stage certificate.
    pub fn result_with_step_order(&mut self, plan: &Plan, order: &[usize]) -> NodeId {
        let (values, _) = interpret(plan, &mut self.mgr, &self.atoms, None, &[], Some(order));
        values[plan.result.0]
    }

    /// Re-interprets the plan with the listed steps producing the empty
    /// set — the abstraction of a fault-tolerant executor that drops the
    /// steps of a dead source — and returns the new result predicate.
    pub fn result_with_steps_empty(&mut self, plan: &Plan, dropped: &[usize]) -> NodeId {
        let (values, _) = interpret(plan, &mut self.mgr, &self.atoms, None, dropped, None);
        values[plan.result.0]
    }

    /// True when executing the plan with the listed steps producing the
    /// empty set yields a *subset* of the fusion answer in every possible
    /// world — i.e. the steps are droppable and the degraded answer is a
    /// sound partial answer. Dropping a union term always passes; dropping
    /// a set that something is subtracted *from* is where this refuses.
    pub fn droppable(&mut self, plan: &Plan, dropped: &[usize]) -> bool {
        let degraded = self.result_with_steps_empty(plan, dropped);
        self.mgr.implies(degraded, self.target)
    }

    /// The result variable's membership predicate.
    pub fn result_value(&self) -> NodeId {
        self.result_value
    }

    /// The fusion-query predicate the result is compared against.
    pub fn target(&self) -> NodeId {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{SimplePlanSpec, SourceChoice};
    use crate::postopt::build_with_difference;
    use fusion_types::{CondId, SourceId};

    fn sja_spec(m: usize, n: usize) -> SimplePlanSpec {
        // Alternate selection/semijoin per cell for a mixed plan.
        SimplePlanSpec {
            order: (0..m).map(CondId).collect(),
            choices: (0..m)
                .map(|r| {
                    (0..n)
                        .map(|j| {
                            if r > 0 && (r + j) % 2 == 0 {
                                SourceChoice::Semijoin
                            } else {
                                SourceChoice::Selection
                            }
                        })
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn filter_plans_prove() {
        for (m, n) in [(1, 1), (2, 3), (3, 2), (4, 4)] {
            let plan = SimplePlanSpec::filter(m, n).build(n).unwrap();
            let a = analyze_plan(&plan).unwrap();
            assert!(a.verdict().is_proved(), "filter m={m} n={n}");
        }
    }

    #[test]
    fn semijoin_and_adaptive_plans_prove() {
        for (m, n) in [(2, 2), (3, 3), (4, 2)] {
            let plan = SimplePlanSpec::all_semijoin(m, n).build(n).unwrap();
            assert!(analyze_plan(&plan).unwrap().verdict().is_proved());
            let plan = sja_spec(m, n).build(n).unwrap();
            assert!(analyze_plan(&plan).unwrap().verdict().is_proved());
        }
    }

    #[test]
    fn difference_pruned_plans_prove() {
        for (m, n) in [(2, 2), (3, 3), (4, 2)] {
            let plan = build_with_difference(&sja_spec(m, n), n);
            let a = analyze_plan(&plan).unwrap();
            assert!(a.verdict().is_proved(), "diff-pruned m={m} n={n}");
        }
    }

    #[test]
    fn dropping_a_source_is_refuted_with_witness() {
        // A filter plan that forgets R2 when unioning condition 1.
        let mut plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        for step in &mut plan.steps {
            if let Step::Union { inputs, .. } = step {
                inputs.truncate(1);
                break;
            }
        }
        let a = analyze_plan(&plan).unwrap();
        let Verdict::Refuted(cx) = a.verdict() else {
            panic!("expected refutation");
        };
        // The witness world must actually separate plan from query: the
        // item matches c1 only at the dropped source.
        assert!(cx.in_answer && !cx.in_result);
        assert!(cx.in_source[1]);
        assert!(cx.satisfies[0][1]);
        assert_eq!(cx.trace.len(), plan.steps.len());
        let shown = cx.to_string();
        assert!(shown.contains("fusion answer contains x: yes"));
    }

    #[test]
    fn intersecting_too_much_is_refuted() {
        // Result over-constrained: intersect with an extra sq.
        let mut plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let extra = plan.fresh_var("EXTRA");
        let out = plan.fresh_var("OUT");
        plan.steps.push(Step::Sq {
            out: extra,
            cond: CondId(0),
            source: SourceId(0),
        });
        plan.steps.push(Step::Intersect {
            out,
            inputs: vec![plan.result, extra],
        });
        plan.result = out;
        let a = analyze_plan(&plan).unwrap();
        let Verdict::Refuted(cx) = a.verdict() else {
            panic!("expected refutation");
        };
        assert!(cx.in_answer && !cx.in_result);
    }

    #[test]
    fn bloom_with_reintersection_proves() {
        // Replace one sjq with bloom-sjq + re-intersection with its input.
        let spec = sja_spec(2, 2);
        let mut plan = spec.build(2).unwrap();
        let (idx, cond, source, input) = plan
            .steps
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Step::Sjq {
                    cond,
                    source,
                    input,
                    ..
                } => Some((i, *cond, *source, *input)),
                _ => None,
            })
            .expect("spec has a semijoin");
        let raw = plan.fresh_var("RAW");
        let tight = plan.fresh_var("TIGHT");
        let old_out = plan.steps[idx].defined_var().unwrap();
        plan.steps[idx] = Step::SjqBloom {
            out: raw,
            cond,
            source,
            input,
            bits: 8,
        };
        plan.steps.insert(
            idx + 1,
            Step::Intersect {
                out: tight,
                inputs: vec![raw, input],
            },
        );
        // Rewire the old output to the tightened set.
        for s in &mut plan.steps[idx + 2..] {
            match s {
                Step::Sjq { input, .. } | Step::SjqBloom { input, .. } if *input == old_out => {
                    *input = tight;
                }
                Step::Union { inputs, .. } | Step::Intersect { inputs, .. } => {
                    for v in inputs {
                        if *v == old_out {
                            *v = tight;
                        }
                    }
                }
                Step::Diff { left, right, .. } => {
                    if *left == old_out {
                        *left = tight;
                    }
                    if *right == old_out {
                        *right = tight;
                    }
                }
                _ => {}
            }
        }
        if plan.result == old_out {
            plan.result = tight;
        }
        let a = analyze_plan(&plan).unwrap();
        assert!(
            a.verdict().is_proved(),
            "re-intersected Bloom semijoin is exact: {}",
            plan.listing()
        );
        assert!(!a.result_tainted_by_bloom(idx));
    }

    #[test]
    fn bloom_without_reintersection_is_refuted() {
        // The final round is all-semijoin, so the builder emits no
        // re-intersection after it: a Bloom collision there leaks
        // straight into the result.
        let spec = SimplePlanSpec::all_semijoin(2, 2);
        let mut plan = spec.build(2).unwrap();
        let idx = plan
            .steps
            .iter()
            .position(|s| matches!(s, Step::Sjq { .. }))
            .expect("spec has a semijoin");
        if let Step::Sjq {
            out,
            cond,
            source,
            input,
        } = plan.steps[idx]
        {
            plan.steps[idx] = Step::SjqBloom {
                out,
                cond,
                source,
                input,
                bits: 8,
            };
        }
        let a = analyze_plan(&plan).unwrap();
        let Verdict::Refuted(cx) = a.verdict() else {
            panic!("expected refutation: {}", plan.listing())
        };
        // The separating world involves a Bloom collision admitting a
        // non-matching item.
        assert_eq!(cx.bloom_collisions, vec![idx + 1]);
        assert!(cx.in_result && !cx.in_answer);
        assert!(a.result_tainted_by_bloom(idx));
    }

    #[test]
    fn loading_based_plans_prove() {
        // lq(R2) + local selections replacing remote sq's at R2.
        let m = 2;
        let mut plan = Plan::new(vec![], VarId(0), m, 2);
        let t = plan.fresh_rel("T2");
        let mut per_cond = Vec::new();
        plan.steps.push(Step::Lq {
            out: t,
            source: SourceId(1),
        });
        for i in 0..m {
            let remote = plan.fresh_var(format!("X{}1", i + 1));
            let local = plan.fresh_var(format!("X{}2", i + 1));
            let both = plan.fresh_var(format!("X{}", i + 1));
            plan.steps.push(Step::Sq {
                out: remote,
                cond: CondId(i),
                source: SourceId(0),
            });
            plan.steps.push(Step::LocalSq {
                out: local,
                cond: CondId(i),
                rel: t,
            });
            plan.steps.push(Step::Union {
                out: both,
                inputs: vec![remote, local],
            });
            per_cond.push(both);
        }
        let result = plan.fresh_var("X");
        plan.steps.push(Step::Intersect {
            out: result,
            inputs: per_cond,
        });
        plan.result = result;
        let a = analyze_plan(&plan).unwrap();
        assert!(a.verdict().is_proved(), "{}", plan.listing());
    }

    #[test]
    fn self_difference_is_refuted() {
        // X − X = ∅ ≠ the fusion answer (there are worlds with answers).
        let mut plan = SimplePlanSpec::filter(1, 1).build(1).unwrap();
        let out = plan.fresh_var("EMPTY");
        plan.steps.push(Step::Diff {
            out,
            left: plan.result,
            right: plan.result,
        });
        plan.result = out;
        // Structural validation now rejects self-difference outright.
        assert!(analyze_plan(&plan).is_err());
    }

    #[test]
    fn structurally_invalid_plans_error() {
        let mut plan = SimplePlanSpec::filter(1, 2).build(2).unwrap();
        plan.result = VarId(999);
        assert!(analyze_plan(&plan).is_err());
    }

    #[test]
    fn subset_queries_on_analysis() {
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let mut a = analyze_plan(&plan).unwrap();
        let result = a.result_value();
        let target = a.target();
        assert!(a.is_subset(result, target));
        assert!(a.is_subset(target, result));
    }

    /// Step indices of all remote steps touching `source`.
    fn steps_at(plan: &Plan, source: SourceId) -> Vec<usize> {
        plan.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.source() == Some(source))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn dropping_one_source_from_filter_plan_is_droppable() {
        // Each union term loses one operand: a strict but sound subset.
        let plan = SimplePlanSpec::filter(3, 3).build(3).unwrap();
        let mut a = analyze_plan(&plan).unwrap();
        for j in 0..3 {
            let dropped = steps_at(&plan, SourceId(j));
            assert!(!dropped.is_empty());
            assert!(a.droppable(&plan, &dropped), "source {j}");
        }
        // Dropping everything yields the empty answer — still a subset.
        let all: Vec<usize> = (0..plan.steps.len()).collect();
        assert!(a.droppable(&plan, &all));
        // And the degraded result must be strictly below the target.
        let degraded = a.result_with_steps_empty(&plan, &steps_at(&plan, SourceId(0)));
        let target = a.target();
        assert!(a.is_subset(degraded, target));
        assert!(!a.is_subset(target, degraded));
    }

    #[test]
    fn dropping_sources_from_semijoin_and_diff_plans_is_droppable() {
        for (m, n) in [(2, 2), (3, 3)] {
            let sj = sja_spec(m, n).build(n).unwrap();
            let diff = build_with_difference(&sja_spec(m, n), n);
            for plan in [&sj, &diff] {
                let mut a = analyze_plan(plan).unwrap();
                for j in 0..n {
                    let dropped = steps_at(plan, SourceId(j));
                    assert!(a.droppable(plan, &dropped), "m={m} n={n} source {j}");
                }
            }
        }
    }

    #[test]
    fn partial_drop_mid_plan_is_droppable() {
        // A source can die between two of its own steps; only the not-yet
        // executed tail is dropped. Check every suffix of each source's
        // step list on a difference-pruned plan (the hardest algebra:
        // dropped values feed Diff subtrahends).
        let plan = build_with_difference(&sja_spec(3, 2), 2);
        let mut a = analyze_plan(&plan).unwrap();
        for j in 0..2 {
            let at = steps_at(&plan, SourceId(j));
            for start in 0..at.len() {
                assert!(a.droppable(&plan, &at[start..]), "source {j} from {start}");
            }
        }
    }

    #[test]
    fn antitone_use_of_a_dropped_step_is_not_droppable() {
        // result := sq(c1,R1) − sq(c2,R1). Dropping the subtrahend makes
        // the degraded result a *superset*: the BDD check must refuse.
        let steps = vec![
            Step::Sq {
                out: VarId(0),
                cond: CondId(0),
                source: SourceId(0),
            },
            Step::Sq {
                out: VarId(1),
                cond: CondId(1),
                source: SourceId(0),
            },
            Step::Diff {
                out: VarId(2),
                left: VarId(0),
                right: VarId(1),
            },
        ];
        let plan = Plan::new(steps, VarId(2), 2, 2);
        let mut a = analyze_plan(&plan).unwrap();
        assert!(!a.droppable(&plan, &[1]), "dropping the subtrahend");
        // Dropping the minuend (and hence the whole result) is fine: ∅.
        assert!(a.droppable(&plan, &[0, 1]));
    }
}
