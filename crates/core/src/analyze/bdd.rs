//! A small hash-consed reduced ordered binary decision diagram (ROBDD).
//!
//! The semantic analyzer models every plan variable as a Boolean
//! function over atoms describing one hypothetical item (membership in
//! each source, satisfaction of each condition at each source, Bloom
//! collisions). ROBDDs give those functions a *canonical* form:
//! two plan expressions denote the same item set for every possible
//! world exactly when their root nodes coincide, so semantic equality —
//! the heart of the proof — is one pointer comparison, and a refutation
//! witness is one satisfying path through the XOR of two functions.

use std::collections::HashMap;

/// A Boolean variable, identified by its position in the global order
/// (smaller = closer to the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BVar(pub u32);

/// A node reference in a [`BddManager`]. `FALSE` and `TRUE` are the two
/// terminals; every other reference is an internal decision node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// The constant-false function.
pub const FALSE: NodeId = NodeId(0);
/// The constant-true function.
pub const TRUE: NodeId = NodeId(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: BVar,
    /// Cofactor with `var = false`.
    lo: NodeId,
    /// Cofactor with `var = true`.
    hi: NodeId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BinOp {
    And,
    Or,
    Xor,
}

/// The shared store of hash-consed BDD nodes for one analysis.
#[derive(Debug, Default)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    bin_cache: HashMap<(BinOp, NodeId, NodeId), NodeId>,
    not_cache: HashMap<NodeId, NodeId>,
    n_vars: u32,
}

impl BddManager {
    /// Creates an empty manager.
    pub fn new() -> BddManager {
        BddManager {
            // Slots 0/1 are the terminals; their `Node` payloads are
            // placeholders that are never inspected.
            nodes: vec![
                Node {
                    var: BVar(u32::MAX),
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    var: BVar(u32::MAX),
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            unique: HashMap::new(),
            bin_cache: HashMap::new(),
            not_cache: HashMap::new(),
            n_vars: 0,
        }
    }

    /// Allocates the next variable in the global order.
    pub fn fresh_var(&mut self) -> BVar {
        let v = BVar(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Number of variables allocated so far.
    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: BVar) -> NodeId {
        self.mk(v, FALSE, TRUE)
    }

    fn level(&self, f: NodeId) -> u32 {
        if f == FALSE || f == TRUE {
            u32::MAX
        } else {
            self.nodes[f.0 as usize].var.0
        }
    }

    fn mk(&mut self, var: BVar, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    fn apply(&mut self, op: BinOp, f: NodeId, g: NodeId) -> NodeId {
        // Terminal cases.
        match op {
            BinOp::And => {
                if f == FALSE || g == FALSE {
                    return FALSE;
                }
                if f == TRUE {
                    return g;
                }
                if g == TRUE || f == g {
                    return f;
                }
            }
            BinOp::Or => {
                if f == TRUE || g == TRUE {
                    return TRUE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE || f == g {
                    return f;
                }
            }
            BinOp::Xor => {
                if f == g {
                    return FALSE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE {
                    return f;
                }
                if f == TRUE {
                    return self.not(g);
                }
                if g == TRUE {
                    return self.not(f);
                }
            }
        }
        // Normalize commutative operands for cache hits.
        let key = if f.0 <= g.0 { (op, f, g) } else { (op, g, f) };
        if let Some(&cached) = self.bin_cache.get(&key) {
            return cached;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let top = lf.min(lg);
        let (f_lo, f_hi) = if lf == top {
            let n = self.nodes[f.0 as usize];
            (n.lo, n.hi)
        } else {
            (f, f)
        };
        let (g_lo, g_hi) = if lg == top {
            let n = self.nodes[g.0 as usize];
            (n.lo, n.hi)
        } else {
            (g, g)
        };
        let lo = self.apply(op, f_lo, g_lo);
        let hi = self.apply(op, f_hi, g_hi);
        let r = self.mk(BVar(top), lo, hi);
        self.bin_cache.insert(key, r);
        r
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(BinOp::And, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(BinOp::Or, f, g)
    }

    /// `f ⊕ g` — nonempty exactly when `f` and `g` disagree somewhere.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(BinOp::Xor, f, g)
    }

    /// `¬f`.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        if f == FALSE {
            return TRUE;
        }
        if f == TRUE {
            return FALSE;
        }
        if let Some(&cached) = self.not_cache.get(&f) {
            return cached;
        }
        let n = self.nodes[f.0 as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f, r);
        r
    }

    /// `f ∧ ¬g` (set difference on indicator functions).
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// True iff `f ⇒ g` (i.e. the item set of `f` is contained in that
    /// of `g` in every world).
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> bool {
        self.diff(f, g) == FALSE
    }

    /// One satisfying assignment of `f` (values for the variables on the
    /// chosen root-to-`TRUE` path; variables not mentioned are don't-care
    /// and may be taken as `false`). `None` iff `f` is unsatisfiable.
    pub fn sat_one(&self, f: NodeId) -> Option<Vec<(BVar, bool)>> {
        if f == FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while cur != TRUE {
            let n = self.nodes[cur.0 as usize];
            // Prefer the low branch (fewer `true` atoms → smaller worlds)
            // unless it dead-ends.
            if n.lo != FALSE {
                path.push((n.var, false));
                cur = n.lo;
            } else {
                path.push((n.var, true));
                cur = n.hi;
            }
        }
        Some(path)
    }

    /// Evaluates `f` under a total assignment (indexed by variable).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == TRUE {
                return true;
            }
            if cur == FALSE {
                return false;
            }
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var.0 as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: NodeId) -> Vec<BVar> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if id == FALSE || id == TRUE || !seen.insert(id) {
                continue;
            }
            let n = self.nodes[id.0 as usize];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_variables() {
        let mut m = BddManager::new();
        let a = m.fresh_var();
        let fa = m.var(a);
        assert_ne!(fa, TRUE);
        assert_ne!(fa, FALSE);
        let not_fa = m.not(fa);
        let back = m.not(not_fa);
        assert_eq!(back, fa, "double negation is hash-consed away");
    }

    #[test]
    fn boolean_algebra_is_canonical() {
        let mut m = BddManager::new();
        let (a, b, c) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let (fa, fb, fc) = (m.var(a), m.var(b), m.var(c));
        // Distributivity: a ∧ (b ∨ c) = (a ∧ b) ∨ (a ∧ c).
        let bc = m.or(fb, fc);
        let lhs = m.and(fa, bc);
        let ab = m.and(fa, fb);
        let ac = m.and(fa, fc);
        let rhs = m.or(ab, ac);
        assert_eq!(lhs, rhs);
        // De Morgan: ¬(a ∨ b) = ¬a ∧ ¬b.
        let aob = m.or(fa, fb);
        let l = m.not(aob);
        let na = m.not(fa);
        let nb = m.not(fb);
        let r = m.and(na, nb);
        assert_eq!(l, r);
        // Complement laws.
        let taut = m.or(fa, na);
        assert_eq!(taut, TRUE);
        let contra = m.and(fa, na);
        assert_eq!(contra, FALSE);
    }

    #[test]
    fn xor_and_witnesses() {
        let mut m = BddManager::new();
        let (a, b) = (m.fresh_var(), m.fresh_var());
        let (fa, fb) = (m.var(a), m.var(b));
        let ab = m.and(fa, fb);
        let ob = m.or(fa, fb);
        let d = m.xor(ab, ob);
        // and ≠ or exactly when the two variables differ.
        let witness = m.sat_one(d).expect("functions differ");
        let mut assignment = vec![false; m.n_vars() as usize];
        for (v, val) in witness {
            assignment[v.0 as usize] = val;
        }
        assert_ne!(m.eval(ab, &assignment), m.eval(ob, &assignment));
        let same = m.xor(ab, ab);
        assert_eq!(same, FALSE);
        assert!(m.sat_one(same).is_none());
    }

    #[test]
    fn implication_and_support() {
        let mut m = BddManager::new();
        let (a, b) = (m.fresh_var(), m.fresh_var());
        let (fa, fb) = (m.var(a), m.var(b));
        let ab = m.and(fa, fb);
        assert!(m.implies(ab, fa));
        assert!(!m.implies(fa, ab));
        assert_eq!(m.support(ab), vec![a, b]);
        // b cancels out of (a ∧ b) ∨ (a ∧ ¬b).
        let nb = m.not(fb);
        let anb = m.and(fa, nb);
        let just_a = m.or(ab, anb);
        assert_eq!(just_a, fa);
        assert_eq!(m.support(just_a), vec![a]);
    }

    #[test]
    fn eval_walks_assignments() {
        let mut m = BddManager::new();
        let vars: Vec<BVar> = (0..4).map(|_| m.fresh_var()).collect();
        let fs: Vec<NodeId> = vars.iter().map(|&v| m.var(v)).collect();
        // (v0 ∨ v1) ∧ (v2 ∨ v3): check against direct computation on all
        // 16 assignments.
        let a = m.or(fs[0], fs[1]);
        let b = m.or(fs[2], fs[3]);
        let f = m.and(a, b);
        for bits in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            let expect = (assignment[0] || assignment[1]) && (assignment[2] || assignment[3]);
            assert_eq!(m.eval(f, &assignment), expect, "bits {bits:04b}");
        }
    }
}
