//! Plan lints: rule-based diagnostics layered on the semantic analysis.
//!
//! Where [`analyze_plan`](super::analyze_plan) answers *"is this plan
//! correct?"*, the lints answer *"is it sensible?"* — dead work,
//! duplicated queries, provably oversized semijoin inputs, and Bloom
//! supersets that leak into the answer. Each rule implements [`Lint`]
//! and reports structured [`Diagnostic`]s with a severity and a 1-based
//! step number, so the CLI and the optimizer's debug checks can render
//! them uniformly.

use super::{analyze_plan, Analysis};
use crate::plan::{Plan, RelVar, Step, VarId};
use fusion_types::error::Result;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Wasteful but harmless: the plan still computes the fusion query.
    Warning,
    /// Correctness-threatening: the result set can be wrong.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired, e.g. `dead-step`.
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// 1-based number of the offending step.
    pub step: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: step {}: {} [{}]",
            self.severity, self.step, self.message, self.rule
        )
    }
}

/// A lint rule over an analyzed plan.
pub trait Lint {
    /// Stable rule identifier (kebab-case).
    fn name(&self) -> &'static str;
    /// Runs the rule; the analysis is mutable because some rules pose
    /// further BDD queries (subset tests, substitution re-analysis).
    fn check(&self, plan: &Plan, analysis: &mut Analysis) -> Vec<Diagnostic>;
}

/// An ordered collection of lint rules.
pub struct LintRegistry {
    rules: Vec<Box<dyn Lint>>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> LintRegistry {
        LintRegistry { rules: Vec::new() }
    }

    /// All built-in rules.
    pub fn default_rules() -> LintRegistry {
        let mut r = LintRegistry::new();
        r.register(Box::new(DeadStep));
        r.register(Box::new(DuplicateQuery));
        r.register(Box::new(SupersetSemijoinInput));
        r.register(Box::new(LoadedUnused));
        r.register(Box::new(BloomNotReintersected));
        r
    }

    /// Adds a rule.
    pub fn register(&mut self, rule: Box<dyn Lint>) {
        self.rules.push(rule);
    }

    /// Names of the registered rules, in run order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Runs every rule, returning findings sorted by step then rule.
    pub fn run(&self, plan: &Plan, analysis: &mut Analysis) -> Vec<Diagnostic> {
        let mut out: Vec<Diagnostic> = self
            .rules
            .iter()
            .flat_map(|r| r.check(plan, analysis))
            .collect();
        out.sort_by_key(|d| (d.step, d.rule));
        out
    }
}

impl Default for LintRegistry {
    fn default() -> LintRegistry {
        LintRegistry::default_rules()
    }
}

/// Analyzes a plan and runs the default lint rules.
///
/// # Errors
/// Propagates structural validation failure from the analysis.
pub fn lint_plan(plan: &Plan) -> Result<Vec<Diagnostic>> {
    let mut analysis = analyze_plan(plan)?;
    Ok(LintRegistry::default_rules().run(plan, &mut analysis))
}

/// Which steps contribute to the result: walk the use-def chains
/// backwards from the result variable. Returns (per-step liveness,
/// per-relvar liveness).
fn live_steps(plan: &Plan) -> (Vec<bool>, Vec<bool>) {
    let mut def_of: Vec<Option<usize>> = vec![None; plan.var_names.len()];
    for (t, s) in plan.steps.iter().enumerate() {
        if let Some(v) = s.defined_var() {
            def_of[v.0] = Some(t);
        }
    }
    let mut live = vec![false; plan.steps.len()];
    let mut live_rel = vec![false; plan.rel_names.len()];
    let mut stack: Vec<VarId> = vec![plan.result];
    while let Some(v) = stack.pop() {
        let Some(t) = def_of.get(v.0).copied().flatten() else {
            continue;
        };
        if live[t] {
            continue;
        }
        live[t] = true;
        stack.extend(plan.steps[t].used_vars());
        if let Step::LocalSq { rel, .. } = &plan.steps[t] {
            live_rel[rel.0] = true;
        }
    }
    // An lq step is live iff its relation feeds a live local selection.
    for (t, s) in plan.steps.iter().enumerate() {
        if let Step::Lq { out, .. } = s {
            live[t] = live_rel[out.0];
        }
    }
    (live, live_rel)
}

/// `dead-step`: a step whose output never reaches the result.
struct DeadStep;

impl Lint for DeadStep {
    fn name(&self) -> &'static str {
        "dead-step"
    }

    fn check(&self, plan: &Plan, _analysis: &mut Analysis) -> Vec<Diagnostic> {
        let (live, _) = live_steps(plan);
        plan.steps
            .iter()
            .enumerate()
            // Unused loads are `loaded-unused`'s finding, not ours.
            .filter(|(t, s)| !live[*t] && !matches!(s, Step::Lq { .. }))
            .map(|(t, s)| {
                let what = s
                    .defined_var()
                    .map_or_else(String::new, |v| plan.var_name(v).to_string());
                Diagnostic {
                    rule: self.name(),
                    severity: Severity::Warning,
                    step: t + 1,
                    message: format!("{what} never contributes to the result"),
                }
            })
            .collect()
    }
}

/// `duplicate-query`: the same remote work issued twice.
struct DuplicateQuery;

impl Lint for DuplicateQuery {
    fn name(&self) -> &'static str {
        "duplicate-query"
    }

    fn check(&self, plan: &Plan, analysis: &mut Analysis) -> Vec<Diagnostic> {
        use std::collections::HashMap;
        let mut out = Vec::new();
        // Selections (remote or over a loaded copy) keyed by
        // (condition, source): identical ones return identical sets.
        let mut selections: HashMap<(usize, usize), usize> = HashMap::new();
        // Semijoins keyed by (condition, source, input).
        let mut semijoins: HashMap<(usize, usize, usize), usize> = HashMap::new();
        for (t, s) in plan.steps.iter().enumerate() {
            let key_step = match s {
                Step::Sq { cond, source, .. } => Some((cond.0, source.0)),
                Step::LocalSq { cond, rel, .. } => {
                    analysis.loaded_source(*rel).map(|j| (cond.0, j))
                }
                _ => None,
            };
            if let Some(key) = key_step {
                if let Some(&first) = selections.get(&key) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Warning,
                        step: t + 1,
                        message: format!(
                            "repeats the selection sq(c{}, R{}) of step {}",
                            key.0 + 1,
                            key.1 + 1,
                            first + 1
                        ),
                    });
                } else {
                    selections.insert(key, t);
                }
            }
            if let Step::Sjq {
                cond,
                source,
                input,
                ..
            } = s
            {
                let key = (cond.0, source.0, input.0);
                if let Some(&first) = semijoins.get(&key) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Warning,
                        step: t + 1,
                        message: format!(
                            "repeats the semijoin sjq(c{}, R{}, {}) of step {}",
                            cond.0 + 1,
                            source.0 + 1,
                            plan.var_name(*input),
                            first + 1
                        ),
                    });
                } else {
                    semijoins.insert(key, t);
                }
            }
        }
        out
    }
}

/// `superset-semijoin-input`: a semijoin ships set `Y` although an
/// already-available set `Z ⊊ Y` provably yields the same final result —
/// shipping the smaller set can only be cheaper (§2.4: semijoin cost
/// grows with the bindings shipped).
struct SupersetSemijoinInput;

impl Lint for SupersetSemijoinInput {
    fn name(&self) -> &'static str {
        "superset-semijoin-input"
    }

    fn check(&self, plan: &Plan, analysis: &mut Analysis) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let original = analysis.result_value();
        let mut available: Vec<VarId> = Vec::new();
        for (t, s) in plan.steps.iter().enumerate() {
            if let Step::Sjq { input, .. } | Step::SjqBloom { input, .. } = s {
                let vy = analysis.value(*input).unwrap_or(super::bdd::FALSE);
                for &z in &available {
                    if z == *input {
                        continue;
                    }
                    let vz = analysis.value(z).unwrap_or(super::bdd::FALSE);
                    if vz == super::bdd::FALSE || vz == vy {
                        continue;
                    }
                    // Z strictly below Y in every world, and swapping it
                    // in provably leaves the final result unchanged.
                    if analysis.is_subset(vz, vy)
                        && analysis.result_with_semijoin_input(plan, t, z) == original
                    {
                        out.push(Diagnostic {
                            rule: self.name(),
                            severity: Severity::Warning,
                            step: t + 1,
                            message: format!(
                                "ships {} although the provably smaller {} \
                                 yields the same result",
                                plan.var_name(*input),
                                plan.var_name(z)
                            ),
                        });
                        break;
                    }
                }
            }
            if let Some(v) = s.defined_var() {
                available.push(v);
            }
        }
        out
    }
}

/// `loaded-unused`: a source is loaded in full but its copy never feeds
/// a live local selection — pure wasted transfer (§4 loads pay `lq`'s
/// full-relation cost).
struct LoadedUnused;

impl Lint for LoadedUnused {
    fn name(&self) -> &'static str {
        "loaded-unused"
    }

    fn check(&self, plan: &Plan, _analysis: &mut Analysis) -> Vec<Diagnostic> {
        let (_, live_rel) = live_steps(plan);
        plan.steps
            .iter()
            .enumerate()
            .filter_map(|(t, s)| match s {
                Step::Lq { out, source } if !live_rel[out.0] => Some(Diagnostic {
                    rule: self.name(),
                    severity: Severity::Warning,
                    step: t + 1,
                    message: format!(
                        "loads R{} into {} but the copy never contributes to the result",
                        source.0 + 1,
                        plan.rel_name(RelVar(out.0))
                    ),
                }),
                _ => None,
            })
            .collect()
    }
}

/// `bloom-not-reintersected`: a Bloom semijoin's raw superset reaches
/// the result without being re-intersected with the exact input, so a
/// filter false positive can surface in the answer.
struct BloomNotReintersected;

impl Lint for BloomNotReintersected {
    fn name(&self) -> &'static str {
        "bloom-not-reintersected"
    }

    fn check(&self, plan: &Plan, analysis: &mut Analysis) -> Vec<Diagnostic> {
        plan.steps
            .iter()
            .enumerate()
            .filter_map(|(t, s)| match s {
                Step::SjqBloom { out, .. } if analysis.result_tainted_by_bloom(t) => {
                    Some(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Error,
                        step: t + 1,
                        message: format!(
                            "Bloom superset {} reaches the result without \
                             re-intersection; collisions can corrupt the answer",
                            plan.var_name(*out)
                        ),
                    })
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{SimplePlanSpec, SourceChoice};
    use fusion_types::{CondId, SourceId};

    fn clean_plan() -> Plan {
        SimplePlanSpec::filter(2, 2).build(2).unwrap()
    }

    fn diags(plan: &Plan) -> Vec<Diagnostic> {
        lint_plan(plan).unwrap()
    }

    #[test]
    fn clean_plans_are_quiet() {
        assert_eq!(diags(&clean_plan()), vec![]);
        let semi = SimplePlanSpec::all_semijoin(3, 2).build(2).unwrap();
        assert_eq!(diags(&semi), vec![]);
    }

    #[test]
    fn dead_step_detected() {
        let mut p = clean_plan();
        let v = p.fresh_var("DEAD");
        p.steps.push(Step::Sq {
            out: v,
            cond: CondId(0),
            source: SourceId(0),
        });
        let ds: Vec<_> = diags(&p)
            .into_iter()
            .filter(|d| d.rule == "dead-step")
            .collect();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].step, p.steps.len());
        assert_eq!(ds[0].severity, Severity::Warning);
    }

    #[test]
    fn duplicate_query_detected() {
        let mut p = clean_plan();
        // Re-issue sq(c1, R1) and fold it into the result so it is not
        // also a dead step.
        let v = p.fresh_var("DUP");
        let out = p.fresh_var("OUT");
        p.steps.push(Step::Sq {
            out: v,
            cond: CondId(0),
            source: SourceId(0),
        });
        p.steps.push(Step::Union {
            out,
            inputs: vec![p.result, v],
        });
        p.result = out;
        let d = diags(&p);
        let dup: Vec<_> = d.iter().filter(|d| d.rule == "duplicate-query").collect();
        assert_eq!(dup.len(), 1, "{d:?}");
        assert!(dup[0].message.contains("sq(c1, R1)"));
        // The extra union of a subset keeps semantics: still proved, so
        // only the duplicate fires.
        assert!(d.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn superset_semijoin_input_detected() {
        // Round 1 computes X1; round 2 semijoins with the *unioned* X1
        // at both sources, but suppose a plan shipped a looser set: take
        // the all-semijoin plan and widen one input to an earlier,
        // larger union.
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1)],
            choices: vec![
                vec![SourceChoice::Selection, SourceChoice::Selection],
                // Mixed round: the builder re-intersects with round 1, so
                // widening the semijoin input below stays correct.
                vec![SourceChoice::Semijoin, SourceChoice::Selection],
            ],
        };
        let p = spec.build(2).unwrap();
        // Find the step unioning round 1 (the semijoin input) and an
        // sq output feeding it (a strict subset).
        let (sj_step, input) = p
            .steps
            .iter()
            .enumerate()
            .find_map(|(t, s)| match s {
                Step::Sjq { input, .. } => Some((t, *input)),
                _ => None,
            })
            .unwrap();
        // Build a mutated plan shipping the union of input with an extra
        // full selection — strictly looser, result unchanged.
        let mut q = p.clone();
        let extra = q.fresh_var("WIDE1");
        let wide = q.fresh_var("WIDE");
        q.steps.insert(
            sj_step,
            Step::Sq {
                out: extra,
                cond: CondId(1),
                source: SourceId(0),
            },
        );
        q.steps.insert(
            sj_step + 1,
            Step::Union {
                out: wide,
                inputs: vec![input, extra],
            },
        );
        match &mut q.steps[sj_step + 2] {
            Step::Sjq { input, .. } => *input = wide,
            other => panic!("expected semijoin, found {other:?}"),
        }
        let d = diags(&q);
        let sup: Vec<_> = d
            .iter()
            .filter(|d| d.rule == "superset-semijoin-input")
            .collect();
        assert!(!sup.is_empty(), "{d:?}\n{}", q.listing());
        assert!(sup[0].message.contains("provably smaller"));
        // And the mutation kept the plan correct (warning, not error).
        assert!(crate::analyze::analyze_plan(&q)
            .unwrap()
            .verdict()
            .is_proved());
    }

    #[test]
    fn loaded_unused_detected() {
        let mut p = clean_plan();
        let t = p.fresh_rel("T9");
        p.steps.push(Step::Lq {
            out: t,
            source: SourceId(1),
        });
        let d = diags(&p);
        let lu: Vec<_> = d.iter().filter(|d| d.rule == "loaded-unused").collect();
        assert_eq!(lu.len(), 1);
        assert!(lu[0].message.contains("loads R2"));
        // The load defines no item-set variable: dead-step stays silent.
        assert!(d.iter().all(|d| d.rule != "dead-step"));
    }

    #[test]
    fn bloom_not_reintersected_is_an_error() {
        // All-semijoin final round: no re-intersection follows, so the
        // raw Bloom superset taints the result.
        let mut p = SimplePlanSpec::all_semijoin(2, 2).build(2).unwrap();
        let idx = p
            .steps
            .iter()
            .position(|s| matches!(s, Step::Sjq { .. }))
            .unwrap();
        if let Step::Sjq {
            out,
            cond,
            source,
            input,
        } = p.steps[idx]
        {
            p.steps[idx] = Step::SjqBloom {
                out,
                cond,
                source,
                input,
                bits: 4,
            };
        }
        let d = diags(&p);
        let bl: Vec<_> = d
            .iter()
            .filter(|d| d.rule == "bloom-not-reintersected")
            .collect();
        assert_eq!(bl.len(), 1);
        assert_eq!(bl[0].severity, Severity::Error);
        assert_eq!(bl[0].step, idx + 1);
    }

    #[test]
    fn registry_is_extensible_and_ordered() {
        struct Nag;
        impl Lint for Nag {
            fn name(&self) -> &'static str {
                "nag"
            }
            fn check(&self, plan: &Plan, _a: &mut Analysis) -> Vec<Diagnostic> {
                vec![Diagnostic {
                    rule: "nag",
                    severity: Severity::Warning,
                    step: plan.steps.len(),
                    message: "custom rule ran".into(),
                }]
            }
        }
        let mut reg = LintRegistry::default_rules();
        reg.register(Box::new(Nag));
        assert!(reg.rule_names().contains(&"nag"));
        let p = clean_plan();
        let mut a = crate::analyze::analyze_plan(&p).unwrap();
        let d = reg.run(&p, &mut a);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "nag");
        let shown = d[0].to_string();
        assert!(shown.contains("warning") && shown.contains("custom rule ran"));
    }

    #[test]
    fn diagnostics_sorted_by_step() {
        let mut p = clean_plan();
        let dead = p.fresh_var("DEAD");
        let t = p.fresh_rel("T9");
        p.steps.insert(
            0,
            Step::Sq {
                out: dead,
                cond: CondId(1),
                source: SourceId(1),
            },
        );
        p.steps.push(Step::Lq {
            out: t,
            source: SourceId(0),
        });
        let d = diags(&p);
        assert!(d.len() >= 2);
        assert!(d.windows(2).all(|w| w[0].step <= w[1].step));
        // VarId used in this test's insert shifts nothing: still valid.
        assert!(d.iter().any(|x| x.rule == "dead-step" && x.step == 1));
        assert!(d
            .iter()
            .any(|x| x.rule == "loaded-unused" && x.step == p.steps.len()));
    }
}
