//! A pure reference interpreter for plans.
//!
//! Executes a plan directly over in-memory relations, with no wrappers,
//! network, or cost accounting. Its sole purpose is semantics: every
//! optimizer output and every postoptimization must compute exactly
//! [`FusionQuery::naive_answer`], and the test suite proves it against
//! this interpreter.
//!
//! [`FusionQuery::naive_answer`]: crate::query::FusionQuery::naive_answer

use crate::plan::{Plan, Step};
use fusion_types::error::{FusionError, Result};
use fusion_types::{Condition, ItemSet, Relation};

/// Evaluates `plan` for the given conditions over the source relations,
/// returning the item set of the plan's result variable.
///
/// # Errors
/// Fails if the plan is structurally invalid or a predicate fails to
/// evaluate.
pub fn evaluate_plan(
    plan: &Plan,
    conditions: &[Condition],
    sources: &[Relation],
) -> Result<ItemSet> {
    let vars = evaluate_plan_vars(plan, conditions, sources)?;
    Ok(vars[plan.result.0]
        .clone()
        .expect("validated: result defined"))
}

/// Evaluates `plan` and returns every item-set variable's final value
/// (`None` for variables the plan never defines). The dataflow soundness
/// battery uses this to compare observed cardinalities against static
/// intervals, variable by variable.
///
/// # Errors
/// Fails if the plan is structurally invalid or a predicate fails to
/// evaluate.
pub fn evaluate_plan_vars(
    plan: &Plan,
    conditions: &[Condition],
    sources: &[Relation],
) -> Result<Vec<Option<ItemSet>>> {
    plan.validate()?;
    if conditions.len() != plan.n_conditions {
        return Err(FusionError::invalid_plan(format!(
            "plan expects {} conditions, got {}",
            plan.n_conditions,
            conditions.len()
        )));
    }
    if sources.len() != plan.n_sources {
        return Err(FusionError::invalid_plan(format!(
            "plan expects {} sources, got {}",
            plan.n_sources,
            sources.len()
        )));
    }
    let mut vars: Vec<Option<ItemSet>> = vec![None; plan.var_names.len()];
    let mut rels: Vec<Option<usize>> = vec![None; plan.rel_names.len()];
    let get = |vars: &Vec<Option<ItemSet>>, v: crate::plan::VarId| -> ItemSet {
        vars[v.0].clone().expect("validated: def before use")
    };
    for step in &plan.steps {
        match step {
            Step::Sq { out, cond, source } => {
                let r = sources[source.0].select_items(&conditions[cond.0])?;
                vars[out.0] = Some(r.items);
            }
            Step::Sjq {
                out,
                cond,
                source,
                input,
            } => {
                let bindings = get(&vars, *input);
                let r = sources[source.0].semijoin_items(&conditions[cond.0], &bindings)?;
                vars[out.0] = Some(r.items);
            }
            Step::SjqBloom {
                out,
                cond,
                source,
                input,
                bits,
            } => {
                let bindings = get(&vars, *input);
                let filter = fusion_types::BloomFilter::build(&bindings, *bits as f64);
                let full = sources[source.0].select_items(&conditions[cond.0])?;
                let raw = ItemSet::from_items(
                    full.items
                        .iter()
                        .filter(|item| filter.may_contain(item))
                        .cloned(),
                );
                vars[out.0] = Some(raw);
            }
            Step::Lq { out, source } => {
                rels[out.0] = Some(source.0);
            }
            Step::LocalSq { out, cond, rel } => {
                let src = rels[rel.0].expect("validated: loaded before use");
                let r = sources[src].select_items(&conditions[cond.0])?;
                vars[out.0] = Some(r.items);
            }
            Step::Union { out, inputs } => {
                let sets: Vec<ItemSet> = inputs.iter().map(|v| get(&vars, *v)).collect();
                vars[out.0] = Some(ItemSet::union_all(sets.iter()));
            }
            Step::Intersect { out, inputs } => {
                let mut iter = inputs.iter();
                let first = get(&vars, *iter.next().expect("validated: non-empty"));
                let acc = iter.fold(first, |acc, v| acc.intersect(&get(&vars, *v)));
                vars[out.0] = Some(acc);
            }
            Step::Diff { out, left, right } => {
                let l = get(&vars, *left);
                let r = get(&vars, *right);
                vars[out.0] = Some(l.difference(&r));
            }
        }
    }
    Ok(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::{filter_plan, greedy_sja, sj_optimal, sja_optimal};
    use crate::query::FusionQuery;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Predicate};

    fn figure1() -> Vec<Relation> {
        let s = dmv_schema();
        vec![
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["J55", "dui", 1993i64],
                    tuple!["T21", "sp", 1994i64],
                    tuple!["T80", "dui", 1993i64],
                ],
            ),
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["T21", "dui", 1996i64],
                    tuple!["J55", "sp", 1996i64],
                    tuple!["T11", "sp", 1993i64],
                ],
            ),
            Relation::from_rows(
                s,
                vec![
                    tuple!["T21", "sp", 1993i64],
                    tuple!["S07", "sp", 1996i64],
                    tuple!["S07", "sp", 1993i64],
                ],
            ),
        ]
    }

    fn dmv_query() -> FusionQuery {
        FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_optimizer_outputs_compute_the_dmv_answer() {
        let q = dmv_query();
        let sources = figure1();
        let truth = q.naive_answer(&sources).unwrap();
        assert_eq!(truth, ItemSet::from_items(["J55", "T21"]));
        // Try several cost models so different shapes get exercised.
        let models = [
            TableCostModel::uniform(2, 3, 10.0, 1.0, 0.1, 1e9, 2.0, 8.0),
            TableCostModel::uniform(2, 3, 1.0, 100.0, 10.0, 1e9, 2.0, 8.0),
            TableCostModel::uniform(2, 3, 50.0, 0.1, 0.01, 1e9, 2.0, 8.0),
        ];
        for m in models {
            for opt in [
                filter_plan(&m),
                sj_optimal(&m),
                sja_optimal(&m),
                greedy_sja(&m),
            ] {
                let got = evaluate_plan(&opt.plan, q.conditions(), &sources).unwrap();
                assert_eq!(got, truth, "plan:\n{}", opt.plan);
            }
        }
    }

    #[test]
    fn arity_mismatches_are_rejected() {
        let m = TableCostModel::uniform(2, 3, 1.0, 1.0, 0.1, 1e9, 2.0, 8.0);
        let plan = filter_plan(&m).plan;
        let q = dmv_query();
        let sources = figure1();
        assert!(evaluate_plan(&plan, &q.conditions()[..1], &sources).is_err());
        assert!(evaluate_plan(&plan, q.conditions(), &sources[..2]).is_err());
    }

    #[test]
    fn extended_steps_evaluate() {
        use crate::plan::{Plan, Step, VarId};
        use fusion_types::{CondId, SourceId};
        // lq(R1); X0 := sq(c1, T); X1 := sq(c2, R2); X2 := X0 − X1.
        let mut plan = Plan::new(vec![], VarId(0), 2, 3);
        let t = plan.fresh_rel("T1");
        let x0 = plan.fresh_var("X0");
        let x1 = plan.fresh_var("X1");
        let x2 = plan.fresh_var("X2");
        plan.steps = vec![
            Step::Lq {
                out: t,
                source: SourceId(0),
            },
            Step::LocalSq {
                out: x0,
                cond: CondId(0),
                rel: t,
            },
            Step::Sq {
                out: x1,
                cond: CondId(1),
                source: SourceId(1),
            },
            Step::Diff {
                out: x2,
                left: x0,
                right: x1,
            },
        ];
        plan.result = x2;
        let q = dmv_query();
        let got = evaluate_plan(&plan, q.conditions(), &figure1()).unwrap();
        // dui items at R1 = {J55, T80}; sp items at R2 = {J55, T11};
        // difference = {T80}.
        assert_eq!(got, ItemSet::from_items(["T80"]));
    }
}
