//! The fusion query class (§2.2).

use fusion_types::error::{FusionError, Result};
use fusion_types::{Condition, ItemSet, Relation, Schema};

/// A fusion query over the union view `U = R_1 ∪ ... ∪ R_n`:
///
/// ```sql
/// SELECT u1.M
/// FROM U u1, ..., U um
/// WHERE u1.M = ... = um.M AND c1 AND ... AND cm
/// ```
///
/// where each `c_i` references only `u_i`. Semantically the answer is
///
/// ```text
/// ⋂_{i=1..m}  ⋃_{j=1..n}  { items satisfying c_i in R_j }
/// ```
#[derive(Debug, Clone)]
pub struct FusionQuery {
    schema: Schema,
    conditions: Vec<Condition>,
}

impl FusionQuery {
    /// Builds a fusion query, validating each condition against the common
    /// schema.
    ///
    /// # Errors
    /// Fails when there are no conditions or a condition references unknown
    /// attributes / mismatched types.
    pub fn new(schema: Schema, conditions: Vec<Condition>) -> Result<FusionQuery> {
        if conditions.is_empty() {
            return Err(FusionError::NotAFusionQuery {
                detail: "a fusion query needs at least one condition".into(),
            });
        }
        for (i, c) in conditions.iter().enumerate() {
            c.check(&schema).map_err(|e| FusionError::NotAFusionQuery {
                detail: format!("condition c{} invalid: {e}", i + 1),
            })?;
        }
        Ok(FusionQuery { schema, conditions })
    }

    /// The common schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The conditions `c_1..c_m`.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// `m`, the number of conditions.
    pub fn m(&self) -> usize {
        self.conditions.len()
    }

    /// Reference semantics: evaluates the query directly over the source
    /// relations, with no plan. Used as ground truth in tests.
    ///
    /// # Errors
    /// Propagates predicate evaluation errors.
    pub fn naive_answer(&self, sources: &[Relation]) -> Result<ItemSet> {
        let mut answer: Option<ItemSet> = None;
        for cond in &self.conditions {
            let mut satisfied = ItemSet::empty();
            for rel in sources {
                satisfied = satisfied.union(&rel.select_items(cond)?.items);
            }
            answer = Some(match answer {
                None => satisfied,
                Some(acc) => acc.intersect(&satisfied),
            });
        }
        Ok(answer.expect("at least one condition"))
    }

    /// Renders the query in the paper's SQL form over the union view `U`.
    pub fn to_sql(&self) -> String {
        let m = self.m();
        let merge = &self.schema.merge_attribute().name;
        let mut sql = format!("SELECT u1.{merge}\nFROM ");
        for i in 0..m {
            if i > 0 {
                sql.push_str(", ");
            }
            sql.push_str(&format!("U u{}", i + 1));
        }
        sql.push_str("\nWHERE ");
        if m > 1 {
            for i in 0..m {
                if i > 0 {
                    sql.push_str(" = ");
                }
                sql.push_str(&format!("u{}.{merge}", i + 1));
            }
            sql.push_str(" AND ");
        }
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                sql.push_str(" AND ");
            }
            sql.push_str(&prefix_condition(&c.to_string(), i + 1));
        }
        sql
    }
}

/// Prefixes bare attribute references in a rendered condition with the
/// query variable `u{idx}`. Purely cosmetic, used by [`FusionQuery::to_sql`].
fn prefix_condition(cond: &str, idx: usize) -> String {
    // Tokens starting a word that are not keywords/literals get prefixed.
    let keywords = [
        "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "IS", "NULL", "TRUE", "FALSE",
    ];
    let mut out = String::with_capacity(cond.len() + 8);
    let mut chars = cond.chars().peekable();
    let mut in_string = false;
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if !word.is_empty() {
            let up = word.to_uppercase();
            if keywords.contains(&up.as_str())
                || word.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                out.push_str(word);
            } else {
                out.push_str(&format!("u{idx}.{word}"));
            }
            word.clear();
        }
    };
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if c == '\'' {
                if chars.peek() == Some(&'\'') {
                    out.push(chars.next().expect("peeked"));
                } else {
                    in_string = false;
                }
            }
            continue;
        }
        if c == '\'' {
            flush(&mut word, &mut out);
            in_string = true;
            out.push(c);
        } else if c.is_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            flush(&mut word, &mut out);
            out.push(c);
        }
    }
    flush(&mut word, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Predicate};

    /// Figure 1 of the paper: three DMV relations.
    pub fn figure1_sources() -> Vec<Relation> {
        let s = dmv_schema();
        vec![
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["J55", "dui", 1993i64],
                    tuple!["T21", "sp", 1994i64],
                    tuple!["T80", "dui", 1993i64],
                ],
            ),
            Relation::from_rows(
                s.clone(),
                vec![
                    tuple!["T21", "dui", 1996i64],
                    tuple!["J55", "sp", 1996i64],
                    tuple!["T11", "sp", 1993i64],
                ],
            ),
            Relation::from_rows(
                s,
                vec![
                    tuple!["T21", "sp", 1993i64],
                    tuple!["S07", "sp", 1996i64],
                    tuple!["S07", "sp", 1993i64],
                ],
            ),
        ]
    }

    fn dmv_query() -> FusionQuery {
        FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "sp").into(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure1_answer_is_j55_and_t21() {
        // "the driver with license J55 satisfies this query", and T21 has
        // dui at R2 and sp at R1/R3.
        let ans = dmv_query().naive_answer(&figure1_sources()).unwrap();
        assert_eq!(ans, ItemSet::from_items(["J55", "T21"]));
    }

    #[test]
    fn single_condition_is_plain_union() {
        let q = FusionQuery::new(dmv_schema(), vec![Predicate::eq("V", "dui").into()]).unwrap();
        let ans = q.naive_answer(&figure1_sources()).unwrap();
        assert_eq!(ans, ItemSet::from_items(["J55", "T80", "T21"]));
    }

    #[test]
    fn unsatisfiable_condition_gives_empty_answer() {
        let q = FusionQuery::new(
            dmv_schema(),
            vec![
                Predicate::eq("V", "dui").into(),
                Predicate::eq("V", "no-such-violation").into(),
            ],
        )
        .unwrap();
        assert!(q.naive_answer(&figure1_sources()).unwrap().is_empty());
    }

    #[test]
    fn empty_conditions_rejected() {
        assert!(FusionQuery::new(dmv_schema(), vec![]).is_err());
    }

    #[test]
    fn invalid_condition_rejected() {
        let err =
            FusionQuery::new(dmv_schema(), vec![Predicate::eq("NOPE", 1i64).into()]).unwrap_err();
        assert!(matches!(err, FusionError::NotAFusionQuery { .. }));
    }

    #[test]
    fn to_sql_matches_paper_shape() {
        let sql = dmv_query().to_sql();
        assert_eq!(
            sql,
            "SELECT u1.L\nFROM U u1, U u2\nWHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
        );
    }

    #[test]
    fn to_sql_single_condition_has_no_merge_chain() {
        let q = FusionQuery::new(dmv_schema(), vec![Predicate::eq("V", "dui").into()]).unwrap();
        assert_eq!(q.to_sql(), "SELECT u1.L\nFROM U u1\nWHERE u1.V = 'dui'");
    }

    #[test]
    fn prefixing_leaves_keywords_and_literals_alone() {
        let got = prefix_condition("V = 'dui' AND D BETWEEN 1990 AND 1995", 2);
        assert_eq!(got, "u2.V = 'dui' AND u2.D BETWEEN 1990 AND 1995");
        let got = prefix_condition("V LIKE 'a''b%'", 1);
        assert_eq!(got, "u1.V LIKE 'a''b%'");
    }
}
