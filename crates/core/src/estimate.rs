//! Optimizer-side cost and cardinality estimation for arbitrary plans.
//!
//! The SJ/SJA algorithms price plans incrementally as they build them, but
//! the postoptimizer (§4) transforms *finished* plans and must re-price
//! them, and the estimated-vs-actual experiments need a cost estimate for
//! any plan shape. This walker prices every plan the IR can express,
//! chaining cardinalities with the same independence assumptions the
//! optimizers use.

use crate::cost::CostModel;
use crate::plan::{Plan, Step};
use fusion_stats::union_estimate;
use fusion_types::Cost;

/// The estimator's verdict on a plan.
#[derive(Debug, Clone)]
pub struct PlanEstimate {
    /// Estimated total cost (sum of remote-operation costs, §2.4).
    pub cost: Cost,
    /// Per-step costs, aligned with `plan.steps` (local steps are zero).
    pub step_costs: Vec<Cost>,
    /// Per-source totals, indexed by source id.
    pub per_source: Vec<Cost>,
    /// Estimated cardinality of the result variable.
    pub result_items: f64,
    /// Estimated cardinality of every item-set variable (indexed by
    /// `VarId`; zero for never-defined slots).
    pub var_items: Vec<f64>,
}

/// Estimates the cost and result size of `plan` under `model`.
///
/// Cardinality rules (independence assumptions, §1 step 3):
/// * `sq(c, R_j)` → the model's per-source estimate;
/// * `sjq(c, R_j, X)` → `|X| · source_sel(c, j)`;
/// * local `sq(c, T_j)` → same as remote `sq` (same data, no cost);
/// * union → urn-model overlap-aware union over the domain;
/// * intersection → `domain · Π (|Y_i| / domain)`;
/// * difference → `|Y| · (1 − |Z| / domain)`.
///
/// # Panics
/// Panics if the plan is structurally invalid; run
/// [`Plan::validate`] first when the plan comes from outside.
pub fn estimate_plan_cost<M: CostModel>(plan: &Plan, model: &M) -> PlanEstimate {
    let domain = model.domain_size().max(0.0);
    let mut var_est: Vec<f64> = vec![0.0; plan.var_names.len()];
    let mut rel_source: Vec<Option<fusion_types::SourceId>> = vec![None; plan.rel_names.len()];
    let mut step_costs = Vec::with_capacity(plan.steps.len());
    let mut per_source = vec![Cost::ZERO; plan.n_sources];
    let mut total = Cost::ZERO;
    for step in &plan.steps {
        let cost = match step {
            Step::Sq { out, cond, source } => {
                var_est[out.0] = model.est_sq_items(*cond, *source);
                model.sq_cost(*cond, *source)
            }
            Step::Sjq {
                out,
                cond,
                source,
                input,
            } => {
                let k = var_est[input.0];
                var_est[out.0] = k * model.source_sel(*cond, *source);
                if k == 0.0 {
                    // The executor never ships an empty binding set: the
                    // semijoin degenerates to a free local no-op (the
                    // ledger records zero), and the estimate must agree.
                    Cost::ZERO
                } else {
                    model.sjq_cost(*cond, *source, k)
                }
            }
            Step::SjqBloom {
                out,
                cond,
                source,
                input,
                bits,
            } => {
                let k = var_est[input.0];
                let true_matches = k * model.source_sel(*cond, *source);
                let fpr = fusion_types::bloom::expected_fpr_for_bits(*bits as f64);
                let extra = (model.est_sq_items(*cond, *source) - true_matches).max(0.0);
                var_est[out.0] = true_matches + fpr * extra;
                model.sjq_bloom_cost(*cond, *source, k, *bits)
            }
            Step::Lq { out, source } => {
                rel_source[out.0] = Some(*source);
                model.lq_cost(*source)
            }
            Step::LocalSq { out, cond, rel } => {
                let source = rel_source[rel.0].expect("validated: relation loaded before use");
                var_est[out.0] = model.est_sq_items(*cond, source);
                Cost::ZERO
            }
            Step::Union { out, inputs } => {
                let parts: Vec<f64> = inputs.iter().map(|v| var_est[v.0]).collect();
                var_est[out.0] = if domain > 0.0 {
                    union_estimate(&parts, domain)
                } else {
                    parts.iter().sum()
                };
                Cost::ZERO
            }
            Step::Intersect { out, inputs } => {
                var_est[out.0] = if domain > 0.0 {
                    let frac = inputs
                        .iter()
                        .map(|v| (var_est[v.0] / domain).clamp(0.0, 1.0))
                        .product::<f64>();
                    domain * frac
                } else {
                    0.0
                };
                Cost::ZERO
            }
            Step::Diff { out, left, right } => {
                let keep = if domain > 0.0 {
                    1.0 - (var_est[right.0] / domain).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                var_est[out.0] = var_est[left.0] * keep;
                Cost::ZERO
            }
        };
        if let Some(src) = step.source() {
            per_source[src.0] += cost;
        }
        total += cost;
        step_costs.push(cost);
    }
    PlanEstimate {
        cost: total,
        step_costs,
        per_source,
        result_items: var_est[plan.result.0],
        var_items: var_est,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::optimizer::{filter_plan, sja_optimal};
    use crate::plan::{SimplePlanSpec, Step, VarId};
    use fusion_types::{CondId, SourceId};

    fn model() -> TableCostModel {
        TableCostModel::uniform(3, 2, 10.0, 1.0, 0.1, 100.0, 5.0, 1000.0)
    }

    #[test]
    fn walker_agrees_with_optimizer_pricing() {
        // The estimator must reproduce the incremental costs computed
        // during search: exactly for filter plans, and up to the slightly
        // different cardinality composition (union-of-semijoins vs chain
        // rule) for adaptive plans.
        let m = model();
        let f = filter_plan(&m);
        let est = estimate_plan_cost(&f.plan, &m);
        assert!(
            (est.cost.value() - f.cost.value()).abs() < 1e-9,
            "estimator {} vs optimizer {}",
            est.cost,
            f.cost
        );
        let a = sja_optimal(&m);
        let est = estimate_plan_cost(&a.plan, &m);
        let rel = (est.cost.value() - a.cost.value()).abs() / a.cost.value();
        assert!(rel < 1e-3, "estimator {} vs optimizer {}", est.cost, a.cost);
    }

    #[test]
    fn per_source_totals_sum_to_total() {
        let m = model();
        let opt = sja_optimal(&m);
        let est = estimate_plan_cost(&opt.plan, &m);
        let sum: Cost = est.per_source.iter().copied().sum();
        assert!((sum.value() - est.cost.value()).abs() < 1e-9);
        let steps: Cost = est.step_costs.iter().copied().sum();
        assert!((steps.value() - est.cost.value()).abs() < 1e-9);
    }

    #[test]
    fn local_steps_are_free() {
        let m = model();
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let est = estimate_plan_cost(&plan, &m);
        for (step, cost) in plan.steps.iter().zip(&est.step_costs) {
            if !step.is_remote() {
                assert_eq!(*cost, Cost::ZERO);
            }
        }
    }

    #[test]
    fn diff_and_loading_estimates() {
        // Hand-build: X0 := sq(c1,R1); X1 := sq(c1,R2); X2 := X0 − X1;
        // T0 := lq(R1); X3 := sq(c2, T0).
        let mut plan = crate::plan::Plan::new(vec![], VarId(0), 2, 2);
        let x0 = plan.fresh_var("X0");
        let x1 = plan.fresh_var("X1");
        let x2 = plan.fresh_var("X2");
        let t0 = plan.fresh_rel("T0");
        let x3 = plan.fresh_var("X3");
        plan.steps = vec![
            Step::Sq {
                out: x0,
                cond: CondId(0),
                source: SourceId(0),
            },
            Step::Sq {
                out: x1,
                cond: CondId(0),
                source: SourceId(1),
            },
            Step::Diff {
                out: x2,
                left: x0,
                right: x1,
            },
            Step::Lq {
                out: t0,
                source: SourceId(0),
            },
            Step::LocalSq {
                out: x3,
                cond: CondId(1),
                rel: t0,
            },
        ];
        plan.result = x3;
        plan.validate().unwrap();
        let m = model();
        let est = estimate_plan_cost(&plan, &m);
        // Cost: two sq (10 each) + one lq (100).
        assert_eq!(est.cost, Cost::new(120.0));
        // Result: est_sq_items of (c2, R1) = 5.
        assert_eq!(est.result_items, 5.0);
    }

    #[test]
    fn empty_input_semijoin_is_priced_free() {
        // When the running set is estimated empty, the executor's
        // semijoin no-op ships nothing and the ledger records zero; the
        // estimator must price the step identically.
        let mut m = model();
        for j in 0..2 {
            m.set_est_sq_items(CondId(0), SourceId(j), 0.0);
        }
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1)],
            choices: vec![
                vec![crate::plan::SourceChoice::Selection; 2],
                vec![crate::plan::SourceChoice::Semijoin; 2],
            ],
        };
        let plan = spec.build(2).unwrap();
        let est = estimate_plan_cost(&plan, &m);
        for (step, cost) in plan.steps.iter().zip(&est.step_costs) {
            if matches!(step, Step::Sjq { .. }) {
                assert_eq!(*cost, Cost::ZERO);
            }
        }
        // Only the two first-round selections are charged.
        assert_eq!(est.cost, Cost::new(20.0));
    }

    #[test]
    fn sjq_shrinks_cardinality() {
        let m = model();
        let spec = SimplePlanSpec {
            order: vec![CondId(0), CondId(1)],
            choices: vec![
                vec![crate::plan::SourceChoice::Selection; 2],
                vec![crate::plan::SourceChoice::Semijoin; 2],
            ],
        };
        let plan = spec.build(2).unwrap();
        let est = estimate_plan_cost(&plan, &m);
        // |X1| ≈ 10 (two 5-item sets, nearly disjoint in a 1000 domain);
        // each semijoin keeps 5/1000 of it; union of the two ≈ 0.1.
        assert!(est.result_items < 0.2, "got {}", est.result_items);
    }
}
