//! Cache-aware cost model: the optimizer's view of a warm cache.
//!
//! [`CacheSnapshot`] freezes which `(condition, source)` pairs the
//! cache can serve *right now* (and under which epochs), and
//! [`CachedCostModel`] decorates any base [`CostModel`] so warm
//! selections cost their local price — zero, by the paper's §2.4 axiom
//! that mediator-local work is free. Because every optimizer (FILTER,
//! SJ, SJA, greedy, SJA+) is generic over [`CostModel`], wrapping the
//! model is all it takes for plans to provably re-order around cached
//! answers; the PR-3 interval analysis stays sound because a served
//! hit's true cost is exactly zero transfer and zero source work.

use fusion_core::cost::CostModel;
use fusion_types::{CondId, Cost, SourceId};

/// A point-in-time view of cache coverage for one query's conditions.
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    /// `covered[i][j]` — condition `i` is servable from source `j`'s
    /// cached entries (exact or by subsumption).
    covered: Vec<Vec<bool>>,
    /// Source epochs at snapshot time, for staleness detection.
    epochs: Vec<u64>,
}

impl CacheSnapshot {
    /// Builds a snapshot from explicit coverage and epochs.
    pub fn new(covered: Vec<Vec<bool>>, epochs: Vec<u64>) -> CacheSnapshot {
        CacheSnapshot { covered, epochs }
    }

    /// A cold snapshot: nothing covered, all epochs zero.
    pub fn cold(n_conditions: usize, n_sources: usize) -> CacheSnapshot {
        CacheSnapshot {
            covered: vec![vec![false; n_sources]; n_conditions],
            epochs: vec![0; n_sources],
        }
    }

    /// True when `sq(cond, source)` would be served from cache.
    pub fn covers(&self, cond: CondId, source: SourceId) -> bool {
        self.covered
            .get(cond.0)
            .and_then(|row| row.get(source.0))
            .copied()
            .unwrap_or(false)
    }

    /// True when at least one pair is covered.
    pub fn any_covered(&self) -> bool {
        self.covered.iter().flatten().any(|&b| b)
    }

    /// Source epochs at snapshot time.
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }
}

/// A [`CostModel`] decorator pricing cache-covered selections at zero.
///
/// Only `sq_cost` is affected: semijoins and loads always go to the
/// source (the cache stores selection answers), and cardinality
/// estimates are unchanged — a cached answer has the same size as a
/// fresh one, so semijoin chaining stays correct.
#[derive(Debug)]
pub struct CachedCostModel<'a, M: CostModel + ?Sized> {
    inner: &'a M,
    snapshot: &'a CacheSnapshot,
}

impl<'a, M: CostModel + ?Sized> CachedCostModel<'a, M> {
    /// Decorates `inner` with the snapshot's coverage.
    pub fn new(inner: &'a M, snapshot: &'a CacheSnapshot) -> CachedCostModel<'a, M> {
        CachedCostModel { inner, snapshot }
    }
}

impl<M: CostModel + ?Sized> CostModel for CachedCostModel<'_, M> {
    fn n_conditions(&self) -> usize {
        self.inner.n_conditions()
    }

    fn n_sources(&self) -> usize {
        self.inner.n_sources()
    }

    fn sq_cost(&self, cond: CondId, source: SourceId) -> Cost {
        if self.snapshot.covers(cond, source) {
            Cost::ZERO
        } else {
            self.inner.sq_cost(cond, source)
        }
    }

    fn sjq_cost(&self, cond: CondId, source: SourceId, est_items: f64) -> Cost {
        self.inner.sjq_cost(cond, source, est_items)
    }

    fn lq_cost(&self, source: SourceId) -> Cost {
        self.inner.lq_cost(source)
    }

    fn sjq_bloom_cost(&self, cond: CondId, source: SourceId, est_items: f64, bits: u8) -> Cost {
        self.inner.sjq_bloom_cost(cond, source, est_items, bits)
    }

    fn est_sq_items(&self, cond: CondId, source: SourceId) -> f64 {
        self.inner.est_sq_items(cond, source)
    }

    fn domain_size(&self) -> f64 {
        self.inner.domain_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat;

    impl CostModel for Flat {
        fn n_conditions(&self) -> usize {
            2
        }
        fn n_sources(&self) -> usize {
            2
        }
        fn sq_cost(&self, _: CondId, _: SourceId) -> Cost {
            Cost::new(7.0)
        }
        fn sjq_cost(&self, _: CondId, _: SourceId, est: f64) -> Cost {
            Cost::new(1.0 + est)
        }
        fn lq_cost(&self, _: SourceId) -> Cost {
            Cost::new(100.0)
        }
        fn est_sq_items(&self, _: CondId, _: SourceId) -> f64 {
            10.0
        }
        fn domain_size(&self) -> f64 {
            40.0
        }
    }

    #[test]
    fn warm_pairs_cost_zero_everything_else_delegates() {
        let snap = CacheSnapshot::new(vec![vec![true, false], vec![false, false]], vec![0, 0]);
        let m = CachedCostModel::new(&Flat, &snap);
        assert_eq!(m.sq_cost(CondId(0), SourceId(0)), Cost::ZERO);
        assert_eq!(m.sq_cost(CondId(0), SourceId(1)), Cost::new(7.0));
        assert_eq!(m.sq_cost(CondId(1), SourceId(0)), Cost::new(7.0));
        assert_eq!(m.sjq_cost(CondId(0), SourceId(0), 5.0), Cost::new(6.0));
        assert_eq!(m.lq_cost(SourceId(0)), Cost::new(100.0));
        // Cardinality estimates are untouched: a hit is the same answer.
        assert_eq!(m.est_sq_items(CondId(0), SourceId(0)), 10.0);
        assert_eq!(m.domain_size(), 40.0);
        assert!(snap.any_covered());
    }

    #[test]
    fn cold_snapshot_is_transparent() {
        let snap = CacheSnapshot::cold(2, 2);
        let m = CachedCostModel::new(&Flat, &snap);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(m.sq_cost(CondId(i), SourceId(j)), Cost::new(7.0));
            }
        }
        assert!(!snap.any_covered());
        assert!(!snap.covers(CondId(5), SourceId(5)));
    }
}
