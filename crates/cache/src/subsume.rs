//! Condition-containment prover for subsumption lookups.
//!
//! A cached answer for a *broad* condition can serve a *narrow* query
//! condition after a local residual filter exactly when every tuple
//! satisfying the narrow condition also satisfies the broad one. This
//! module decides that containment by compiling both predicates to a
//! BDD over shared comparison atoms plus *theory axioms* — clauses
//! relating atoms on the same attribute that hold for every possible
//! attribute value — and checking that `narrow ∧ ¬broad` is
//! unsatisfiable under the axioms.
//!
//! The prover is **sound but incomplete**: a `true` answer is a proof
//! of containment (only order-theoretic facts valid in *every* totally
//! ordered domain are used — no density or integer-adjacency reasoning),
//! while a `false` answer merely means no proof was found. Incomplete
//! is safe here: a missed subsumption is a cache miss, never a wrong
//! answer.

use fusion_core::analyze::bdd::{BddManager, NodeId, FALSE, TRUE};
use fusion_types::{CmpOp, Predicate, Value};
use std::collections::HashMap;

/// An atomic predicate after normalization, usable as a BDD variable key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Atom {
    /// `attr op value` with a non-NULL literal.
    Cmp {
        attr: String,
        op: CmpOp,
        value: Value,
    },
    /// `attr LIKE pattern` — opaque beyond structural equality.
    Like { attr: String, pattern: String },
    /// `attr IS NULL`.
    IsNull { attr: String },
    /// `attr BETWEEN lo AND hi` with a NULL bound — opaque (NULL bounds
    /// compare through the raw value order, unlike [`Predicate::Cmp`]).
    OpaqueBetween { attr: String, lo: Value, hi: Value },
}

impl Atom {
    fn attr(&self) -> &str {
        match self {
            Atom::Cmp { attr, .. }
            | Atom::Like { attr, .. }
            | Atom::IsNull { attr }
            | Atom::OpaqueBetween { attr, .. } => attr,
        }
    }

    /// True for atoms that are false on a NULL attribute value.
    fn null_rejecting(&self) -> bool {
        !matches!(self, Atom::IsNull { .. })
    }
}

/// Atom-to-BDD-variable environment shared by both predicates.
struct Env {
    mgr: BddManager,
    vars: HashMap<Atom, NodeId>,
    order: Vec<Atom>,
}

impl Env {
    fn new() -> Env {
        Env {
            mgr: BddManager::new(),
            vars: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn atom(&mut self, a: Atom) -> NodeId {
        if let Some(&n) = self.vars.get(&a) {
            return n;
        }
        let v = self.mgr.fresh_var();
        let n = self.mgr.var(v);
        self.vars.insert(a.clone(), n);
        self.order.push(a);
        n
    }
}

/// Compiles a predicate to a BDD node over the shared atom environment.
fn compile(env: &mut Env, p: &Predicate) -> NodeId {
    match p {
        Predicate::Cmp { attr, op, value } => {
            // A NULL literal fails every comparison for every tuple.
            if matches!(value, Value::Null) {
                FALSE
            } else {
                env.atom(Atom::Cmp {
                    attr: attr.clone(),
                    op: *op,
                    value: value.clone(),
                })
            }
        }
        Predicate::Between { attr, lo, hi } => {
            // With non-NULL bounds, BETWEEN evaluates exactly like the
            // conjunction of the two closed comparisons.
            if matches!(lo, Value::Null) || matches!(hi, Value::Null) {
                env.atom(Atom::OpaqueBetween {
                    attr: attr.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                })
            } else {
                let a = compile(env, &Predicate::cmp(attr.clone(), CmpOp::Ge, lo.clone()));
                let b = compile(env, &Predicate::cmp(attr.clone(), CmpOp::Le, hi.clone()));
                env.mgr.and(a, b)
            }
        }
        Predicate::InList { attr, values } => {
            // `v IN (…)` is the disjunction of equalities; NULL list
            // members never match, mirroring the evaluator.
            let mut acc = FALSE;
            for v in values {
                let e = compile(env, &Predicate::eq(attr.clone(), v.clone()));
                acc = env.mgr.or(acc, e);
            }
            acc
        }
        Predicate::Like { attr, pattern } => env.atom(Atom::Like {
            attr: attr.clone(),
            pattern: pattern.clone(),
        }),
        Predicate::IsNull { attr } => env.atom(Atom::IsNull { attr: attr.clone() }),
        Predicate::And(ps) => {
            let mut acc = TRUE;
            for q in ps {
                let n = compile(env, q);
                acc = env.mgr.and(acc, n);
            }
            acc
        }
        Predicate::Or(ps) => {
            let mut acc = FALSE;
            for q in ps {
                let n = compile(env, q);
                acc = env.mgr.or(acc, n);
            }
            acc
        }
        Predicate::Not(q) => {
            let n = compile(env, q);
            env.mgr.not(n)
        }
        Predicate::Const(b) => {
            if *b {
                TRUE
            } else {
                FALSE
            }
        }
    }
}

/// The point set a comparison atom denotes, in shapes whose pairwise
/// relations are decidable over *every* totally ordered domain.
#[derive(Debug, Clone, Copy)]
enum Shape<'a> {
    /// `{v}`.
    Point(&'a Value),
    /// Everything except `{v}`.
    CoPoint(&'a Value),
    /// `(-∞, v)` or `(-∞, v]`.
    Down(&'a Value, bool),
    /// `(v, +∞)` or `[v, +∞)`.
    Up(&'a Value, bool),
}

fn shape(op: CmpOp, v: &Value) -> Shape<'_> {
    match op {
        CmpOp::Eq => Shape::Point(v),
        CmpOp::Ne => Shape::CoPoint(v),
        CmpOp::Lt => Shape::Down(v, false),
        CmpOp::Le => Shape::Down(v, true),
        CmpOp::Gt => Shape::Up(v, false),
        CmpOp::Ge => Shape::Up(v, true),
    }
}

/// The complement of a comparison, restricted to non-NULL values.
fn negated(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// Membership of a concrete point in a shape.
fn member(x: &Value, s: Shape<'_>) -> bool {
    match s {
        Shape::Point(v) => x == v,
        Shape::CoPoint(v) => x != v,
        Shape::Down(v, closed) => x < v || (closed && x == v),
        Shape::Up(v, closed) => x > v || (closed && x == v),
    }
}

/// True when the two shapes are disjoint in **every** totally ordered
/// domain. Conservative: discrete-domain-only disjointness (e.g.
/// integer adjacency) is not claimed.
fn provably_disjoint(a: Shape<'_>, b: Shape<'_>) -> bool {
    match (a, b) {
        (Shape::Point(u), s) | (s, Shape::Point(u)) => !member(u, s),
        (Shape::Down(v1, c1), Shape::Up(v2, c2)) | (Shape::Up(v2, c2), Shape::Down(v1, c1)) => {
            v1 < v2 || (v1 == v2 && !(c1 && c2))
        }
        // CoPoint/Down/Up pairs of the remaining combinations always
        // intersect in some domain: no generic disjointness.
        _ => false,
    }
}

/// Decides whether `narrow ⊆ broad`: every tuple satisfying `narrow`
/// also satisfies `broad`, for every relation instance. Sound — `true`
/// is a proof; `false` only means "not proved".
pub fn subsumes(broad: &Predicate, narrow: &Predicate) -> bool {
    let mut env = Env::new();
    let fb = compile(&mut env, broad);
    let fn_ = compile(&mut env, narrow);
    // Fast paths: identical functions, or constant extremes.
    if fn_ == fb || fn_ == FALSE || fb == TRUE {
        return true;
    }

    // Counterexample candidate: narrow ∧ ¬broad.
    let not_b = env.mgr.not(fb);
    let mut cex = env.mgr.and(fn_, not_b);
    if cex == FALSE {
        return true;
    }

    // Theory axioms. Group atoms per attribute.
    let atoms: Vec<Atom> = env.order.clone();
    let mut by_attr: HashMap<&str, Vec<&Atom>> = HashMap::new();
    for a in &atoms {
        by_attr.entry(a.attr()).or_default().push(a);
    }
    for group in by_attr.values() {
        // One nullness witness per attribute: the IS NULL atom if the
        // predicates mention it, else a fresh variable. Every
        // null-rejecting atom is false on a NULL value, so axioms about
        // *negated* comparisons must allow NULL as the explanation.
        let isnull = group
            .iter()
            .find(|a| matches!(a, Atom::IsNull { .. }))
            .map(|a| env.vars[*a]);
        let null_var = match isnull {
            Some(n) => n,
            None => {
                let v = env.mgr.fresh_var();
                env.mgr.var(v)
            }
        };
        // Axiom: a null-rejecting atom implies the value is not NULL.
        for a in group.iter().filter(|a| a.null_rejecting()) {
            let va = env.vars[*a];
            let nva = env.mgr.not(va);
            let nn = env.mgr.not(null_var);
            let clause = env.mgr.or(nva, nn);
            cex = env.mgr.and(cex, clause);
            if cex == FALSE {
                return true;
            }
        }
        // Pairwise comparison axioms, over all four literal signs: when
        // the (possibly complemented) shapes are provably disjoint,
        // both literals can only hold together if the value is NULL.
        let cmps: Vec<(&Atom, CmpOp, &Value)> = group
            .iter()
            .filter_map(|a| match a {
                Atom::Cmp { op, value, .. } => Some((*a, *op, value)),
                _ => None,
            })
            .collect();
        for i in 0..cmps.len() {
            for j in (i + 1)..cmps.len() {
                let (a1, op1, v1) = cmps[i];
                let (a2, op2, v2) = cmps[j];
                for (s1, s2) in [(true, true), (true, false), (false, true), (false, false)] {
                    let e1 = if s1 { op1 } else { negated(op1) };
                    let e2 = if s2 { op2 } else { negated(op2) };
                    if !provably_disjoint(shape(e1, v1), shape(e2, v2)) {
                        continue;
                    }
                    // Clause: NULL ∨ ¬lit1 ∨ ¬lit2.
                    let mut l1 = env.vars[a1];
                    if !s1 {
                        l1 = env.mgr.not(l1);
                    }
                    let mut l2 = env.vars[a2];
                    if !s2 {
                        l2 = env.mgr.not(l2);
                    }
                    let nl1 = env.mgr.not(l1);
                    let nl2 = env.mgr.not(l2);
                    let c = env.mgr.or(nl1, nl2);
                    let clause = env.mgr.or(null_var, c);
                    cex = env.mgr.and(cex, clause);
                    if cex == FALSE {
                        return true;
                    }
                }
            }
        }
    }
    cex == FALSE
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::{Schema, Tuple};

    fn lt(attr: &str, v: i64) -> Predicate {
        Predicate::cmp(attr, CmpOp::Lt, v)
    }

    #[test]
    fn range_nesting_is_proved() {
        assert!(subsumes(&lt("A1", 500), &lt("A1", 200)));
        assert!(!subsumes(&lt("A1", 200), &lt("A1", 500)));
        assert!(subsumes(&lt("A1", 500), &lt("A1", 500)));
    }

    #[test]
    fn conjunction_weakening_is_proved() {
        let narrow = Predicate::And(vec![lt("A1", 200), lt("A2", 300)]);
        assert!(subsumes(&lt("A1", 200), &narrow));
        assert!(subsumes(&lt("A2", 300), &narrow));
        assert!(!subsumes(&narrow, &lt("A1", 200)));
    }

    #[test]
    fn disjunction_widening_is_proved() {
        let broad = Predicate::Or(vec![lt("A1", 200), Predicate::eq("A2", 7i64)]);
        assert!(subsumes(&broad, &lt("A1", 200)));
        assert!(subsumes(&broad, &Predicate::eq("A2", 7i64)));
    }

    #[test]
    fn mixed_operator_containment() {
        // A1 = 10  ⊆  A1 <= 10  ⊆  A1 < 50.
        let eq = Predicate::eq("A1", 10i64);
        let le = Predicate::cmp("A1", CmpOp::Le, 10i64);
        assert!(subsumes(&le, &eq));
        assert!(subsumes(&lt("A1", 50), &le));
        assert!(subsumes(&lt("A1", 50), &eq));
        // A1 = 10  ⊆  A1 <> 11.
        assert!(subsumes(&Predicate::cmp("A1", CmpOp::Ne, 11i64), &eq));
        assert!(!subsumes(&Predicate::cmp("A1", CmpOp::Ne, 10i64), &eq));
    }

    #[test]
    fn between_and_inlist_normalize() {
        let between = Predicate::Between {
            attr: "A1".into(),
            lo: fusion_types::Value::Int(10),
            hi: fusion_types::Value::Int(20),
        };
        assert!(subsumes(&lt("A1", 21), &between));
        assert!(subsumes(&Predicate::cmp("A1", CmpOp::Ge, 10i64), &between));
        assert!(!subsumes(&lt("A1", 20), &between)); // hi is inclusive
        let inlist = Predicate::InList {
            attr: "A1".into(),
            values: vec![fusion_types::Value::Int(3), fusion_types::Value::Int(5)],
        };
        assert!(subsumes(&lt("A1", 6), &inlist));
        assert!(subsumes(&inlist, &Predicate::eq("A1", 5i64)));
        assert!(!subsumes(&inlist, &Predicate::eq("A1", 4i64)));
    }

    #[test]
    fn negation_needs_null_care() {
        // ¬(A1 < 10) is NOT implied to contain A1 >= 10: a NULL value
        // satisfies the negation but fails the comparison… other way
        // round: A1 >= 10 ⊆ ¬(A1 < 10) holds (a non-null ≥ 10 fails <).
        let ge = Predicate::cmp("A1", CmpOp::Ge, 10i64);
        let not_lt = Predicate::Not(Box::new(lt("A1", 10)));
        assert!(subsumes(&not_lt, &ge));
        // But ¬(A1 < 10) ⊄ A1 >= 10: NULL is a counterexample.
        assert!(!subsumes(&ge, &not_lt));
    }

    #[test]
    fn negation_flips_containment_antitone() {
        // The sharing analyzer must never treat `A − B` (or any negated
        // position) as monotone: A1 < 500 ⊇ A1 < 200, and under ¬ the
        // containment FLIPS — ¬(A1 < 200) ⊇ ¬(A1 < 500), not the other
        // way round. Both directions are exercised so a sign error in
        // the axioms would be caught.
        assert!(subsumes(&lt("A1", 500), &lt("A1", 200)));
        let not_narrow = Predicate::Not(Box::new(lt("A1", 200)));
        let not_broad = Predicate::Not(Box::new(lt("A1", 500)));
        assert!(subsumes(&not_narrow, &not_broad));
        assert!(!subsumes(&not_broad, &not_narrow));
    }

    #[test]
    fn demorgan_and_double_negation() {
        let p = lt("A1", 10);
        let q = Predicate::eq("A2", 3i64);
        // ¬p ⊆ ¬(p ∧ q) — propositional, no theory needed.
        let not_p = Predicate::Not(Box::new(p.clone()));
        let not_and = Predicate::Not(Box::new(Predicate::And(vec![p.clone(), q])));
        assert!(subsumes(&not_and, &not_p));
        assert!(!subsumes(&not_p, &not_and));
        // ¬¬p is the same BDD as p: both directions are proved.
        let not_not_p = Predicate::Not(Box::new(not_p));
        assert!(subsumes(&p, &not_not_p));
        assert!(subsumes(&not_not_p, &p));
    }

    #[test]
    fn negated_between_contains_the_upper_tail() {
        // ¬(A1 BETWEEN 10 AND 20) ⊇ A1 > 20: a non-null value above the
        // range fails the upper bound, and > excludes NULL.
        let between = Predicate::Between {
            attr: "A1".into(),
            lo: fusion_types::Value::Int(10),
            hi: fusion_types::Value::Int(20),
        };
        let not_between = Predicate::Not(Box::new(between));
        let tail = Predicate::cmp("A1", CmpOp::Gt, 20i64);
        assert!(subsumes(&not_between, &tail));
        // The converse fails: NULL satisfies ¬BETWEEN but not `>`.
        assert!(!subsumes(&tail, &not_between));
    }

    #[test]
    fn null_bounded_between_is_opaque() {
        // A NULL bound routes BETWEEN through the raw value order, so
        // the prover treats it as an opaque atom: only structural
        // equality proves anything.
        let opaque = Predicate::Between {
            attr: "A1".into(),
            lo: fusion_types::Value::Null,
            hi: fusion_types::Value::Int(5),
        };
        assert!(subsumes(&opaque, &opaque));
        assert!(!subsumes(&lt("A1", 6), &opaque));
        assert!(!subsumes(&opaque, &lt("A1", 6)));
    }

    #[test]
    fn contradictory_narrow_is_contained_in_anything() {
        // A1 < 10 ∧ A1 > 20 is unsatisfiable by the disjointness
        // axioms, so it is contained even in a predicate over a
        // different attribute.
        let contradiction =
            Predicate::And(vec![lt("A1", 10), Predicate::cmp("A1", CmpOp::Gt, 20i64)]);
        assert!(subsumes(&Predicate::eq("Z9", 1i64), &contradiction));
    }

    #[test]
    fn no_discrete_adjacency_reasoning() {
        // Over the integers A1 < 10 ⊆ A1 <= 9, but the prover must not
        // claim it: only dense-safe facts are used.
        assert!(!subsumes(
            &Predicate::cmp("A1", CmpOp::Le, 9i64),
            &lt("A1", 10)
        ));
    }

    #[test]
    fn is_null_and_like_atoms() {
        let isnull = Predicate::IsNull { attr: "A1".into() };
        assert!(subsumes(&isnull, &isnull));
        // A comparison excludes NULL.
        let not_null = Predicate::Not(Box::new(isnull.clone()));
        assert!(subsumes(&not_null, &lt("A1", 10)));
        assert!(!subsumes(&isnull, &lt("A1", 10)));
        let like = Predicate::Like {
            attr: "M".into(),
            pattern: "J%".into(),
        };
        assert!(subsumes(&like, &like));
        assert!(subsumes(&not_null_of("M"), &like));
    }

    fn not_null_of(attr: &str) -> Predicate {
        Predicate::Not(Box::new(Predicate::IsNull { attr: attr.into() }))
    }

    #[test]
    fn distinct_attributes_are_independent() {
        assert!(!subsumes(&lt("A1", 500), &lt("A2", 200)));
    }

    #[test]
    fn proof_matches_evaluation_on_a_grid() {
        // Exhaustively validate soundness of a proved pair on concrete
        // tuples: whenever narrow holds, broad must hold.
        use fusion_types::{Attribute, Value, ValueType};
        let schema = Schema::new(
            vec![
                Attribute::new("M", ValueType::Str),
                Attribute::new("A1", ValueType::Int),
            ],
            "M",
        )
        .unwrap();
        let broad = Predicate::Or(vec![lt("A1", 40), Predicate::eq("A1", 77i64)]);
        let narrow = Predicate::And(vec![
            lt("A1", 60),
            Predicate::Or(vec![lt("A1", 30), Predicate::eq("A1", 77i64)]),
        ]);
        assert!(subsumes(&broad, &narrow));
        for x in -5..100 {
            let t = Tuple::new(vec![Value::str("e"), Value::Int(x)]);
            let n = narrow.eval(&t, &schema).unwrap();
            let b = broad.eval(&t, &schema).unwrap();
            assert!(!n || b, "x={x}: narrow held but broad did not");
        }
    }
}
