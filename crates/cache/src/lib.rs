//! Semantic answer cache for selection-query results.
//!
//! The mediator of the paper re-issues `sq(c_i, R_j)` for every query,
//! even under heavy repeated traffic. This crate adds the missing
//! memory: a cache keyed by `(source, condition)` that stores the
//! **full records** a selection returned, so a later query can be
//! answered locally — either exactly (same condition) or by
//! *subsumption*: a cached broader condition answers a narrower one
//! after a local residual filter, with containment proved by the
//! [`subsume`] module's BDD + order-theory prover.
//!
//! Three mechanisms keep reuse honest:
//!
//! * **Epochs** — every source has a monotone epoch counter; an entry
//!   records the epoch it was fetched under and is invalidated the
//!   moment the source's epoch advances (simulated update, fault
//!   recovery).
//! * **Completeness tagging** — entries harvested from an execution
//!   that finished with `Completeness::Subset` are stored as
//!   non-exact and never served.
//! * **Cost-based admission/eviction** — the cache is byte-budgeted;
//!   when over budget it evicts the entry with the lowest
//!   re-fetch-price-per-byte (ties broken LRU), so expensive-to-refetch
//!   answers survive.
//!
//! [`CacheSnapshot`] and [`CachedCostModel`] feed the optimizer: warm
//! `(c, R)` pairs cost their local-residual price (zero under the
//! paper's free-local-work axiom), which provably re-orders plans.

#![forbid(unsafe_code)]

pub mod cost;
pub mod lint;
pub mod shared;
pub mod subsume;

pub use cost::{CacheSnapshot, CachedCostModel};
pub use lint::{stale_cache_findings, StaleCacheServe};
pub use shared::{CacheGuard, SharedAnswerCache};
pub use subsume::subsumes;

use std::sync::Arc;

use fusion_types::error::Result;
use fusion_types::{Condition, Cost, ItemSet, Schema, SourceId, Tuple};

/// One cached selection answer: the full records `sq(c, R)` returned.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Source the answer came from.
    pub source: SourceId,
    /// The condition the records satisfy.
    pub cond: Condition,
    /// Full records, in the order the wrapper returned them. Behind an
    /// [`Arc`] so a concurrent reader ([`SharedAnswerCache`]) can take a
    /// cheap reference under the shard lock and run the residual filter
    /// outside it.
    tuples: Arc<Vec<Tuple>>,
    /// Source epoch the records were fetched under.
    pub epoch: u64,
    /// False when harvested from a `Subset`-complete execution; such
    /// entries are retained for inspection but never served.
    pub exact: bool,
    /// Wire bytes the records occupy (admission/eviction weight).
    pub bytes: usize,
    /// The price actually paid to fetch the answer (eviction weight).
    pub refetch: Cost,
    /// Logical timestamp of the last lookup that used this entry.
    last_used: u64,
}

impl CacheEntry {
    /// The cached records.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Eviction score: re-fetch price per cached byte. Lower scores are
    /// evicted first.
    fn score(&self) -> f64 {
        self.refetch.value() / self.bytes.max(1) as f64
    }
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitKind {
    /// The exact condition was cached.
    Exact,
    /// A cached broader condition was residual-filtered locally.
    Subsumed,
}

/// A successful lookup: the answer plus how it was produced.
#[derive(Debug, Clone)]
pub struct Served {
    /// The answer items, byte-identical to what `sq` would return.
    pub items: ItemSet,
    /// Exact hit or subsumption residual.
    pub kind: HitKind,
}

/// A lookup resolved but not yet served: the matched entry's records
/// plus the hit kind. [`ResolvedHit::serve`] runs the projection (and
/// residual filter, for a subsumption hit) — deliberately separate from
/// resolution so [`SharedAnswerCache`] can do the cheap match under a
/// shard lock and the per-tuple work outside it.
#[derive(Debug, Clone)]
pub struct ResolvedHit {
    tuples: Arc<Vec<Tuple>>,
    /// Exact hit or subsumption residual.
    pub kind: HitKind,
}

impl ResolvedHit {
    /// Wraps records published outside the cache — the merged-fetch
    /// fan-out path: a follower serves a leader's in-flight harvest
    /// through the same projection (and, for a proper containment,
    /// residual filter) an answer-cache hit uses, so shared answers
    /// stay byte-identical to a cold `sq`.
    pub fn from_rows(tuples: Arc<Vec<Tuple>>, kind: HitKind) -> ResolvedHit {
        ResolvedHit { tuples, kind }
    }

    /// Projects the resolved records to the answer item set, applying
    /// `cond` as a residual filter when the hit was by subsumption. The
    /// result is byte-identical to what [`AnswerCache::lookup`] serves.
    ///
    /// # Errors
    /// Propagates predicate evaluation errors from the residual filter.
    pub fn serve(&self, cond: &Condition, schema: &Schema) -> Result<Served> {
        let items = project(&self.tuples, cond, schema, self.kind == HitKind::Subsumed)?;
        Ok(Served {
            items,
            kind: self.kind,
        })
    }
}

/// Monotone counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-condition hits served.
    pub hits: u64,
    /// Subsumption hits served via a residual filter.
    pub residual_hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Resident entries evicted to meet the byte budget.
    pub evictions: u64,
    /// Fresh entries rejected at admission (budget would not fit them).
    pub rejections: u64,
    /// Entries dropped because their source epoch advanced.
    pub invalidations: u64,
}

/// The semantic answer cache.
#[derive(Debug)]
pub struct AnswerCache {
    entries: Vec<CacheEntry>,
    /// Per-source epoch counters, grown on demand.
    epochs: Vec<u64>,
    budget: usize,
    clock: u64,
    stats: CacheStats,
    /// Operations applied through a shared-cache guard — the per-shard
    /// half of the server's linearizability certificate (see
    /// [`crate::shared`]). Exclusive (`&mut`) use never advances it.
    op_seq: u64,
}

impl AnswerCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> AnswerCache {
        AnswerCache {
            entries: Vec::new(),
            epochs: Vec::new(),
            budget: budget_bytes,
            clock: 0,
            stats: CacheStats::default(),
            op_seq: 0,
        }
    }

    /// Guard-applied operations so far (see [`crate::shared`]).
    pub fn op_seq(&self) -> u64 {
        self.op_seq
    }

    /// Counts one guard-applied operation.
    pub(crate) fn note_op(&mut self) {
        self.op_seq += 1;
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of resident entries (including non-exact ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total wire bytes of resident entries.
    pub fn bytes_used(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resident entries, in admission order.
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.iter()
    }

    /// The current epoch of a source (0 until first bump).
    pub fn epoch(&self, source: SourceId) -> u64 {
        self.epochs.get(source.0).copied().unwrap_or(0)
    }

    /// Epochs for sources `0..n`, padding unknown sources with 0.
    pub fn epochs(&self, n_sources: usize) -> Vec<u64> {
        (0..n_sources).map(|j| self.epoch(SourceId(j))).collect()
    }

    /// Advances a source's epoch, invalidating its resident entries.
    pub fn bump_epoch(&mut self, source: SourceId) {
        if self.epochs.len() <= source.0 {
            self.epochs.resize(source.0 + 1, 0);
        }
        self.epochs[source.0] += 1;
        let epoch = self.epochs[source.0];
        let mut removed: u64 = 0;
        self.entries.retain(|e| {
            let keep = e.source != source || e.epoch >= epoch;
            removed += u64::from(!keep);
            keep
        });
        self.stats.invalidations += removed;
    }

    /// Drops every entry and resets all epochs (stats are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.epochs.clear();
    }

    /// True when a lookup for `(source, cond)` would be served — the
    /// side-effect-free probe the optimizer snapshot uses.
    pub fn would_serve(&self, source: SourceId, cond: &Condition) -> bool {
        self.find_servable(source, cond).is_some()
    }

    fn servable(&self, e: &CacheEntry) -> bool {
        e.exact && e.epoch == self.epoch(e.source)
    }

    /// Index of the entry a lookup would use: an exact match if one
    /// exists, else the smallest subsuming entry (fewest residual
    /// tuples to filter).
    fn find_servable(&self, source: SourceId, cond: &Condition) -> Option<(usize, HitKind)> {
        let mut best: Option<(usize, usize)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.source != source || !self.servable(e) {
                continue;
            }
            if e.cond == *cond {
                return Some((i, HitKind::Exact));
            }
            if subsume::subsumes(&e.cond.pred, &cond.pred)
                && best.is_none_or(|(_, n)| e.tuples.len() < n)
            {
                best = Some((i, e.tuples.len()));
            }
        }
        best.map(|(i, _)| (i, HitKind::Subsumed))
    }

    /// Resolves a lookup for `(source, cond)` without projecting: the
    /// statistics and LRU effects of [`AnswerCache::lookup`] happen
    /// here, but the per-tuple projection/filter work is deferred to
    /// [`ResolvedHit::serve`]. This is the half a shared cache runs
    /// under its shard lock.
    pub fn resolve(&mut self, source: SourceId, cond: &Condition) -> Option<ResolvedHit> {
        self.clock += 1;
        let Some((idx, kind)) = self.find_servable(source, cond) else {
            self.stats.misses += 1;
            return None;
        };
        self.entries[idx].last_used = self.clock;
        match kind {
            HitKind::Exact => self.stats.hits += 1,
            HitKind::Subsumed => self.stats.residual_hits += 1,
        }
        Some(ResolvedHit {
            tuples: Arc::clone(&self.entries[idx].tuples),
            kind,
        })
    }

    /// Looks up `(source, cond)`, serving an exact hit or a residual-
    /// filtered subsumption hit. Records hit/miss statistics and LRU
    /// recency.
    ///
    /// # Errors
    /// Propagates predicate evaluation errors from the residual filter.
    pub fn lookup(
        &mut self,
        source: SourceId,
        cond: &Condition,
        schema: &Schema,
    ) -> Result<Option<Served>> {
        match self.resolve(source, cond) {
            Some(hit) => Ok(Some(hit.serve(cond, schema)?)),
            None => Ok(None),
        }
    }

    /// Admits an answer fetched at price `refetch`. Replaces any entry
    /// with the same key; then evicts lowest-score entries (re-fetch
    /// price per byte, ties broken least-recently-used) until the
    /// budget holds. A fresh entry that is itself evicted counts as an
    /// admission rejection.
    pub fn insert(
        &mut self,
        source: SourceId,
        cond: Condition,
        tuples: Vec<Tuple>,
        exact: bool,
        refetch: Cost,
    ) {
        self.clock += 1;
        let bytes = tuples.iter().map(Tuple::wire_size).sum::<usize>().max(1);
        self.entries
            .retain(|e| !(e.source == source && e.cond == cond));
        let entry = CacheEntry {
            source,
            cond,
            tuples: Arc::new(tuples),
            epoch: self.epoch(source),
            exact,
            bytes,
            refetch,
            last_used: self.clock,
        };
        self.entries.push(entry);
        self.stats.insertions += 1;
        let fresh = self.entries.len() - 1;
        let mut fresh_alive = true;
        while self.bytes_used() > self.budget && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.score()
                        .total_cmp(&b.score())
                        .then(a.last_used.cmp(&b.last_used))
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            if victim == fresh && fresh_alive {
                self.stats.insertions -= 1;
                self.stats.rejections += 1;
                fresh_alive = false;
            } else {
                self.stats.evictions += 1;
            }
            self.entries.remove(victim);
        }
    }

    /// The optimizer's view: which `(condition, source)` pairs are warm
    /// right now, plus the epochs the view was taken under (for the
    /// `stale-cache-serve` lint).
    pub fn snapshot(&self, conditions: &[Condition], n_sources: usize) -> CacheSnapshot {
        let covered = conditions
            .iter()
            .map(|c| {
                (0..n_sources)
                    .map(|j| self.would_serve(SourceId(j), c))
                    .collect()
            })
            .collect();
        CacheSnapshot::new(covered, self.epochs(n_sources))
    }
}

/// Projects cached records to the answer item set, optionally applying
/// the (narrower) condition as a residual filter. The engine's own
/// `select` sorts and deduplicates through [`ItemSet::from_items`], so
/// the result is byte-identical to a cold `sq`.
fn project(tuples: &[Tuple], cond: &Condition, schema: &Schema, residual: bool) -> Result<ItemSet> {
    let mut items = Vec::with_capacity(tuples.len());
    for t in tuples {
        if !residual || cond.eval(t, schema)? {
            items.push(t.item(schema));
        }
    }
    Ok(ItemSet::from_items(items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::{Attribute, CmpOp, Predicate, Value, ValueType};

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::new("M", ValueType::Str),
                Attribute::new("A1", ValueType::Int),
            ],
            "M",
        )
        .unwrap()
    }

    fn row(m: &str, a: i64) -> Tuple {
        Tuple::new(vec![Value::str(m), Value::Int(a)])
    }

    fn lt(v: i64) -> Condition {
        Predicate::cmp("A1", CmpOp::Lt, v).into()
    }

    #[test]
    fn exact_hit_roundtrip() {
        let mut c = AnswerCache::new(1 << 20);
        let s = SourceId(0);
        c.insert(
            s,
            lt(100),
            vec![row("b", 5), row("a", 50)],
            true,
            Cost::new(10.0),
        );
        let got = c.lookup(s, &lt(100), &schema()).unwrap().unwrap();
        assert_eq!(got.kind, HitKind::Exact);
        assert_eq!(got.items, ItemSet::from_items(["a", "b"]));
        assert_eq!(c.stats().hits, 1);
        // Different source: miss.
        assert!(c
            .lookup(SourceId(1), &lt(100), &schema())
            .unwrap()
            .is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn subsumption_hit_filters_residual() {
        let mut c = AnswerCache::new(1 << 20);
        let s = SourceId(0);
        c.insert(
            s,
            lt(100),
            vec![row("a", 5), row("b", 50), row("c", 99)],
            true,
            Cost::new(10.0),
        );
        let got = c.lookup(s, &lt(50), &schema()).unwrap().unwrap();
        assert_eq!(got.kind, HitKind::Subsumed);
        assert_eq!(got.items, ItemSet::from_items(["a"]));
        assert_eq!(c.stats().residual_hits, 1);
        // The narrower cached entry never serves the broader query.
        assert!(c.lookup(s, &lt(101), &schema()).unwrap().is_none());
    }

    #[test]
    fn smallest_subsuming_entry_wins() {
        let mut c = AnswerCache::new(1 << 20);
        let s = SourceId(0);
        c.insert(
            s,
            lt(1000),
            vec![row("a", 5), row("b", 700)],
            true,
            Cost::new(1.0),
        );
        c.insert(s, lt(100), vec![row("a", 5)], true, Cost::new(1.0));
        let (idx, kind) = c.find_servable(s, &lt(50)).unwrap();
        assert_eq!(kind, HitKind::Subsumed);
        assert_eq!(c.entries[idx].cond, lt(100));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let mut c = AnswerCache::new(1 << 20);
        let s = SourceId(0);
        c.insert(s, lt(100), vec![row("a", 5)], true, Cost::new(10.0));
        c.insert(
            SourceId(1),
            lt(100),
            vec![row("z", 5)],
            true,
            Cost::new(10.0),
        );
        c.bump_epoch(s);
        assert!(c.lookup(s, &lt(100), &schema()).unwrap().is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Other sources unaffected.
        assert!(c
            .lookup(SourceId(1), &lt(100), &schema())
            .unwrap()
            .is_some());
        // Re-inserting after the bump is served again at the new epoch.
        c.insert(s, lt(100), vec![row("a", 5)], true, Cost::new(10.0));
        assert!(c.lookup(s, &lt(100), &schema()).unwrap().is_some());
        assert_eq!(c.epoch(s), 1);
    }

    #[test]
    fn bump_with_no_matching_entries_counts_zero_invalidations() {
        let mut c = AnswerCache::new(1 << 20);
        c.insert(
            SourceId(1),
            lt(100),
            vec![row("a", 5)],
            true,
            Cost::new(1.0),
        );
        // Source 0 has no resident entries: the bump must not count any
        // invalidations, and the other source's entry must survive.
        c.bump_epoch(SourceId(0));
        assert_eq!(c.stats().invalidations, 0);
        assert_eq!(c.len(), 1);
        // A second bump of the same empty source stays at zero.
        c.bump_epoch(SourceId(0));
        assert_eq!(c.stats().invalidations, 0);
    }

    #[test]
    fn bump_removing_every_entry_counts_each_removal() {
        let mut c = AnswerCache::new(1 << 20);
        let s = SourceId(0);
        c.insert(s, lt(10), vec![row("a", 5)], true, Cost::new(1.0));
        c.insert(s, lt(20), vec![row("b", 15)], true, Cost::new(1.0));
        c.insert(s, lt(30), vec![row("c", 25)], false, Cost::new(1.0));
        assert_eq!(c.len(), 3);
        c.bump_epoch(s);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 3);
    }

    #[test]
    fn non_exact_entries_are_never_served() {
        let mut c = AnswerCache::new(1 << 20);
        let s = SourceId(0);
        c.insert(s, lt(100), vec![row("a", 5)], false, Cost::new(10.0));
        assert_eq!(c.len(), 1);
        assert!(c.lookup(s, &lt(100), &schema()).unwrap().is_none());
        assert!(c.lookup(s, &lt(50), &schema()).unwrap().is_none());
    }

    #[test]
    fn eviction_respects_refetch_price_per_byte() {
        // Budget fits two of the three equally sized entries: the
        // cheapest-to-refetch one goes.
        let sz = row("aaaa", 1).wire_size();
        let mut c = AnswerCache::new(2 * sz);
        c.insert(
            SourceId(0),
            lt(10),
            vec![row("aaaa", 1)],
            true,
            Cost::new(5.0),
        );
        c.insert(
            SourceId(1),
            lt(10),
            vec![row("bbbb", 1)],
            true,
            Cost::new(1.0),
        );
        c.insert(
            SourceId(2),
            lt(10),
            vec![row("cccc", 1)],
            true,
            Cost::new(9.0),
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.would_serve(SourceId(0), &lt(10)));
        assert!(!c.would_serve(SourceId(1), &lt(10)));
        assert!(c.would_serve(SourceId(2), &lt(10)));
    }

    #[test]
    fn oversized_fresh_entry_is_rejected() {
        let mut c = AnswerCache::new(4);
        c.insert(
            SourceId(0),
            lt(10),
            vec![row("a-very-long-item", 1)],
            true,
            Cost::new(0.1),
        );
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().rejections, 1);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = AnswerCache::new(1 << 20);
        let s = SourceId(0);
        c.insert(s, lt(100), vec![row("a", 5)], true, Cost::new(1.0));
        c.insert(s, lt(100), vec![row("b", 6)], true, Cost::new(1.0));
        assert_eq!(c.len(), 1);
        let got = c.lookup(s, &lt(100), &schema()).unwrap().unwrap();
        assert_eq!(got.items, ItemSet::from_items(["b"]));
    }

    #[test]
    fn snapshot_reports_coverage_and_epochs() {
        let mut c = AnswerCache::new(1 << 20);
        c.insert(
            SourceId(1),
            lt(100),
            vec![row("a", 5)],
            true,
            Cost::new(1.0),
        );
        c.bump_epoch(SourceId(0));
        let snap = c.snapshot(&[lt(50), lt(200)], 2);
        assert!(snap.covers(fusion_types::CondId(0), SourceId(1))); // subsumed
        assert!(!snap.covers(fusion_types::CondId(1), SourceId(1))); // broader
        assert!(!snap.covers(fusion_types::CondId(0), SourceId(0)));
        assert_eq!(snap.epochs(), &[1, 0]);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = AnswerCache::new(1 << 20);
        c.insert(
            SourceId(0),
            lt(100),
            vec![row("a", 5)],
            true,
            Cost::new(1.0),
        );
        c.bump_epoch(SourceId(0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.epoch(SourceId(0)), 0);
    }
}
