//! A sharded, concurrently usable wrapper over [`AnswerCache`].
//!
//! The PR-5 cache is exclusively owned (`&mut` through every cached
//! executor); one session at a time can be warm. The mediator *server*
//! interleaves many in-flight queries over one cache, so this module
//! moves the cache behind interior mutability with a locking discipline
//! chosen to make concurrent execution **provably replayable**:
//!
//! * Entries are partitioned into `n_shards` shards by owning source
//!   (`source.0 % n_shards`); each shard is a complete [`AnswerCache`]
//!   (its own entries, epochs, LRU clock, stats, and byte-budget slice)
//!   behind an [`RwLock`]. A source's epoch counter lives in its owning
//!   shard, so an update bump locks exactly one shard.
//! * Every mutation happens inside a [`CacheGuard`] critical section
//!   holding the write locks of the shards it touches, always acquired
//!   in ascending shard order (no deadlocks). Admission — the planning
//!   snapshot plus lookup resolution for one query — locks *all*
//!   shards, because the optimizer's coverage view must be consistent
//!   across sources. Commits and epoch bumps lock only the shards that
//!   own their sources.
//! * Each critical section draws a **ticket** from a global atomic
//!   counter *while holding its locks*. Two critical sections that
//!   share a shard are therefore ticket-ordered exactly as the shard
//!   saw them; two that are shard-disjoint commute. Replaying the
//!   ticket-ordered operation log serially against a fresh
//!   [`SharedAnswerCache`] reproduces every shard's mutation sequence
//!   bit for bit — the byte-parity contract `fusion-exec::server`
//!   checks.
//! * The expensive half of serving a warm hit — projecting the cached
//!   records and running the residual filter — happens **outside** the
//!   locks: [`AnswerCache::resolve`] hands out an `Arc` of the entry's
//!   records under the lock and [`ResolvedHit::serve`]
//!   ([`crate::ResolvedHit`]) does the per-tuple work after release, so
//!   concurrent warm hits do not serialize on each other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock, RwLockWriteGuard};

use fusion_types::{Condition, Cost, SourceId, Tuple};

use crate::{AnswerCache, CacheSnapshot, CacheStats, ResolvedHit};

/// The sharded shared answer cache. See the module docs for the locking
/// discipline.
#[derive(Debug)]
pub struct SharedAnswerCache {
    shards: Vec<RwLock<AnswerCache>>,
    ticket: AtomicU64,
}

/// Per-shard observation used by inspection surfaces (`\sessions`).
#[derive(Debug, Clone, Copy)]
pub struct ShardInfo {
    /// Resident entries.
    pub len: usize,
    /// Resident wire bytes.
    pub bytes: usize,
    /// The shard's byte budget.
    pub budget: usize,
    /// The shard's behaviour counters.
    pub stats: CacheStats,
}

impl SharedAnswerCache {
    /// A shared cache of `n_shards` shards splitting `budget_bytes`
    /// evenly. `n_shards` is clamped to at least 1.
    pub fn new(budget_bytes: usize, n_shards: usize) -> SharedAnswerCache {
        let n = n_shards.max(1);
        SharedAnswerCache {
            shards: (0..n)
                .map(|_| RwLock::new(AnswerCache::new(budget_bytes / n)))
                .collect(),
            ticket: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `source`'s entries and epoch counter.
    pub fn shard_of(&self, source: SourceId) -> usize {
        source.0 % self.shards.len()
    }

    /// Tickets drawn so far (the length of the operation log).
    pub fn tickets_issued(&self) -> u64 {
        self.ticket.load(Ordering::SeqCst)
    }

    /// Locks every shard for one admission-class critical section: a
    /// globally consistent snapshot plus lookup resolution.
    pub fn lock_all(&self) -> CacheGuard<'_> {
        self.lock_shards((0..self.shards.len()).collect())
    }

    /// Locks only the shards owning `sources` (commit / bump class
    /// critical sections).
    pub fn lock_sources(&self, sources: &[SourceId]) -> CacheGuard<'_> {
        let mut idxs: Vec<usize> = sources.iter().map(|&s| self.shard_of(s)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        self.lock_shards(idxs)
    }

    fn lock_shards(&self, idxs: Vec<usize>) -> CacheGuard<'_> {
        // Ascending acquisition order across all callers: deadlock-free.
        let guards = idxs
            .into_iter()
            .map(|i| {
                (
                    i,
                    self.shards[i]
                        .write()
                        .unwrap_or_else(PoisonError::into_inner),
                )
            })
            .collect();
        CacheGuard {
            guards,
            n_shards: self.shards.len(),
            ticket: &self.ticket,
        }
    }

    /// Aggregated behaviour counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = *shard.read().unwrap_or_else(PoisonError::into_inner).stats();
            total.hits += s.hits;
            total.residual_hits += s.residual_hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.rejections += s.rejections;
            total.invalidations += s.invalidations;
        }
        total
    }

    /// Total resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident wire bytes across all shards.
    pub fn bytes_used(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .bytes_used()
            })
            .sum()
    }

    /// Epochs for sources `0..n`, each read from its owning shard.
    pub fn epochs(&self, n_sources: usize) -> Vec<u64> {
        (0..n_sources)
            .map(|j| {
                let source = SourceId(j);
                self.shards[self.shard_of(source)]
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .epoch(source)
            })
            .collect()
    }

    /// Per-shard inspection rows, in shard order.
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        self.shards
            .iter()
            .map(|s| {
                let c = s.read().unwrap_or_else(PoisonError::into_inner);
                ShardInfo {
                    len: c.len(),
                    bytes: c.bytes_used(),
                    budget: c.budget(),
                    stats: *c.stats(),
                }
            })
            .collect()
    }
}

/// One critical section over a set of locked shards. Dropping the guard
/// releases the locks; take the ticket (once) before dropping if the
/// operation goes on the replay log.
pub struct CacheGuard<'a> {
    /// `(shard index, write guard)` pairs in ascending shard order.
    guards: Vec<(usize, RwLockWriteGuard<'a, AnswerCache>)>,
    n_shards: usize,
    ticket: &'a AtomicU64,
}

impl CacheGuard<'_> {
    fn shard_mut(&mut self, source: SourceId) -> &mut AnswerCache {
        let idx = source.0 % self.n_shards;
        let pos = self
            .guards
            .binary_search_by_key(&idx, |(i, _)| *i)
            .unwrap_or_else(|_| panic!("shard {idx} not locked by this guard"));
        &mut self.guards[pos].1
    }

    fn shard(&self, source: SourceId) -> &AnswerCache {
        let idx = source.0 % self.n_shards;
        let pos = self
            .guards
            .binary_search_by_key(&idx, |(i, _)| *i)
            .unwrap_or_else(|_| panic!("shard {idx} not locked by this guard"));
        &self.guards[pos].1
    }

    /// Shard indices this guard holds, ascending.
    pub fn held_shards(&self) -> Vec<usize> {
        self.guards.iter().map(|(i, _)| *i).collect()
    }

    /// Draws the operation's ticket from the global counter. Called
    /// while the locks are held, so per-shard ticket order equals the
    /// order the shard actually saw its critical sections.
    pub fn take_ticket(&self) -> u64 {
        self.ticket.fetch_add(1, Ordering::SeqCst)
    }

    /// The per-shard operation sequence numbers of the held shards,
    /// `(shard, ops applied so far)` — the raw material of the
    /// linearizability certificate (`verify_server_log`).
    pub fn shard_seqs(&self) -> Vec<(usize, u64)> {
        self.guards.iter().map(|(i, c)| (*i, c.op_seq())).collect()
    }

    /// The current epoch of `source` (must be in a held shard).
    pub fn epoch(&self, source: SourceId) -> u64 {
        self.shard(source).epoch(source)
    }

    /// Resolves a lookup against `source`'s shard — the in-lock half of
    /// serving; project with [`ResolvedHit::serve`] after release.
    pub fn resolve(&mut self, source: SourceId, cond: &Condition) -> Option<ResolvedHit> {
        let c = self.shard_mut(source);
        c.note_op();
        c.resolve(source, cond)
    }

    /// Advances `source`'s epoch, invalidating its shard-resident
    /// entries.
    pub fn bump_epoch(&mut self, source: SourceId) {
        let c = self.shard_mut(source);
        c.note_op();
        c.bump_epoch(source);
    }

    /// Admits an answer into `source`'s shard (same semantics as
    /// [`AnswerCache::insert`], against the shard's budget slice).
    pub fn insert(
        &mut self,
        source: SourceId,
        cond: Condition,
        tuples: Vec<Tuple>,
        exact: bool,
        refetch: Cost,
    ) {
        let c = self.shard_mut(source);
        c.note_op();
        c.insert(source, cond, tuples, exact, refetch);
    }

    /// The optimizer's coverage view over all `n_sources` sources.
    /// Meaningful only from [`SharedAnswerCache::lock_all`] — with a
    /// partial guard, unlocked sources would read as cold.
    ///
    /// # Panics
    /// Panics when the guard does not hold every shard.
    pub fn snapshot(&self, conditions: &[Condition], n_sources: usize) -> CacheSnapshot {
        assert_eq!(
            self.guards.len(),
            self.n_shards,
            "snapshot requires all shards locked (use lock_all)"
        );
        let covered = conditions
            .iter()
            .map(|c| {
                (0..n_sources)
                    .map(|j| {
                        let source = SourceId(j);
                        self.shard(source).would_serve(source, c)
                    })
                    .collect()
            })
            .collect();
        CacheSnapshot::new(
            covered,
            (0..n_sources).map(|j| self.epoch(SourceId(j))).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::{Attribute, CmpOp, Predicate, Schema, Value, ValueType};

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::new("M", ValueType::Str),
                Attribute::new("A1", ValueType::Int),
            ],
            "M",
        )
        .unwrap()
    }

    fn row(m: &str, a: i64) -> Tuple {
        Tuple::new(vec![Value::str(m), Value::Int(a)])
    }

    fn lt(v: i64) -> Condition {
        Predicate::cmp("A1", CmpOp::Lt, v).into()
    }

    #[test]
    fn resolve_then_serve_matches_exclusive_lookup() {
        let shared = SharedAnswerCache::new(1 << 20, 2);
        let mut plain = AnswerCache::new(1 << 20);
        for j in 0..4 {
            let s = SourceId(j);
            let rows = vec![row(&format!("m{j}"), 5), row("z", 60)];
            plain.insert(s, lt(100), rows.clone(), true, Cost::new(3.0));
            let mut g = shared.lock_sources(&[s]);
            g.insert(s, lt(100), rows, true, Cost::new(3.0));
        }
        for j in 0..4 {
            let s = SourceId(j);
            for cond in [lt(100), lt(50), lt(7)] {
                let exclusive = plain.lookup(s, &cond, &schema()).unwrap();
                let hit = {
                    let mut g = shared.lock_all();
                    g.resolve(s, &cond)
                };
                // Projection happens outside the guard.
                let served = hit.map(|h| h.serve(&cond, &schema()).unwrap());
                match (exclusive, served) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.items, b.items);
                        assert_eq!(a.kind, b.kind);
                    }
                    (None, None) => {}
                    (a, b) => panic!("divergence at R{j}: {a:?} vs {b:?}"),
                }
            }
        }
        let agg = shared.stats();
        assert_eq!(agg.hits, plain.stats().hits);
        assert_eq!(agg.residual_hits, plain.stats().residual_hits);
        assert_eq!(agg.misses, plain.stats().misses);
    }

    #[test]
    fn bump_locks_one_shard_and_invalidates_only_its_source() {
        let shared = SharedAnswerCache::new(1 << 20, 3);
        for j in 0..3 {
            let s = SourceId(j);
            let mut g = shared.lock_sources(&[s]);
            g.insert(s, lt(10), vec![row("a", 1)], true, Cost::new(1.0));
        }
        {
            let mut g = shared.lock_sources(&[SourceId(1)]);
            assert_eq!(g.held_shards(), vec![1]);
            g.bump_epoch(SourceId(1));
        }
        assert_eq!(shared.epochs(3), vec![0, 1, 0]);
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.stats().invalidations, 1);
    }

    #[test]
    fn tickets_are_unique_and_ascending_per_shard() {
        let shared = SharedAnswerCache::new(1 << 20, 2);
        let mut tickets = Vec::new();
        for j in 0..6 {
            let g = shared.lock_sources(&[SourceId(j % 2)]);
            tickets.push(g.take_ticket());
        }
        let mut sorted = tickets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert_eq!(shared.tickets_issued(), 6);
    }

    #[test]
    fn snapshot_agrees_with_exclusive_cache() {
        let shared = SharedAnswerCache::new(1 << 20, 2);
        let mut plain = AnswerCache::new(1 << 20);
        for j in [0usize, 3] {
            let s = SourceId(j);
            plain.insert(s, lt(100), vec![row("a", 5)], true, Cost::new(1.0));
            let mut g = shared.lock_sources(&[s]);
            g.insert(s, lt(100), vec![row("a", 5)], true, Cost::new(1.0));
        }
        {
            let mut g = shared.lock_sources(&[SourceId(0)]);
            g.bump_epoch(SourceId(0));
        }
        plain.bump_epoch(SourceId(0));
        let conds = [lt(50), lt(200)];
        let a = plain.snapshot(&conds, 4);
        let b = shared.lock_all().snapshot(&conds, 4);
        for (i, c) in conds.iter().enumerate() {
            let _ = c;
            for j in 0..4 {
                assert_eq!(
                    a.covers(fusion_types::CondId(i), SourceId(j)),
                    b.covers(fusion_types::CondId(i), SourceId(j)),
                    "({i}, {j})"
                );
            }
        }
        assert_eq!(a.epochs(), b.epochs());
    }

    #[test]
    #[should_panic(expected = "not locked")]
    fn touching_an_unlocked_shard_panics() {
        let shared = SharedAnswerCache::new(1 << 20, 4);
        let mut g = shared.lock_sources(&[SourceId(0)]);
        g.bump_epoch(SourceId(1));
    }
}
