//! `stale-cache-serve`: a plan step would consume a cache entry whose
//! source epoch has advanced since the plan was optimized.
//!
//! The cache-aware optimizer prices selections against a
//! [`CacheSnapshot`] taken at plan time. If a source's epoch then
//! advances (simulated update, fault recovery) before the plan runs,
//! any `sq` step the snapshot marked as warm is no longer backed by a
//! servable entry: executing the plan as priced would either serve
//! stale data or silently pay the cold price the optimizer assumed
//! away. Either way the plan should be re-optimized, so the finding is
//! an error.

use crate::cost::CacheSnapshot;
use fusion_core::analyze::{Analysis, Diagnostic, Lint, Severity};
use fusion_core::plan::{Plan, Step};

/// Computes `stale-cache-serve` findings for a plan: every `sq` step
/// covered by `snapshot` whose source epoch in `current_epochs` differs
/// from the snapshot's epoch. Sources beyond either epoch vector are
/// treated as epoch 0.
pub fn stale_cache_findings(
    plan: &Plan,
    snapshot: &CacheSnapshot,
    current_epochs: &[u64],
) -> Vec<Diagnostic> {
    let at = |epochs: &[u64], j: usize| epochs.get(j).copied().unwrap_or(0);
    plan.steps
        .iter()
        .enumerate()
        .filter_map(|(t, s)| match s {
            Step::Sq { cond, source, .. } if snapshot.covers(*cond, *source) => {
                let then = at(snapshot.epochs(), source.0);
                let now = at(current_epochs, source.0);
                (now != then).then(|| Diagnostic {
                    rule: "stale-cache-serve",
                    severity: Severity::Error,
                    step: t + 1,
                    message: format!(
                        "consumes a cache entry for sq({cond}, {source}) planned at epoch \
                         {then}, but {source} is now at epoch {now}; re-optimize before serving",
                    ),
                })
            }
            _ => None,
        })
        .collect()
}

/// The `stale-cache-serve` rule, in the precomputed-findings style of
/// the dataflow lints: construction does the epoch comparison, and
/// [`Lint::check`] replays the findings through any [`LintRegistry`].
///
/// [`LintRegistry`]: fusion_core::analyze::LintRegistry
pub struct StaleCacheServe {
    findings: Vec<Diagnostic>,
}

impl StaleCacheServe {
    /// Builds the rule for one plan against the snapshot it was
    /// optimized with and the epochs in force now.
    pub fn new(plan: &Plan, snapshot: &CacheSnapshot, current_epochs: &[u64]) -> StaleCacheServe {
        StaleCacheServe {
            findings: stale_cache_findings(plan, snapshot, current_epochs),
        }
    }
}

impl Lint for StaleCacheServe {
    fn name(&self) -> &'static str {
        "stale-cache-serve"
    }

    fn check(&self, _plan: &Plan, _analysis: &mut Analysis) -> Vec<Diagnostic> {
        self.findings.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::plan::SimplePlanSpec;

    fn covering_snapshot(plan: &Plan, n: usize, epochs: Vec<u64>) -> CacheSnapshot {
        let mut covered = vec![vec![false; n]; plan.n_conditions];
        for s in &plan.steps {
            if let Step::Sq { cond, source, .. } = s {
                covered[cond.0][source.0] = true;
            }
        }
        CacheSnapshot::new(covered, epochs)
    }

    #[test]
    fn fires_only_when_epoch_advanced() {
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let snap = covering_snapshot(&plan, 2, vec![0, 0]);
        assert!(stale_cache_findings(&plan, &snap, &[0, 0]).is_empty());
        let findings = stale_cache_findings(&plan, &snap, &[0, 1]);
        assert!(!findings.is_empty());
        assert!(findings.iter().all(|d| d.rule == "stale-cache-serve"));
        assert!(findings.iter().all(|d| d.severity == Severity::Error));
        assert!(findings.iter().all(|d| d.message.contains("epoch 1")));
        // Only R2's steps fire.
        for d in &findings {
            assert!(d.message.contains("R2"), "{}", d.message);
        }
    }

    #[test]
    fn uncovered_steps_never_fire() {
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let snap = CacheSnapshot::cold(2, 2);
        assert!(stale_cache_findings(&plan, &snap, &[9, 9]).is_empty());
    }

    #[test]
    fn registry_integration() {
        use fusion_core::analyze::{analyze_plan, LintRegistry};
        let plan = SimplePlanSpec::filter(2, 2).build(2).unwrap();
        let snap = covering_snapshot(&plan, 2, vec![0, 0]);
        let mut reg = LintRegistry::default_rules();
        reg.register(Box::new(StaleCacheServe::new(&plan, &snap, &[1, 0])));
        let mut a = analyze_plan(&plan).unwrap();
        let d = reg.run(&plan, &mut a);
        assert!(d.iter().any(|d| d.rule == "stale-cache-serve"));
    }
}
