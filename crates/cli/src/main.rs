//! `fusionq` — the interactive fusion-query mediator shell.
//!
//! ```sh
//! cargo run -p fusion-cli --bin fusionq
//! ```

#![forbid(unsafe_code)]

use fusion_cli::{Control, Session};
use std::io::{BufRead, Write};

fn main() {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = std::env::args().all(|a| a != "--batch");
    let mut session = Session::new();
    println!("fusionq — fusion queries over Internet databases (\\help for help)");
    loop {
        if interactive {
            print!("fusion> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let (out, control) = session.handle(&line);
        if !out.is_empty() {
            println!("{out}");
        }
        if control == Control::Quit {
            break;
        }
    }
}
