//! The interactive mediator shell behind the `fusionq` binary.
//!
//! A [`Session`] holds a common schema and a set of registered sources;
//! commands configure them, and plain SQL lines are parsed as fusion
//! queries, optimized with SJA+, executed over the simulated network, and
//! answered. All command handling returns strings, so the shell is fully
//! testable without a terminal.
//!
//! ```text
//! fusion> \scenario dmv
//! loaded scenario `dmv-figure1`: 3 sources, schema (*L STR, V STR, D INT)
//! fusion> SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'
//! answer (2 items): {J55, T21}
//! executed cost 1.417 over 7 round trips
//! ```

#![forbid(unsafe_code)]

use fusion_cache::{subsumes, AnswerCache, CachedCostModel};
use fusion_check::{check_certified, CheckConfig};
use fusion_core::dataflow::{
    duplicate_inflight_findings, serial_queue_stages, sharing_report, unshared_subsumed_findings,
    unsound_merge_findings, EdgeKind, EventGraph, InFlightPlan, Resource,
};
use fusion_core::optimizer::sja_response_optimal;
use fusion_core::postopt::sja_plus;
use fusion_core::query::FusionQuery;
use fusion_core::{
    analyze_plan, dataflow_lint_plan, explain, filter_plan, greedy_sja, sj_optimal, sja_optimal,
    Dataflow, Diagnostic, NetworkCostModel, Plan, SourceBounds, Verdict,
};
use fusion_exec::{
    execute_plan, execute_plan_ft, fetch_records, replay_serial, serve, verify_replay_parity,
    ParallelConfig, RetryPolicy, ServerConfig, TenantEvent,
};
use fusion_net::{FaultPlan, FaultSpec, Link, LinkProfile, Network};
use fusion_source::{Capabilities, InMemoryWrapper, ProcessingProfile, SourceSet};
use fusion_stats::TableStats;
use fusion_types::error::{FusionError, Result};
use fusion_types::{Attribute, Predicate, Relation, Schema, SourceId, Tuple, ValueType};

/// Appends up to 20 records to a `\fetch` transcript.
fn push_records(out: &mut String, records: &[Tuple]) {
    for r in records.iter().take(20) {
        out.push_str(&format!("\n  {r}"));
    }
    if records.len() > 20 {
        out.push_str(&format!("\n  ... {} more", records.len() - 20));
    }
}

/// Byte budget `\cache on` uses when none is given.
const DEFAULT_CACHE_BUDGET: usize = 1 << 20;

/// Sources in the synthetic scenario `\serve` runs.
const SERVE_SOURCES: usize = 5;

/// One registered source.
struct SourceEntry {
    name: String,
    relation: Relation,
    caps: Capabilities,
    link: Link,
    processing: ProcessingProfile,
}

/// Session-level fault injection settings (see `\faults`).
struct FaultSettings {
    seed: u64,
    spec: FaultSpec,
    /// Hard outage: `(source index, down from attempt)`.
    outage: Option<(usize, usize)>,
}

impl FaultSettings {
    fn describe(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.spec.transient_rate > 0.0 {
            parts.push(format!("transient={}", self.spec.transient_rate));
        }
        if self.spec.timeout_rate > 0.0 {
            parts.push(format!("timeout={}", self.spec.timeout_rate));
        }
        if self.spec.slowdown_rate > 0.0 {
            parts.push(format!(
                "slow={}x{}",
                self.spec.slowdown_rate, self.spec.slowdown_factor
            ));
        }
        if let Some((j, from)) = self.outage {
            parts.push(format!("outage=R{}@{from}", j + 1));
        }
        format!("faults on: {}", parts.join(" "))
    }
}

/// Multi-tenant workload settings for `\serve` (see `\sessions`).
#[derive(Debug, Clone, Copy)]
struct SessionsSpec {
    tenants: usize,
    queries: usize,
    skew: f64,
    update_rate: f64,
    seed: u64,
}

impl Default for SessionsSpec {
    fn default() -> SessionsSpec {
        SessionsSpec {
            tenants: 3,
            queries: 8,
            skew: 1.2,
            update_rate: 0.1,
            seed: 41,
        }
    }
}

impl SessionsSpec {
    fn describe(&self) -> String {
        format!(
            "sessions: tenants={} queries={} skew={} updates={} seed={}",
            self.tenants, self.queries, self.skew, self.update_rate, self.seed
        )
    }
}

/// The shell state: a schema and the registered sources.
#[derive(Default)]
pub struct Session {
    schema: Option<Schema>,
    sources: Vec<SourceEntry>,
    faults: Option<FaultSettings>,
    cache: Option<AnswerCache>,
    sessions: SessionsSpec,
}

/// What the caller should do after a command.
#[derive(Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep reading input.
    Continue,
    /// Exit the shell.
    Quit,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Handles one input line; returns the text to print and whether to
    /// continue.
    pub fn handle(&mut self, line: &str) -> (String, Control) {
        let line = line.trim();
        if line.is_empty() {
            return (String::new(), Control::Continue);
        }
        if matches!(line, "\\quit" | "\\q" | "exit" | "quit") {
            return ("bye".into(), Control::Quit);
        }
        let out = if let Some(rest) = line.strip_prefix('\\') {
            self.command(rest)
        } else {
            self.query(line, QueryMode::Execute)
        };
        (
            out.unwrap_or_else(|e| format!("error: {e}")),
            Control::Continue,
        )
    }

    fn command(&mut self, rest: &str) -> Result<String> {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let cmd = parts.next().unwrap_or_default();
        let arg = parts.next().unwrap_or("").trim();
        match cmd {
            "help" | "h" => Ok(HELP.to_string()),
            "scenario" => self.cmd_scenario(arg),
            "schema" => self.cmd_schema(arg),
            "load" => self.cmd_load(arg),
            "sources" => Ok(self.cmd_sources()),
            "explain" => self.cmd_explain(arg),
            "lint" => self.cmd_lint(arg),
            "dataflow" => self.cmd_dataflow(arg),
            "check" => self.cmd_check(arg),
            "fetch" => self.cmd_fetch(arg),
            "exec" => self.cmd_exec(arg),
            "gantt" => self.cmd_gantt(arg),
            "trace" => self.cmd_trace(arg),
            "adaptive" => self.cmd_adaptive(arg),
            "reopt" => self.cmd_reopt(arg),
            "faults" => self.cmd_faults(arg),
            "cache" => self.cmd_cache(arg),
            "sessions" => self.cmd_sessions(arg),
            "serve" => self.cmd_serve(arg),
            "share" => self.cmd_share(arg),
            "plan" => {
                let mut p = arg.splitn(2, char::is_whitespace);
                let algo = p.next().unwrap_or_default().to_string();
                let sql = p.next().unwrap_or("").trim().to_string();
                self.cmd_plan(&algo, &sql)
            }
            other => Err(FusionError::execution(format!(
                "unknown command `\\{other}` (try \\help)"
            ))),
        }
    }

    fn cmd_scenario(&mut self, name: &str) -> Result<String> {
        let scenario = match name {
            "dmv" => fusion_workload::dmv::figure1_scenario(),
            "dmv-big" => fusion_workload::dmv::scaled_dmv_scenario(8, 20_000, 4_000, 42),
            "biblio" => {
                fusion_workload::biblio::biblio_scenario(5, 1_000, 6_000, &["database", "query"], 7)
            }
            "synth" => fusion_workload::synth::synth_scenario(
                &fusion_workload::synth::SynthSpec::default_with(6, 99),
                &[0.05, 0.4],
            ),
            other => {
                return Err(FusionError::execution(format!(
                    "unknown scenario `{other}` (dmv, dmv-big, biblio, synth)"
                )));
            }
        };
        let schema = scenario.query.schema().clone();
        self.sources = scenario
            .relations
            .iter()
            .enumerate()
            .map(|(i, rel)| {
                let id = fusion_types::SourceId(i);
                SourceEntry {
                    name: scenario.sources.get(id).name().to_string(),
                    relation: rel.clone(),
                    caps: *scenario.sources.get(id).capabilities(),
                    link: *scenario.network().link(id),
                    processing: *scenario.sources.get(id).processing(),
                }
            })
            .collect();
        self.schema = Some(schema.clone());
        Ok(format!(
            "loaded scenario `{}`: {} sources, schema {}",
            scenario.name,
            self.sources.len(),
            schema
        ))
    }

    fn cmd_schema(&mut self, spec: &str) -> Result<String> {
        if spec.is_empty() {
            return match &self.schema {
                Some(s) => Ok(format!("schema {s}")),
                None => Ok("no schema set (use \\schema L:str,V:str @L)".into()),
            };
        }
        let (cols, merge) = match spec.split_once('@') {
            Some((c, m)) => (c.trim(), m.trim()),
            None => (spec, ""),
        };
        let mut attrs = Vec::new();
        for col in cols.split(',') {
            let col = col.trim();
            if col.is_empty() {
                continue;
            }
            let (name, ty) = col.split_once(':').ok_or_else(|| {
                FusionError::parse(format!("column `{col}` must look like name:type"))
            })?;
            let ty = match ty.trim().to_ascii_lowercase().as_str() {
                "str" | "string" | "text" => ValueType::Str,
                "int" | "integer" => ValueType::Int,
                "float" | "real" | "double" => ValueType::Float,
                "bool" | "boolean" => ValueType::Bool,
                other => {
                    return Err(FusionError::parse(format!("unknown type `{other}`")));
                }
            };
            attrs.push(Attribute::new(name.trim(), ty));
        }
        let merge_name = if merge.is_empty() {
            attrs
                .first()
                .map(|a| a.name.clone())
                .ok_or_else(|| FusionError::parse("schema needs at least one column"))?
        } else {
            merge.to_string()
        };
        let schema = Schema::new(attrs, &merge_name)?;
        self.sources.clear();
        let text = format!("schema set to {schema} (sources cleared)");
        self.schema = Some(schema);
        Ok(text)
    }

    fn cmd_load(&mut self, arg: &str) -> Result<String> {
        let schema = self
            .schema
            .clone()
            .ok_or_else(|| FusionError::execution("set a \\schema (or \\scenario) first"))?;
        let tokens: Vec<&str> = arg.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(FusionError::execution(
                "usage: \\load <name> <file.csv> [full|emulated:N|selection-only] [lan|wan|inter|slow]",
            ));
        }
        let name = tokens[0].to_string();
        let path = std::path::Path::new(tokens[1]);
        let mut caps = Capabilities::full();
        let mut link = LinkProfile::Wan.link();
        for tok in &tokens[2..] {
            match *tok {
                "full" => caps = Capabilities::full(),
                "selection-only" => caps = Capabilities::selection_only(),
                "lan" => link = LinkProfile::Lan.link(),
                "wan" => link = LinkProfile::Wan.link(),
                "inter" | "intercontinental" => link = LinkProfile::Intercontinental.link(),
                "slow" => link = LinkProfile::Slow.link(),
                other => {
                    if let Some(batch) = other.strip_prefix("emulated:") {
                        let batch: usize = batch.parse().map_err(|_| {
                            FusionError::parse(format!("bad batch size in `{other}`"))
                        })?;
                        caps = Capabilities::emulated(batch.max(1));
                    } else {
                        return Err(FusionError::execution(format!("unknown option `{other}`")));
                    }
                }
            }
        }
        let relation = fusion_workload::csv::load_csv(path, &schema)?;
        let rows = relation.len();
        self.sources.push(SourceEntry {
            name: name.clone(),
            relation,
            caps,
            link,
            processing: ProcessingProfile::indexed_db(),
        });
        Ok(format!(
            "loaded `{name}` ({rows} rows) as R{}",
            self.sources.len()
        ))
    }

    fn cmd_sources(&self) -> String {
        if self.sources.is_empty() {
            return "no sources registered".into();
        }
        let mut out = String::new();
        for (i, s) in self.sources.iter().enumerate() {
            let caps = if s.caps.native_semijoin {
                "semijoin".to_string()
            } else if s.caps.passed_bindings {
                format!("emulated:{}", s.caps.binding_batch)
            } else {
                "selection-only".to_string()
            };
            out.push_str(&format!(
                "R{} `{}`: {} rows, {} distinct items, caps={}, link {:.0}ms/{:.0}KBps\n",
                i + 1,
                s.name,
                s.relation.len(),
                s.relation.distinct_items().len(),
                caps,
                s.link.latency * 1000.0,
                s.link.bandwidth / 1024.0
            ));
        }
        out.trim_end().to_string()
    }

    fn cmd_plan(&mut self, algo: &str, sql: &str) -> Result<String> {
        let (query, sources, network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let (plan, cost): (Plan, _) = match algo {
            "filter" => {
                let o = filter_plan(&model);
                (o.plan, o.cost)
            }
            "sj" => {
                let o = sj_optimal(&model);
                (o.plan, o.cost)
            }
            "sja" => {
                let o = sja_optimal(&model);
                (o.plan, o.cost)
            }
            "sja+" => {
                let o = sja_plus(&model);
                (o.plan, o.cost)
            }
            "greedy" => {
                let o = greedy_sja(&model);
                (o.plan, o.cost)
            }
            "rt" => {
                let o = sja_response_optimal(&model);
                (o.optimized.plan, o.optimized.cost)
            }
            other => {
                return Err(FusionError::execution(format!(
                    "unknown algorithm `{other}` (filter, sj, sja, sja+, greedy, rt)"
                )));
            }
        };
        Ok(format!(
            "{} plan, estimated cost {cost}:\n{}",
            algo,
            plan.listing_verbose(query.conditions())
        ))
    }

    /// Runs the semantic analyzer and the full lint registry (structural
    /// + dataflow rules) over every algorithm's plan for the query.
    fn cmd_lint(&mut self, arg: &str) -> Result<String> {
        let (flags, sql) = split_flags(arg);
        let json = parse_flags(&flags, &["--json"])?[0];
        let (query, sources, network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let bounds = self.source_bounds(&query);
        let plans: Vec<(&str, Plan)> = vec![
            ("filter", filter_plan(&model).plan),
            ("sj", sj_optimal(&model).plan),
            ("sja", sja_optimal(&model).plan),
            ("greedy", greedy_sja(&model).plan),
            ("sja+", sja_plus(&model).plan),
        ];
        if json {
            let mut rows = Vec::new();
            for (name, plan) in &plans {
                for d in dataflow_lint_plan(plan, &model, &bounds)? {
                    rows.push(diagnostic_json(Some(name), &d));
                }
            }
            return Ok(json_array(&rows));
        }
        let mut out = String::new();
        let mut findings = 0usize;
        for (name, plan) in &plans {
            let analysis = analyze_plan(plan)?;
            let verdict = if analysis.verdict().is_proved() {
                "proved equivalent to the fusion query"
            } else {
                "REFUTED"
            };
            let diags = dataflow_lint_plan(plan, &model, &bounds)?;
            out.push_str(&format!("{name}: {} steps, {verdict}", plan.steps.len()));
            if diags.is_empty() {
                out.push_str(", no lint findings\n");
            } else {
                out.push('\n');
                for d in &diags {
                    findings += 1;
                    out.push_str(&format!("  {d}\n"));
                }
            }
        }
        out.push_str(&format!(
            "{findings} finding(s) across {} plans",
            plans.len()
        ));
        Ok(out)
    }

    /// `\explain [--analyze] [--bounds] [--json] <sql>`: optimizer cost
    /// comparison and the annotated SJA+ plan, optionally with the
    /// semantic proof + lints (`--analyze`), static cardinality/cost
    /// intervals (`--bounds`), or machine-readable diagnostics
    /// (`--json`, requires `--analyze`).
    fn cmd_explain(&mut self, arg: &str) -> Result<String> {
        let (flags, sql) = split_flags(arg);
        let parsed = parse_flags(&flags, &["--analyze", "--bounds", "--json"])?;
        let (analyze, bounds_mode, json) = (parsed[0], parsed[1], parsed[2]);
        if json && !analyze {
            return Err(FusionError::execution(
                "\\explain --json requires --analyze (it emits the diagnostics)",
            ));
        }
        if sql.is_empty() {
            return Err(FusionError::execution("empty query"));
        }
        let (query, sources, network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let f = filter_plan(&model);
        let sj = sj_optimal(&model);
        let sja = sja_optimal(&model);
        let plus = sja_plus(&model);
        let bounds = self.source_bounds(&query);
        if json {
            let rows: Vec<String> = dataflow_lint_plan(&plus.plan, &model, &bounds)?
                .iter()
                .map(|d| diagnostic_json(None, d))
                .collect();
            return Ok(json_array(&rows));
        }
        let mut out = String::new();
        out.push_str(&format!(
            "estimated costs: FILTER {} | SJ {} | SJA {} | SJA+ {}\n\n",
            f.cost, sj.cost, sja.cost, plus.cost
        ));
        out.push_str(&explain(&plus.plan, &model, Some(query.conditions())));
        if analyze {
            let analysis = analyze_plan(&plus.plan)?;
            match analysis.verdict() {
                Verdict::Proved => out.push_str(
                    "\nsemantic analysis: proved — the plan computes \
                     ⋂_i ⋃_j sq(c_i, R_j)",
                ),
                Verdict::Refuted(cx) => {
                    out.push_str(&format!("\nsemantic analysis: REFUTED\n{cx}"));
                }
            }
            let diags = dataflow_lint_plan(&plus.plan, &model, &bounds)?;
            if diags.is_empty() {
                out.push_str("\nlint: no findings");
            } else {
                out.push_str("\nlint:");
                for d in &diags {
                    out.push_str(&format!("\n  {d}"));
                }
            }
        }
        if bounds_mode {
            let df = fusion_core::analyze_dataflow(&plus.plan, &model, &bounds)?;
            out.push('\n');
            out.push_str(&render_bounds(&plus.plan, &df));
        }
        Ok(out)
    }

    /// `\dataflow <sql>`: the SJA+ plan's def-use/liveness summary, its
    /// certified parallel-stage decomposition, and the static
    /// cardinality and cost intervals seeded from real per-source
    /// statistics.
    fn cmd_dataflow(&mut self, sql: &str) -> Result<String> {
        let (query, sources, network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let plus = sja_plus(&model);
        let bounds = self.source_bounds(&query);
        let df = fusion_core::analyze_dataflow(&plus.plan, &model, &bounds)?;
        let dead = df.live.iter().filter(|l| !**l).count();
        let mut out = format!(
            "SJA+ plan: {} steps, {} live, {} dead\n",
            plus.plan.steps.len(),
            plus.plan.steps.len() - dead,
            dead
        );
        out.push_str(&format!(
            "parallel stages (certificate checked against the BDD analyzer): {}\n",
            df.stages.stages.len()
        ));
        for (i, steps) in df.stages.stages.iter().enumerate() {
            let list: Vec<String> = steps.iter().map(|t| (t + 1).to_string()).collect();
            out.push_str(&format!("  stage {}: steps {}\n", i + 1, list.join(", ")));
        }
        out.push_str(&render_bounds(&plus.plan, &df));
        Ok(out)
    }

    /// `\check <sql>`: the concurrency certificate, end to end. Builds
    /// the SJA+ plan's certified event graph, prints every event's
    /// read/write footprint over shared state, runs the static
    /// interference analysis, and then model-checks the certificate:
    /// every reduced interleaving (plus seeded random linearizations)
    /// is replayed against the executor semantics and must reproduce
    /// the sequential reference byte-for-byte. Honors the session's
    /// `\faults` and `\cache` settings.
    fn cmd_check(&mut self, sql: &str) -> Result<String> {
        let (query, sources, network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let plus = sja_plus(&model);
        let stages = serial_queue_stages(&plus.plan)?;
        let cached = self.cache.is_some();
        let faults_on = self.faults.is_some();
        let graph = EventGraph::certified(&plus.plan, &stages, cached);
        let mut out = format!(
            "SJA+ plan: {} steps, {} certified stages, {} events{}{}\n",
            plus.plan.steps.len(),
            stages.len(),
            graph.events().len(),
            if cached {
                ", cached-executor semantics"
            } else {
                ""
            },
            if faults_on {
                ", fault-tolerant retries"
            } else {
                ""
            },
        );
        out.push_str("event footprints over shared state:\n");
        let names: Vec<String> = graph.events().iter().map(ToString::to_string).collect();
        let width = names.iter().map(String::len).max().unwrap_or(0);
        for (i, name) in names.iter().enumerate() {
            let fp = graph.footprint(i);
            out.push_str(&format!(
                "  {name:<width$}  reads {{{}}}  writes {{{}}}\n",
                render_resources(&fp.reads),
                render_resources(&fp.writes),
            ));
        }
        let interferences = graph.interferences();
        if interferences.is_empty() {
            out.push_str(
                "interference: none — every conflicting pair is ordered by the certificate\n",
            );
        } else {
            out.push_str("interference (the certificate is UNSAFE):\n");
            for i in &interferences {
                out.push_str(&format!("  {i}\n"));
            }
            return Ok(out);
        }
        let links: Vec<Link> = self.sources.iter().map(|s| s.link).collect();
        let fault_plan = self.fault_plan(self.sources.len())?;
        let make_net = move || {
            let mut n = Network::new(links.clone());
            if let Some(p) = &fault_plan {
                n.set_fault_plan(p.clone());
            }
            n
        };
        let policy = faults_on.then(RetryPolicy::default);
        let mut cfg = CheckConfig::default();
        if let Some(cache) = &self.cache {
            cfg = cfg.cached(cache.budget());
        }
        let report = check_certified(
            &plus.plan,
            &query,
            &sources,
            &make_net,
            policy.as_ref(),
            &cfg,
        )?;
        match &report.divergence {
            None => out.push_str(&format!(
                "model check: {} schedule(s) replayed{} — all byte-identical to the \
                 sequential reference",
                report.schedules_run,
                if report.truncated {
                    " (enumeration truncated)"
                } else {
                    ""
                }
            )),
            Some(d) => out.push_str(&format!("model check: DIVERGENCE\n  {d}")),
        }
        Ok(out)
    }

    /// Per-source statistics-seeded interval bounds for the query.
    fn source_bounds(&self, query: &FusionQuery) -> SourceBounds {
        let stats: Vec<TableStats> = self
            .sources
            .iter()
            .enumerate()
            .map(|(i, s)| TableStats::build(&s.relation, i as u64))
            .collect();
        SourceBounds::from_stats(query.conditions(), &stats)
    }

    /// Renders an ASCII Gantt chart of the SJA+ plan's parallel schedule.
    fn cmd_gantt(&mut self, sql: &str) -> Result<String> {
        let (query, sources, mut network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let plus = sja_plus(&model);
        let outcome = execute_plan(&plus.plan, &query, &sources, &mut network)?;
        let (placements, makespan) = fusion_exec::schedule(&plus.plan, &outcome.ledger)?;
        if makespan <= 0.0 {
            return Ok("nothing to schedule".into());
        }
        const WIDTH: usize = 60;
        let mut out = format!(
            "parallel schedule (total work {}, response time {:.3}):
",
            outcome.total_cost(),
            makespan
        );
        for j in 0..plus.plan.n_sources {
            let mut bar = vec![' '; WIDTH];
            for p in placements.iter().filter(|p| p.source.0 == j) {
                let s = ((p.start / makespan) * WIDTH as f64).floor() as usize;
                let e = (((p.finish / makespan) * WIDTH as f64).ceil() as usize).min(WIDTH);
                let glyph = match &plus.plan.steps[p.step] {
                    fusion_core::Step::Sq { .. } => 's',
                    fusion_core::Step::Sjq { .. } => 'j',
                    fusion_core::Step::SjqBloom { .. } => 'b',
                    fusion_core::Step::Lq { .. } => 'L',
                    _ => '?',
                };
                for cell in bar.iter_mut().take(e.max(s + 1)).skip(s) {
                    *cell = glyph;
                }
            }
            out.push_str(&format!(
                "R{:<3} |{}|
",
                j + 1,
                bar.iter().collect::<String>()
            ));
        }
        out.push_str("      0");
        out.push_str(&" ".repeat(WIDTH.saturating_sub(8)));
        out.push_str(&format!(
            "{makespan:.2}
"
        ));
        out.push_str("      s = selection, j = semijoin, b = bloom semijoin, L = full load");
        Ok(out)
    }

    /// Shows the raw exchange trace of executing the SJA+ plan.
    fn cmd_trace(&mut self, sql: &str) -> Result<String> {
        let (query, sources, mut network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let plus = sja_plus(&model);
        let outcome = execute_plan(&plus.plan, &query, &sources, &mut network)?;
        let mut out = format!(
            "{} exchanges, {} bytes sent, {} bytes received, total cost {}:\n",
            network.trace().len(),
            network.trace().iter().map(|e| e.req_bytes).sum::<usize>(),
            network.trace().iter().map(|e| e.resp_bytes).sum::<usize>(),
            outcome.total_cost()
        );
        for (i, e) in network.trace().iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {:<5} {}  →{:>8}B  ←{:>8}B  {}\n",
                i + 1,
                e.kind.to_string(),
                e.source,
                e.req_bytes,
                e.resp_bytes,
                e.cost
            ));
        }
        out.push_str(&format!("answer: {}", outcome.answer));
        Ok(out)
    }

    /// Executes with mid-query re-optimization and reports the rounds.
    fn cmd_adaptive(&mut self, sql: &str) -> Result<String> {
        let (query, sources, mut network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let faults_on = self.faults.is_some();
        let out = if faults_on {
            let policy = RetryPolicy::default();
            fusion_exec::execute_adaptive_ft(&query, &sources, &mut network, &model, &policy)?
        } else {
            fusion_exec::execute_adaptive(&query, &sources, &mut network, &model)?
        };
        let mut text = format!(
            "answer ({} items): {}
executed cost {} with per-round re-optimization:",
            out.answer.len(),
            out.answer,
            out.total_cost()
        );
        if faults_on {
            text.push_str(&format!("\ncompleteness: {}", out.completeness));
        }
        for round in &out.rounds {
            let kinds: Vec<&str> = round
                .choices
                .iter()
                .map(|c| match c {
                    fusion_core::SourceChoice::Selection => "sq",
                    fusion_core::SourceChoice::Semijoin => "sjq",
                })
                .collect();
            text.push_str(&format!(
                "
  {}: [{}]  predicted |X| ≈ {:.0}, observed {}",
                round.cond,
                kinds.join(" "),
                round.predicted_size,
                round.actual_size
            ));
        }
        Ok(text)
    }

    /// Executes with certified runtime re-optimization: the SJA plan
    /// runs with interval monitoring, and an observation escaping its
    /// believed bounds re-opens the suffix search. An optional leading
    /// `xF` (e.g. `x16`) inflates every cardinality estimate by F, so
    /// the locked-in plan misestimates and the switch machinery is
    /// visible on demand.
    fn cmd_reopt(&mut self, arg: &str) -> Result<String> {
        let (factor, sql) = match arg.split_once(char::is_whitespace) {
            Some((head, rest)) if head.starts_with('x') => match head[1..].parse::<f64>() {
                Ok(f) if f > 0.0 => (f, rest.trim()),
                _ => {
                    return Err(FusionError::parse(format!(
                        "bad distortion `{head}` (use e.g. x16)"
                    )));
                }
            },
            _ => (1.0, arg),
        };
        let (query, sources, mut network) = self.materialize(sql)?;
        let base = NetworkCostModel::new(&sources, &network, &query, None);
        let model = DistortedModel {
            inner: &base,
            factor,
        };
        let opt = sja_optimal(&model);
        let mut session = fusion_exec::ReoptSession::new(query.m(), sources.len(), 4096);
        let out = fusion_exec::execute_plan_reopt(
            &opt.spec,
            &query,
            &sources,
            &mut network,
            &model,
            None,
            &mut session,
            &fusion_exec::ReoptConfig::default(),
        )?;
        // Independently re-certify and re-execute from the recorded
        // switches before reporting anything.
        let make_net = || {
            let mut n = Network::new(self.sources.iter().map(|s| s.link).collect());
            if let Ok(Some(plan)) = self.fault_plan(self.sources.len()) {
                n.set_fault_plan(plan);
            }
            n
        };
        let verified =
            fusion_check::verify_reopt_replay(&out, &opt.spec, &query, &sources, &make_net)?;
        let mut text = format!(
            "answer ({} items): {}\nexecuted cost {}; {} interval violation{}, {} certified switch{}",
            out.outcome.answer.len(),
            out.outcome.answer,
            out.total_cost(),
            out.violations,
            if out.violations == 1 { "" } else { "s" },
            out.switches.len(),
            if out.switches.len() == 1 { "" } else { "es" },
        );
        if factor != 1.0 {
            text.push_str(&format!(" (estimates distorted x{factor})"));
        }
        for sw in &out.switches {
            text.push_str(&format!(
                "\n  after round {}: step #{} returned {} items, believed {} — \
                 re-searched suffix from |X|={:.0}: {} → {} ({})",
                sw.rounds_done,
                sw.violating_step + 1,
                sw.observed,
                sw.expected,
                sw.x0,
                sw.old_suffix_cost,
                sw.new_suffix_cost,
                sw.certificate,
            ));
        }
        let stats = session.memo.stats();
        text.push_str(&format!(
            "\nmemo: {} invocation{}, {} expansions, {} resumed, {} exhausted hits; \
             feedback: {} cells observed; replay: {} switch{} re-certified bit-for-bit",
            stats.invocations,
            if stats.invocations == 1 { "" } else { "s" },
            stats.expansions,
            stats.resumed,
            stats.exhausted_hits,
            session.feedback.observed_cells(),
            verified,
            if verified == 1 { "" } else { "es" },
        ));
        Ok(text)
    }

    /// Configures deterministic fault injection for query execution.
    ///
    /// `\faults` shows the settings, `\faults off` disables injection,
    /// and `\faults [seed=N] [transient=P] [timeout=P] [slow=PxF]
    /// [outage=J@K]` enables it: every exchange draws from a seeded
    /// schedule, failed queries are retried with backoff, and when a
    /// source stays down the query degrades to a partial answer.
    fn cmd_faults(&mut self, arg: &str) -> Result<String> {
        if arg.is_empty() {
            return Ok(match &self.faults {
                Some(f) => f.describe(),
                None => "faults off".into(),
            });
        }
        if arg == "off" {
            self.faults = None;
            return Ok("faults off".into());
        }
        let mut seed = 0u64;
        let mut spec = FaultSpec::none();
        let mut outage = None;
        for tok in arg.split_whitespace() {
            let (key, val) = tok.split_once('=').ok_or_else(|| {
                FusionError::parse(format!(
                    "bad fault option `{tok}` (seed=N transient=P timeout=P \
                     slow=PxF outage=J@K, or `off`)"
                ))
            })?;
            let bad = |what: &str| FusionError::parse(format!("bad {what} in `{tok}`"));
            match key {
                "seed" => seed = val.parse().map_err(|_| bad("seed"))?,
                "transient" => {
                    spec.transient_rate = val.parse().map_err(|_| bad("rate"))?;
                }
                "timeout" => spec.timeout_rate = val.parse().map_err(|_| bad("rate"))?,
                "slow" => {
                    let (rate, factor) = val.split_once('x').ok_or_else(|| bad("slow spec"))?;
                    spec.slowdown_rate = rate.parse().map_err(|_| bad("rate"))?;
                    spec.slowdown_factor = factor.parse().map_err(|_| bad("factor"))?;
                }
                "outage" => {
                    let (j, from) = val.split_once('@').ok_or_else(|| bad("outage spec"))?;
                    let j: usize = j.parse().map_err(|_| bad("source number"))?;
                    if j == 0 {
                        return Err(bad("source number (sources are 1-based)"));
                    }
                    let from: usize = from.parse().map_err(|_| bad("attempt index"))?;
                    outage = Some((j - 1, from));
                }
                other => {
                    return Err(FusionError::parse(format!(
                        "unknown fault option `{other}`"
                    )));
                }
            }
        }
        let rates_valid = [spec.transient_rate, spec.timeout_rate, spec.slowdown_rate]
            .iter()
            .all(|r| (0.0..=1.0).contains(r))
            && spec.transient_rate + spec.timeout_rate + spec.slowdown_rate <= 1.0
            && spec.slowdown_factor >= 1.0;
        if !rates_valid {
            return Err(FusionError::parse(
                "fault rates must lie in [0, 1], sum to at most 1, and the \
                 slowdown factor must be at least 1",
            ));
        }
        let settings = FaultSettings { seed, spec, outage };
        let text = settings.describe();
        self.faults = Some(settings);
        Ok(text)
    }

    /// `\cache` shows the answer-cache status, `\cache on [budget=N]`
    /// enables semantic caching (queries are optimized against the warm
    /// snapshot and served from cache where possible), `\cache clear`
    /// drops all entries, and `\cache off` disables it.
    fn cmd_cache(&mut self, arg: &str) -> Result<String> {
        match arg {
            "" => Ok(self.describe_cache()),
            "off" => {
                self.cache = None;
                Ok("cache off".into())
            }
            "clear" => match self.cache.as_mut() {
                Some(c) => {
                    c.clear();
                    Ok("cache cleared".into())
                }
                None => Err(FusionError::execution("cache is off (use \\cache on)")),
            },
            other => {
                let rest = other.strip_prefix("on").ok_or_else(|| {
                    FusionError::parse(format!(
                        "bad cache option `{other}` (\\cache [on [budget=N] | off | clear])"
                    ))
                })?;
                let rest = rest.trim();
                let budget = if rest.is_empty() {
                    DEFAULT_CACHE_BUDGET
                } else if let Some(v) = rest.strip_prefix("budget=") {
                    v.parse()
                        .map_err(|_| FusionError::parse(format!("bad budget in `{rest}`")))?
                } else {
                    return Err(FusionError::parse(format!(
                        "bad cache option `{rest}` (\\cache on [budget=N])"
                    )));
                };
                self.cache = Some(AnswerCache::new(budget));
                Ok(format!("cache on: budget {budget} bytes"))
            }
        }
    }

    /// `\sessions` shows the multi-tenant workload settings and a
    /// preview of the generated streams; `\sessions key=val...` updates
    /// them (tenants=N queries=K skew=S updates=P seed=X).
    fn cmd_sessions(&mut self, arg: &str) -> Result<String> {
        for tok in arg.split_whitespace() {
            let (key, val) = tok.split_once('=').ok_or_else(|| {
                FusionError::parse(format!(
                    "bad session option `{tok}` (tenants=N queries=K skew=S updates=P seed=X)"
                ))
            })?;
            let bad = |what: &str| FusionError::parse(format!("bad {what} in `{tok}`"));
            match key {
                "tenants" => {
                    self.sessions.tenants = val.parse().map_err(|_| bad("tenant count"))?;
                }
                "queries" => {
                    self.sessions.queries = val.parse().map_err(|_| bad("query count"))?;
                }
                "skew" => self.sessions.skew = val.parse().map_err(|_| bad("skew"))?,
                "updates" => {
                    self.sessions.update_rate = val.parse().map_err(|_| bad("update rate"))?;
                }
                "seed" => self.sessions.seed = val.parse().map_err(|_| bad("seed"))?,
                other => {
                    return Err(FusionError::parse(format!(
                        "unknown session option `{other}`"
                    )));
                }
            }
        }
        if self.sessions.tenants == 0 || self.sessions.queries == 0 {
            return Err(FusionError::parse("tenants and queries must be positive"));
        }
        let mut out = vec![self.sessions.describe()];
        for (t, stream) in self.tenant_streams().iter().enumerate() {
            let events: Vec<String> = stream
                .iter()
                .map(|e| match e {
                    TenantEvent::Query(_) => "q".to_string(),
                    TenantEvent::Update(s) => format!("upd(R{})", s.0 + 1),
                })
                .collect();
            out.push(format!("tenant {t}: {}", events.join(" ")));
        }
        Ok(out.join("\n"))
    }

    /// The synthetic scenario and per-tenant streams `\serve` runs:
    /// every tenant draws from one shared Zipf query pool (so the
    /// shared cache has cross-tenant reuse to find) but follows its own
    /// event stream.
    fn tenant_streams(&self) -> Vec<Vec<TenantEvent>> {
        let spec = fusion_workload::session::SessionSpec {
            m: 2,
            n_sources: SERVE_SOURCES,
            pool: 6,
            n_queries: self.sessions.queries,
            skew: self.sessions.skew,
            update_rate: self.sessions.update_rate,
            sel_range: (0.02, 0.45),
            seed: self.sessions.seed ^ 0x5E55,
        };
        (0..self.sessions.tenants)
            .map(|t| {
                fusion_workload::session::generate_session_for_tenant(&spec, t as u64)
                    .events
                    .iter()
                    .map(|e| match e {
                        fusion_workload::session::SessionEvent::Query { query, .. } => {
                            TenantEvent::Query(query.clone())
                        }
                        fusion_workload::session::SessionEvent::Update { source } => {
                            TenantEvent::Update(*source)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The synthetic scenario `\serve` and `\share` run over.
    fn serve_scenario(&self) -> fusion_workload::Scenario {
        fusion_workload::synth::synth_scenario(
            &fusion_workload::synth::SynthSpec {
                n_sources: SERVE_SOURCES,
                domain_size: 1_000,
                rows_per_source: 400,
                seed: self.sessions.seed,
                ..fusion_workload::synth::SynthSpec::default_with(SERVE_SOURCES, self.sessions.seed)
            },
            &[0.2, 0.2],
        )
    }

    /// `\serve [workers=W] [budget=N] [limit=L] [share=on|off]`: run
    /// the `\sessions` workload through the multi-tenant server over a
    /// shared answer cache, then serially replay the admission log and
    /// byte-compare every answer and ledger before reporting.
    fn cmd_serve(&mut self, arg: &str) -> Result<String> {
        let mut config = ServerConfig::with_workers(4);
        config.cache_budget = DEFAULT_CACHE_BUDGET;
        for tok in arg.split_whitespace() {
            let (key, val) = tok.split_once('=').ok_or_else(|| {
                FusionError::parse(format!(
                    "bad serve option `{tok}` (workers=W budget=N limit=L share=on|off)"
                ))
            })?;
            let bad = |what: &str| FusionError::parse(format!("bad {what} in `{tok}`"));
            match key {
                "workers" => {
                    let w: usize = val.parse().map_err(|_| bad("worker count"))?;
                    if w == 0 {
                        return Err(bad("worker count (must be positive)"));
                    }
                    config.workers = w;
                    config.max_in_flight = w;
                }
                "budget" => config.cache_budget = val.parse().map_err(|_| bad("budget"))?,
                "limit" => {
                    let l: usize = val.parse().map_err(|_| bad("limit"))?;
                    if l == 0 {
                        return Err(bad("limit (must be positive)"));
                    }
                    config.per_source_limit = l;
                }
                "share" => {
                    config.share = match val {
                        "on" => true,
                        "off" => false,
                        _ => return Err(bad("share setting (on|off)")),
                    };
                }
                other => {
                    return Err(FusionError::parse(format!(
                        "unknown serve option `{other}`"
                    )));
                }
            }
        }
        let scenario = self.serve_scenario();
        let tenants = self.tenant_streams();
        let netf = || scenario.network();
        let report = serve(
            &scenario.sources,
            &netf,
            Some(scenario.domain_size),
            &tenants,
            &config,
        )?;
        let (replayed, fp) = replay_serial(
            &scenario.sources,
            &netf,
            Some(scenario.domain_size),
            &tenants,
            &config,
            &report.log,
        )?;
        let parity = verify_replay_parity(&report, &replayed, &fp)?;
        let s = &report.cache;
        let lookups = s.hits + s.residual_hits + s.misses;
        let served_exact: usize = report.results.iter().map(|r| r.served_exact).sum();
        let served_residual: usize = report.results.iter().map(|r| r.served_residual).sum();
        let shared: usize = report.results.iter().map(|r| r.shared).sum();
        let shared_residual: usize = report.results.iter().map(|r| r.shared_residual).sum();
        Ok(format!(
            "served {} queries from {} tenants over {} workers ({} shed)\n\
             total executed cost {:.3}, {} of {} lookups cached \
             ({served_exact} exact + {served_residual} residual selections served warm)\n\
             sharing {}: {shared} selections rode co-admitted fetches \
             ({shared_residual} through a residual filter)\n\
             log: {} ops, {} commuting pairs, linearization certified\n\
             replay parity: {parity} answers and ledgers byte-identical to the serial replay",
            report.results.len(),
            tenants.len(),
            config.workers,
            report.shed.len(),
            report.total_cost().value(),
            s.hits + s.residual_hits,
            lookups,
            if config.share { "on" } else { "off" },
            report.log.len(),
            report.commuting_pairs,
        ))
    }

    /// `\share`: static cross-query sharing analysis of the
    /// co-admission front — the first query of every tenant in the
    /// `\sessions` workload, planned as the server would plan it,
    /// analyzed as one in-flight batch. Prints the BDD-proved sharing
    /// graph, the certified merged schedule, and the sharing lints.
    fn cmd_share(&mut self, arg: &str) -> Result<String> {
        if !arg.is_empty() {
            return Err(FusionError::parse(format!(
                "\\share takes no options (got `{arg}`)"
            )));
        }
        let scenario = self.serve_scenario();
        let tenants = self.tenant_streams();
        let mut batch: Vec<(u64, Plan, FusionQuery)> = Vec::new();
        for (t, stream) in tenants.iter().enumerate() {
            let Some(TenantEvent::Query(q)) =
                stream.iter().find(|e| matches!(e, TenantEvent::Query(_)))
            else {
                continue;
            };
            let model = NetworkCostModel::new(
                &scenario.sources,
                &scenario.network(),
                q,
                Some(scenario.domain_size),
            );
            batch.push((t as u64 + 1, sja_optimal(&model).plan, q.clone()));
        }
        let plans: Vec<InFlightPlan<'_>> = batch
            .iter()
            .map(|(qid, p, q)| InFlightPlan {
                qid: *qid,
                plan: p,
                conditions: q.conditions(),
            })
            .collect();
        let prover = |b: &Predicate, n: &Predicate| subsumes(b, n);
        let report = sharing_report(&plans, &prover)?;
        let g = &report.graph;
        let mut out = vec![format!(
            "sharing analysis over {} co-admitted plans: {} remote steps, \
             {} predicate classes",
            plans.len(),
            g.nodes.len(),
            g.n_pred_classes,
        )];
        if g.edges.is_empty() {
            out.push("no cross-query relations proved".into());
        } else {
            out.push(format!("proved edges ({}):", g.edges.len()));
            for e in &g.edges {
                let (a, b) = (&g.nodes[e.from], &g.nodes[e.to]);
                out.push(match e.kind {
                    EdgeKind::Equivalent => {
                        format!("  {} == {}  equivalent", a.label(), b.label())
                    }
                    EdgeKind::Contains => format!("  {} >= {}  contains", a.label(), b.label()),
                });
            }
        }
        out.push(format!(
            "merged schedule: {} exchanges for {} selections",
            report.schedule.fetches.len(),
            g.nodes.iter().filter(|n| !n.probe).count(),
        ));
        for f in &report.schedule.fetches {
            let leader = &g.nodes[f.leader];
            let mut line = format!(
                "  R{} class {}: {} fetches",
                f.source.0 + 1,
                f.class,
                leader.label()
            );
            if !f.followers.is_empty() {
                let fan: Vec<String> = f
                    .followers
                    .iter()
                    .map(|x| {
                        let n = &g.nodes[x.node];
                        if x.residual {
                            format!("{}+residual", n.label())
                        } else {
                            n.label()
                        }
                    })
                    .collect();
                line.push_str(&format!(", serves {}", fan.join(" ")));
            }
            out.push(line);
        }
        if !g.probe_batches.is_empty() {
            out.push(format!("batchable probe groups: {}", g.probe_batches.len()));
        }
        let c = &report.certificate;
        out.push(format!(
            "certificate: {} exchanges, {} served ({} residual), \
             {} containments proved, {} conflicting pairs ordered by fan-out",
            c.exchanges, c.served, c.residuals, c.containments_proved, c.ordered_pairs,
        ));
        let findings: Vec<Diagnostic> = duplicate_inflight_findings(&plans, g, &report.schedule)
            .into_iter()
            .chain(unshared_subsumed_findings(&plans, g, &report.schedule))
            .chain(unsound_merge_findings(&plans, g, &report.schedule, &prover))
            .collect();
        if findings.is_empty() {
            out.push(
                "lints quiet: duplicate-inflight-step, unshared-subsumed-step, \
                 unsound-merge-residual"
                    .into(),
            );
        } else {
            for d in findings {
                out.push(format!("lint {}: {}", d.rule, d.message));
            }
        }
        Ok(out.join("\n"))
    }

    /// The `\cache` status text: size, epochs, and lifetime counters.
    fn describe_cache(&self) -> String {
        let Some(c) = &self.cache else {
            return "cache off".into();
        };
        let s = c.stats();
        let epochs = if self.sources.is_empty() {
            "-".to_string()
        } else {
            c.epochs(self.sources.len())
                .iter()
                .enumerate()
                .map(|(j, e)| format!("R{}={e}", j + 1))
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!(
            "cache on: {} entries, {} of {} bytes used\n\
             epochs: {epochs}\n\
             hits {} ({} residual), misses {}, insertions {}, evictions {}, \
             rejections {}, invalidations {}",
            c.len(),
            c.bytes_used(),
            c.budget(),
            s.hits,
            s.residual_hits,
            s.misses,
            s.insertions,
            s.evictions,
            s.rejections,
            s.invalidations
        )
    }

    /// `\exec [--parallel[=T]] <sql>`: execute explicitly, optionally on
    /// the multi-threaded executor with makespan measurements.
    fn cmd_exec(&mut self, arg: &str) -> Result<String> {
        let arg = arg.trim();
        let (threads, sql) = if let Some(rest) = arg.strip_prefix("--parallel") {
            let (spec, sql) = match rest.split_once(char::is_whitespace) {
                Some((spec, sql)) => (spec, sql.trim()),
                None => (rest, ""),
            };
            let threads = match spec.strip_prefix('=') {
                None if spec.is_empty() => ParallelConfig::default().threads,
                Some(t) => t.parse::<usize>().map_err(|_| {
                    FusionError::execution(format!("bad thread count `{t}` in --parallel={t}"))
                })?,
                None => {
                    return Err(FusionError::execution(format!(
                        "unknown option `--parallel{spec}` (try --parallel or --parallel=T)"
                    )));
                }
            };
            if threads == 0 {
                return Err(FusionError::execution("--parallel needs at least 1 thread"));
            }
            (Some(threads), sql)
        } else {
            (None, arg)
        };
        let Some(threads) = threads else {
            return self.query(sql, QueryMode::Execute);
        };
        if sql.is_empty() {
            return Err(FusionError::execution("empty query"));
        }
        let (query, sources, mut network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        let faults_on = self.faults.is_some();
        let n_sources = self.sources.len();
        let config = ParallelConfig::with_threads(threads);
        let mut cache_line = None;
        let par = if let Some(cache) = self.cache.as_mut() {
            let snap = cache.snapshot(query.conditions(), n_sources);
            let cmodel = CachedCostModel::new(&model, &snap);
            // SJA, not SJA+, for the same reason as `query`: load-based
            // postoptimized plans would bypass the cache entirely.
            let plus = sja_optimal(&cmodel);
            let before = *cache.stats();
            let par = if faults_on {
                let policy = RetryPolicy::default();
                fusion_exec::execute_plan_parallel_ft_cached(
                    &plus.plan,
                    &query,
                    &sources,
                    &mut network,
                    &policy,
                    &config,
                    cache,
                )?
            } else {
                fusion_exec::execute_plan_parallel_cached(
                    &plus.plan,
                    &query,
                    &sources,
                    &mut network,
                    &config,
                    cache,
                )?
            };
            let after = *cache.stats();
            cache_line = Some(format!(
                "\ncache: {} exact, {} residual, {} miss",
                after.hits - before.hits,
                after.residual_hits - before.residual_hits,
                after.misses - before.misses
            ));
            par
        } else {
            let plus = sja_plus(&model);
            if faults_on {
                let policy = RetryPolicy::default();
                fusion_exec::execute_plan_parallel_ft(
                    &plus.plan,
                    &query,
                    &sources,
                    &mut network,
                    &policy,
                    &config,
                )?
            } else {
                fusion_exec::execute_plan_parallel(
                    &plus.plan,
                    &query,
                    &sources,
                    &mut network,
                    &config,
                )?
            }
        };
        let outcome = &par.outcome;
        let total = outcome.total_cost();
        let mut out = format!(
            "answer ({} items): {}\nexecuted cost {} over {} round trips\n\
             parallel: {} threads over {} stages, simulated makespan {:.3} \
             ({:.2}x over total work), wall clock {:.1} ms",
            outcome.answer.len(),
            outcome.answer,
            total,
            outcome.ledger.round_trips(),
            par.threads,
            par.stages,
            par.makespan,
            total.value() / par.makespan.max(f64::MIN_POSITIVE),
            par.wall.as_secs_f64() * 1e3,
        );
        if let Some(line) = cache_line {
            out.push_str(&line);
        }
        if faults_on {
            out.push_str(&format!(
                "\ncompleteness: {}\nattempts {} ({} failed), failed-attempt cost {}",
                outcome.completeness,
                outcome.ledger.attempts_total(),
                outcome
                    .ledger
                    .attempts_total()
                    .saturating_sub(outcome.ledger.round_trips()),
                outcome.ledger.failed_total()
            ));
        }
        Ok(out)
    }

    /// The session's fault plan for `n` sources, if faults are on.
    fn fault_plan(&self, n: usize) -> Result<Option<FaultPlan>> {
        let Some(f) = &self.faults else {
            return Ok(None);
        };
        let mut plan = FaultPlan::uniform(n, f.seed, f.spec.validated());
        if let Some((j, from)) = f.outage {
            if j >= n {
                return Err(FusionError::execution(format!(
                    "fault outage names source R{} but only {n} sources are \
                     registered",
                    j + 1
                )));
            }
            plan = plan.with_outage(SourceId(j), from);
        }
        Ok(Some(plan))
    }

    /// `\fetch [attrs=A,B] [broadcast] <sql>` — phase one converges the
    /// item set, then phase two retrieves the named non-merge
    /// attributes (all of them by default) through the cost-based
    /// covering planner, or through the broadcast baseline on request.
    fn cmd_fetch(&mut self, arg: &str) -> Result<String> {
        let mut opts = FetchOpts::default();
        let mut rest = arg;
        loop {
            let mut parts = rest.splitn(2, char::is_whitespace);
            let head = parts.next().unwrap_or_default();
            if let Some(list) = head.strip_prefix("attrs=") {
                opts.attrs = Some(
                    list.split(',')
                        .filter(|a| !a.is_empty())
                        .map(str::to_string)
                        .collect(),
                );
            } else if head == "broadcast" {
                opts.broadcast = true;
            } else {
                break;
            }
            rest = parts.next().unwrap_or("").trim();
        }
        self.query(rest, QueryMode::Fetch(opts))
    }

    /// Resolves requested attribute names to ascending schema indexes;
    /// an empty request means every non-merge attribute.
    fn resolve_fetch_attrs(schema: &Schema, opts: &FetchOpts) -> Result<Vec<usize>> {
        let Some(names) = &opts.attrs else {
            return Ok(fusion_core::phase2::non_merge_attrs(schema));
        };
        let mut attrs = Vec::new();
        for name in names {
            let idx = schema
                .attributes()
                .iter()
                .position(|a| a.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    FusionError::execution(format!("unknown attribute `{name}` in attrs="))
                })?;
            if idx == schema.merge_index() {
                return Err(FusionError::execution(format!(
                    "`{name}` is the merge attribute; it is part of every record"
                )));
            }
            if !attrs.contains(&idx) {
                attrs.push(idx);
            }
        }
        attrs.sort_unstable();
        if attrs.is_empty() {
            return Err(FusionError::execution("attrs= names no attributes"));
        }
        Ok(attrs)
    }

    fn query(&mut self, sql: &str, mode: QueryMode) -> Result<String> {
        if sql.is_empty() {
            return Err(FusionError::execution("empty query"));
        }
        let (query, sources, mut network) = self.materialize(sql)?;
        let model = NetworkCostModel::new(&sources, &network, &query, None);
        match mode {
            QueryMode::Execute | QueryMode::Fetch(_) => {
                let faults_on = self.faults.is_some();
                let n_sources = self.sources.len();
                let mut cache_line = None;
                let outcome = if let Some(cache) = self.cache.as_mut() {
                    let snap = cache.snapshot(query.conditions(), n_sources);
                    let cmodel = CachedCostModel::new(&model, &snap);
                    // SJA (not SJA+): post-optimization can replace sq
                    // rounds with whole-relation loads, which the cache
                    // can neither serve nor harvest. The selection /
                    // semijoin plans keep the cache in the loop.
                    let plus = sja_optimal(&cmodel);
                    let before = *cache.stats();
                    let outcome = if faults_on {
                        let policy = RetryPolicy::default();
                        fusion_exec::execute_plan_ft_cached(
                            &plus.plan,
                            &query,
                            &sources,
                            &mut network,
                            &policy,
                            cache,
                        )?
                    } else {
                        fusion_exec::execute_plan_cached(
                            &plus.plan,
                            &query,
                            &sources,
                            &mut network,
                            cache,
                        )?
                    };
                    let after = *cache.stats();
                    cache_line = Some(format!(
                        "\ncache: {} exact, {} residual, {} miss",
                        after.hits - before.hits,
                        after.residual_hits - before.residual_hits,
                        after.misses - before.misses
                    ));
                    outcome
                } else {
                    let plus = sja_plus(&model);
                    if faults_on {
                        let policy = RetryPolicy::default();
                        execute_plan_ft(&plus.plan, &query, &sources, &mut network, &policy)?
                    } else {
                        execute_plan(&plus.plan, &query, &sources, &mut network)?
                    }
                };
                let mut out = format!(
                    "answer ({} items): {}\nexecuted cost {} over {} round trips",
                    outcome.answer.len(),
                    outcome.answer,
                    outcome.total_cost(),
                    outcome.ledger.round_trips()
                );
                if let Some(line) = cache_line {
                    out.push_str(&line);
                }
                if faults_on {
                    out.push_str(&format!(
                        "\ncompleteness: {}\nattempts {} ({} failed), failed-attempt cost {}",
                        outcome.completeness,
                        outcome.ledger.attempts_total(),
                        outcome
                            .ledger
                            .attempts_total()
                            .saturating_sub(outcome.ledger.round_trips()),
                        outcome.ledger.failed_total()
                    ));
                }
                if let QueryMode::Fetch(opts) = &mode {
                    if outcome.answer.is_empty() {
                        out.push_str("\nnothing to fetch: the answer is empty");
                    } else if opts.broadcast {
                        let fetched = fetch_records(&outcome.answer, &sources, &mut network)?;
                        out.push_str(&format!(
                            "\nbroadcast fetched {} records (cost {}):",
                            fetched.records.len(),
                            fetched.cost
                        ));
                        push_records(&mut out, &fetched.records);
                    } else {
                        let schema = query.schema().clone();
                        let attrs = Self::resolve_fetch_attrs(&schema, opts)?;
                        let relations: Vec<Relation> =
                            self.sources.iter().map(|s| s.relation.clone()).collect();
                        let fetchable: Vec<bool> =
                            self.sources.iter().map(|s| s.caps.record_fetch).collect();
                        let catalog = fusion_core::phase2::CoverageCatalog::from_relations(
                            &schema, &relations, &fetchable,
                        );
                        // Price the broadcast baseline on a pristine
                        // clone so the comparison shares phase one.
                        let mut bnet = network.clone();
                        let policy = faults_on.then(RetryPolicy::default);
                        let (plan, cert, fetched) = fusion_exec::fetch_planned(
                            &outcome.answer,
                            &attrs,
                            &catalog,
                            &model,
                            &schema,
                            &sources,
                            &mut network,
                            self.cache.as_mut(),
                            policy.as_ref(),
                        )?;
                        let names: Vec<&str> = attrs
                            .iter()
                            .map(|&a| schema.attribute(a).name.as_str())
                            .collect();
                        out.push_str(&format!(
                            "\nfetch plan for {{{}}}: {} assignments, planned cost {} \
                             (certified lower bound {:.3})",
                            names.join(", "),
                            cert.n_assignments,
                            cert.planned,
                            cert.lower_bound,
                        ));
                        for a in &plan.assignments {
                            out.push_str(&format!(
                                "\n  {} <- {} items x {} attrs in {} batches (est {})",
                                self.sources[a.source.0].name,
                                a.items.len(),
                                a.attrs.len(),
                                a.batches,
                                a.est_cost
                            ));
                        }
                        if fetched.cached_served > 0 {
                            out.push_str(&format!(
                                "\n  cache served {} items at zero exchange cost",
                                fetched.cached_served
                            ));
                        }
                        if let Ok(broadcast) = fetch_records(&outcome.answer, &sources, &mut bnet) {
                            out.push_str(&format!(
                                "\n  broadcast baseline would cost {} for full records",
                                broadcast.cost
                            ));
                        }
                        out.push_str(&format!(
                            "\nfetched {} records (cost {} over {} round trips):",
                            fetched.records.len(),
                            fetched.total_cost(),
                            fetched.ledger.round_trips()
                        ));
                        push_records(&mut out, &fetched.records);
                        if !fetched.missing.is_empty() {
                            out.push_str(&format!("\ncompleteness: {}", fetched.completeness));
                            for (item, lacking) in fetched.missing.iter().take(10) {
                                out.push_str(&format!(
                                    "\n  {item} lacks {{{}}}",
                                    lacking.join(", ")
                                ));
                            }
                            if fetched.missing.len() > 10 {
                                out.push_str(&format!(
                                    "\n  ... {} more items incomplete",
                                    fetched.missing.len() - 10
                                ));
                            }
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Parses the SQL and builds fresh wrappers + network for one run.
    fn materialize(&self, sql: &str) -> Result<(FusionQuery, SourceSet, Network)> {
        let schema = self
            .schema
            .clone()
            .ok_or_else(|| FusionError::execution("set a \\schema (or \\scenario) first"))?;
        if self.sources.is_empty() {
            return Err(FusionError::execution(
                "no sources registered (use \\load or \\scenario)",
            ));
        }
        let parsed = fusion_sql::parse_query(sql)?;
        let shape = fusion_sql::into_fusion_shape(&parsed, &schema)?;
        let query = FusionQuery::new(
            schema,
            shape.conditions.into_iter().map(Into::into).collect(),
        )?;
        let sources = SourceSet::new(
            self.sources
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    Box::new(InMemoryWrapper::new(
                        s.name.clone(),
                        s.relation.clone(),
                        s.caps,
                        s.processing,
                        i as u64,
                    )) as Box<dyn fusion_source::Wrapper>
                })
                .collect(),
        );
        let mut network = Network::new(self.sources.iter().map(|s| s.link).collect());
        if let Some(plan) = self.fault_plan(self.sources.len())? {
            network.set_fault_plan(plan);
        }
        Ok((query, sources, network))
    }
}

/// Every command the shell dispatches, by primary name (aliases like
/// `\h` and `\q` excluded). The dispatcher and the `\help` text are
/// both audited against this table in tests, so adding a command here
/// (or to the dispatcher) without documenting it fails the build's
/// test step.
pub const COMMANDS: &[&str] = &[
    "scenario", "schema", "load", "sources", "explain", "lint", "dataflow", "check", "plan",
    "exec", "fetch", "gantt", "trace", "adaptive", "reopt", "faults", "cache", "sessions", "serve",
    "share", "help", "quit",
];

/// The text shown by `\help`.
pub const HELP: &str = "\
commands:
  \\scenario <dmv|dmv-big|biblio|synth>   load a built-in scenario
  \\schema <name:type,... [@merge]>       define the common schema
  \\load <name> <file.csv> [caps] [link]  register a CSV-backed source
         caps: full | emulated:N | selection-only
         link: lan | wan | inter | slow
  \\sources                               list registered sources
  \\explain [--analyze] [--bounds] [--json] <sql>
         optimizer costs + annotated plan
         --analyze: also prove the plan computes the fusion query + lint it
         --bounds:  static cardinality/cost intervals + response-time bound
         --json:    with --analyze, emit the diagnostics as JSON
  \\lint [--json] <sql>                   analyze + lint every algorithm's plan
  \\dataflow <sql>                        liveness, certified parallel stages,
         and statistics-seeded interval bounds for the SJA+ plan
  \\check <sql>                           concurrency certificate, end to end:
         per-event read/write footprints, static interference analysis of
         the certified stage schedule, and the deterministic schedule
         model-checker (every reduced interleaving replayed, byte-compared
         against the sequential run). Honors \\faults and \\cache.
  \\plan <filter|sj|sja|sja+|greedy|rt> <sql>   show one algorithm's plan
  \\exec [--parallel[=T]] <sql>           execute the SJA+ plan; --parallel
         runs the certified stage schedule on T worker threads (default:
         available cores) and reports the simulated makespan and measured
         wall clock — answers and costs are identical to sequential runs
  \\fetch [attrs=A,B] [broadcast] <sql>   execute, then fetch records for the
         named non-merge attributes (default all) via the cost-based
         covering planner; `broadcast` runs the every-source baseline
  \\gantt <sql>                           ASCII Gantt chart of the SJA+ plan's
         parallel stage schedule
  \\trace <sql>                           raw network exchange trace of
         executing the SJA+ plan
  \\adaptive <sql>                        execute with mid-query
         re-optimization and report each round
  \\reopt [xF] <sql>                      execute with certified runtime
         re-optimization: observed cardinalities are checked against
         believed intervals at every round boundary; a violation
         re-searches the remaining suffix under a budgeted memo and
         splices the winner in only if the switch certifies (prefix
         identity, BDD semantics, race-free stages). The run is then
         replayed bit-for-bit from its switch records. xF inflates
         every estimate by F to provoke a visible switch.
  \\faults [off | seed=N transient=P timeout=P slow=PxF outage=J@K]
         deterministic fault injection: failed exchanges are retried with
         backoff; a source that stays down degrades the query to a
         partial (subset) answer. outage=J@K downs source J (1-based)
         from its K-th attempt.
  \\cache [on [budget=N] | off | clear]   semantic answer cache (default
         off): repeated selections are served locally — exactly or by
         subsumption with a residual filter — plans are re-optimized
         against the warm snapshot, and source updates invalidate by
         epoch. \\cache alone shows size, epochs, and hit/miss counters.
  \\sessions [tenants=N] [queries=K] [skew=S] [updates=P] [seed=X]
         configure and preview the multi-tenant Zipf session workload
         \\serve runs: one shared query pool, a per-tenant event stream
         with occasional source updates. \\sessions alone shows the
         current settings and streams.
  \\serve [workers=W] [budget=N] [limit=L] [share=on|off]
         run the session workload through the multi-tenant mediator
         server: a pool of W workers interleaves every tenant's queries
         over one shared answer cache (budget N bytes, at most L
         in-flight exchanges per source); share=on (the default) merges
         provably equivalent or contained selections of co-admitted
         queries into one certified fetch with fan-out. The admission
         log is then replayed serially and every answer and ledger
         byte-compared before reporting.
  \\share                                 static cross-query sharing
         analysis of the co-admission front (the first query of every
         tenant): the BDD-proved sharing graph, the certified merged
         schedule — one exchange per equivalence class, residual
         filters for proper containments — and the sharing lints.
  \\help                                  this text
  \\quit                                  exit
anything else is parsed as a fusion query and executed with SJA+";

#[derive(Debug, Clone, PartialEq, Eq)]
enum QueryMode {
    Execute,
    Fetch(FetchOpts),
}

/// Options parsed off the front of a `\fetch` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct FetchOpts {
    /// Requested non-merge attributes by name; `None` means all of them.
    attrs: Option<Vec<String>>,
    /// Skip the planner and run the broadcast baseline instead.
    broadcast: bool,
}

/// A cost model whose per-cell cardinality estimates are inflated by a
/// constant factor — the `\reopt xF` misestimation knob. Costs are
/// untouched; only `est_sq_items` (and everything derived from it)
/// drifts, exactly the failure mode stale statistics produce.
struct DistortedModel<'a, M: fusion_core::CostModel> {
    inner: &'a M,
    factor: f64,
}

impl<M: fusion_core::CostModel> fusion_core::CostModel for DistortedModel<'_, M> {
    fn n_conditions(&self) -> usize {
        self.inner.n_conditions()
    }

    fn n_sources(&self) -> usize {
        self.inner.n_sources()
    }

    fn sq_cost(&self, cond: fusion_types::CondId, source: SourceId) -> fusion_types::Cost {
        self.inner.sq_cost(cond, source)
    }

    fn sjq_cost(
        &self,
        cond: fusion_types::CondId,
        source: SourceId,
        est_items: f64,
    ) -> fusion_types::Cost {
        self.inner.sjq_cost(cond, source, est_items)
    }

    fn sjq_bloom_cost(
        &self,
        cond: fusion_types::CondId,
        source: SourceId,
        est_items: f64,
        bits: u8,
    ) -> fusion_types::Cost {
        self.inner.sjq_bloom_cost(cond, source, est_items, bits)
    }

    fn lq_cost(&self, source: SourceId) -> fusion_types::Cost {
        self.inner.lq_cost(source)
    }

    fn est_sq_items(&self, cond: fusion_types::CondId, source: SourceId) -> f64 {
        (self.inner.est_sq_items(cond, source) * self.factor).min(self.domain_size())
    }

    fn domain_size(&self) -> f64 {
        // The distorted domain grows with the estimates, so inflated
        // cells do not saturate into indistinguishability.
        self.inner.domain_size() * self.factor.max(1.0)
    }
}

/// Splits leading `--flag` tokens off a command argument.
fn split_flags(arg: &str) -> (Vec<&str>, &str) {
    let mut rest = arg.trim();
    let mut flags = Vec::new();
    while rest.starts_with("--") {
        let (flag, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        flags.push(flag);
        rest = tail.trim();
    }
    (flags, rest)
}

/// Matches the given flags against the `known` set; returns one bool per
/// known flag and rejects anything else.
fn parse_flags(flags: &[&str], known: &[&str]) -> Result<Vec<bool>> {
    let mut on = vec![false; known.len()];
    for f in flags {
        match known.iter().position(|k| k == f) {
            Some(i) => on[i] = true,
            None => {
                return Err(FusionError::execution(format!(
                    "unknown flag `{f}` (expected {})",
                    known.join(", ")
                )));
            }
        }
    }
    Ok(on)
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One diagnostic as a JSON object (with an optional `algo` tag).
fn diagnostic_json(algo: Option<&str>, d: &Diagnostic) -> String {
    let mut fields = Vec::new();
    if let Some(a) = algo {
        fields.push(format!("\"algo\": \"{}\"", json_escape(a)));
    }
    fields.push(format!("\"rule\": \"{}\"", json_escape(d.rule)));
    fields.push(format!("\"severity\": \"{}\"", d.severity));
    fields.push(format!("\"step\": {}", d.step));
    fields.push(format!("\"message\": \"{}\"", json_escape(&d.message)));
    format!("{{{}}}", fields.join(", "))
}

/// Renders a JSON array, one element per line.
fn json_array(rows: &[String]) -> String {
    if rows.is_empty() {
        return "[]".into();
    }
    format!("[\n  {}\n]", rows.join(",\n  "))
}

/// Renders a footprint's resource list compactly.
fn render_resources(resources: &[Resource]) -> String {
    resources
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the per-step interval table of a dataflow analysis.
fn render_bounds(plan: &Plan, df: &Dataflow) -> String {
    let listing = plan.listing();
    let lines: Vec<&str> = listing.lines().collect();
    let width = lines.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    let mut out = String::from("static bounds (|out| and cost per step):\n");
    for (t, line) in lines.iter().enumerate() {
        let pad = width - line.chars().count();
        out.push_str(&format!(
            "  {}{}  |out| ∈ {}  cost ∈ {}{}\n",
            line,
            " ".repeat(pad),
            df.step_bounds[t],
            df.step_costs[t],
            if df.live[t] { "" } else { "  (dead)" }
        ));
    }
    out.push_str(&format!(
        "plan cost ∈ {}; response time ≥ {:.3}",
        df.total_cost, df.response_lb
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DMV_SQL: &str = "SELECT u1.L FROM U u1, U u2 \
                           WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";

    fn run(session: &mut Session, line: &str) -> String {
        let (out, ctl) = session.handle(line);
        assert_eq!(ctl, Control::Continue, "unexpected quit for `{line}`");
        out
    }

    #[test]
    fn scenario_query_roundtrip() {
        let mut s = Session::new();
        let out = run(&mut s, "\\scenario dmv");
        assert!(out.contains("3 sources"), "{out}");
        let out = run(&mut s, DMV_SQL);
        assert!(out.contains("{J55, T21}"), "{out}");
        assert!(out.contains("executed cost"), "{out}");
    }

    #[test]
    fn exec_parallel_matches_sequential_answer() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let seq = run(&mut s, &format!("\\exec {DMV_SQL}"));
        assert!(seq.contains("{J55, T21}"), "{seq}");
        assert!(seq.contains("executed cost"), "{seq}");
        for spec in ["--parallel", "--parallel=2", "--parallel=8"] {
            let out = run(&mut s, &format!("\\exec {spec} {DMV_SQL}"));
            assert!(out.contains("{J55, T21}"), "{spec}: {out}");
            assert!(out.contains("simulated makespan"), "{spec}: {out}");
            assert!(out.contains("wall clock"), "{spec}: {out}");
            // Identical executed cost line as the sequential run.
            let cost = |o: &str| {
                o.lines()
                    .find(|l| l.starts_with("executed cost"))
                    .map(str::to_string)
            };
            assert_eq!(cost(&out), cost(&seq), "{spec}");
        }
    }

    #[test]
    fn exec_parallel_with_faults_reports_completeness() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        run(&mut s, "\\faults seed=7 transient=0.4");
        let seq = run(&mut s, &format!("\\exec {DMV_SQL}"));
        let par = run(&mut s, &format!("\\exec --parallel=4 {DMV_SQL}"));
        assert!(par.contains("completeness:"), "{par}");
        assert!(par.contains("simulated makespan"), "{par}");
        let line = |o: &str, tag: &str| o.lines().find(|l| l.starts_with(tag)).map(str::to_string);
        for tag in ["answer", "executed cost", "completeness", "attempts"] {
            assert_eq!(line(&par, tag), line(&seq, tag), "{tag}");
        }
    }

    #[test]
    fn exec_rejects_bad_parallel_specs() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\exec --parallel=zero {DMV_SQL}"));
        assert!(out.contains("bad thread count"), "{out}");
        let out = run(&mut s, &format!("\\exec --parallel=0 {DMV_SQL}"));
        assert!(out.contains("at least 1 thread"), "{out}");
        let out = run(&mut s, &format!("\\exec --parallelism {DMV_SQL}"));
        assert!(out.contains("unknown option"), "{out}");
        let out = run(&mut s, "\\exec --parallel");
        assert!(out.contains("empty query"), "{out}");
    }

    #[test]
    fn check_command_verifies_the_certificate() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\check {DMV_SQL}"));
        assert!(out.contains("certified stages"), "{out}");
        assert!(out.contains("event footprints over shared state"), "{out}");
        assert!(out.contains("interference: none"), "{out}");
        assert!(
            out.contains("byte-identical to the sequential reference"),
            "{out}"
        );
        // The checker honors the session's fault and cache settings.
        run(&mut s, "\\faults seed=7 transient=0.4");
        run(&mut s, "\\cache on");
        let out = run(&mut s, &format!("\\check {DMV_SQL}"));
        assert!(out.contains("cached-executor semantics"), "{out}");
        assert!(out.contains("fault-tolerant retries"), "{out}");
        assert!(out.contains("bump[R"), "{out}");
        assert!(
            out.contains("byte-identical to the sequential reference"),
            "{out}"
        );
    }

    #[test]
    fn explain_and_plan_commands() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\explain {DMV_SQL}"));
        assert!(out.contains("FILTER"), "{out}");
        assert!(out.contains("est.cost"), "{out}");
        for algo in ["filter", "sj", "sja", "sja+", "greedy", "rt"] {
            let out = run(&mut s, &format!("\\plan {algo} {DMV_SQL}"));
            assert!(out.contains("estimated cost"), "{algo}: {out}");
            assert!(out.contains(":= sq("), "{algo}: {out}");
        }
    }

    #[test]
    fn explain_analyze_reports_proof_and_lint() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\explain --analyze {DMV_SQL}"));
        assert!(out.contains("estimated costs"), "{out}");
        assert!(out.contains("semantic analysis: proved"), "{out}");
        assert!(out.contains("lint:"), "{out}");
    }

    #[test]
    fn explain_bounds_prints_intervals() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\explain --bounds {DMV_SQL}"));
        assert!(out.contains("static bounds"), "{out}");
        assert!(out.contains("|out| ∈ ["), "{out}");
        assert!(out.contains("plan cost ∈ ["), "{out}");
        assert!(out.contains("response time ≥"), "{out}");
        // Flags compose: --analyze --bounds shows both sections.
        let out = run(&mut s, &format!("\\explain --analyze --bounds {DMV_SQL}"));
        assert!(out.contains("semantic analysis: proved"), "{out}");
        assert!(out.contains("static bounds"), "{out}");
    }

    #[test]
    fn explain_json_emits_diagnostics() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\explain --analyze --json {DMV_SQL}"));
        // The optimizer's plan is clean, so the array is empty — but it
        // must still be valid JSON.
        assert_eq!(out, "[]", "{out}");
        let out = run(&mut s, &format!("\\explain --json {DMV_SQL}"));
        assert!(out.contains("error"), "{out}");
        let out = run(&mut s, &format!("\\explain --nope {DMV_SQL}"));
        assert!(out.contains("unknown flag"), "{out}");
    }

    #[test]
    fn lint_json_mode_is_machine_readable() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        // The toy DMV relations are so small that shipping queries over
        // the WAN costs more than loading them outright, so the
        // dataflow cost lint fires on the query-only plans — and the
        // JSON mode reports each finding as one object.
        let out = run(&mut s, &format!("\\lint --json {DMV_SQL}"));
        assert!(out.starts_with("[\n"), "{out}");
        assert!(out.ends_with("\n]"), "{out}");
        assert!(
            out.contains("{\"algo\": \"filter\", \"rule\": \"transfer-exceeds-load\", \"severity\": \"warning\", \"step\": 1, \"message\": "),
            "{out}"
        );
    }

    #[test]
    fn dataflow_command_reports_stages_and_bounds() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\dataflow {DMV_SQL}"));
        assert!(out.contains("certificate checked"), "{out}");
        assert!(out.contains("stage 1: steps"), "{out}");
        assert!(out.contains("|out| ∈ ["), "{out}");
        assert!(out.contains("response time ≥"), "{out}");
        assert!(!out.contains("(dead)"), "{out}");
    }

    #[test]
    fn diagnostic_json_escapes_and_tags() {
        let d = Diagnostic {
            rule: "dead-step",
            severity: fusion_core::analyze::Severity::Warning,
            step: 3,
            message: "say \"hi\"\\".into(),
        };
        assert_eq!(
            diagnostic_json(Some("sja"), &d),
            "{\"algo\": \"sja\", \"rule\": \"dead-step\", \"severity\": \"warning\", \
             \"step\": 3, \"message\": \"say \\\"hi\\\"\\\\\"}"
        );
    }

    #[test]
    fn lint_command_covers_all_algorithms() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\lint {DMV_SQL}"));
        for algo in ["filter", "sj", "sja", "greedy", "sja+"] {
            assert!(out.contains(&format!("{algo}:")), "{algo} missing: {out}");
        }
        assert!(out.contains("proved equivalent"), "{out}");
        assert!(out.contains("across 5 plans"), "{out}");
    }

    #[test]
    fn schema_and_csv_loading() {
        let dir = std::env::temp_dir().join("fusionq-test");
        std::fs::create_dir_all(&dir).unwrap();
        let f1 = dir.join("r1.csv");
        let f2 = dir.join("r2.csv");
        std::fs::write(&f1, "L,V,D\nJ55,dui,1993\nT21,sp,1994\n").unwrap();
        std::fs::write(&f2, "L,V,D\nT21,dui,1996\nJ55,sp,1996\n").unwrap();
        let mut s = Session::new();
        let out = run(&mut s, "\\schema L:str,V:str,D:int @L");
        assert!(out.contains("schema set"), "{out}");
        let out = run(
            &mut s,
            &format!("\\load east {} emulated:5 slow", f1.display()),
        );
        assert!(out.contains("2 rows"), "{out}");
        run(&mut s, &format!("\\load west {} full lan", f2.display()));
        let out = run(&mut s, "\\sources");
        assert!(out.contains("emulated:5"), "{out}");
        assert!(out.contains("semijoin"), "{out}");
        let out = run(&mut s, DMV_SQL);
        assert!(out.contains("{J55, T21}"), "{out}");
    }

    #[test]
    fn trace_command_lists_exchanges() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\trace {DMV_SQL}"));
        assert!(out.contains("exchanges"), "{out}");
        assert!(out.contains("R1"), "{out}");
        assert!(out.contains("answer: {J55, T21}"), "{out}");
    }

    #[test]
    fn gantt_and_adaptive_commands() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\gantt {DMV_SQL}"));
        assert!(out.contains("response time"), "{out}");
        assert!(out.contains("R1"), "{out}");
        assert!(out.contains('|'), "{out}");
        let out = run(&mut s, &format!("\\adaptive {DMV_SQL}"));
        assert!(out.contains("{J55, T21}"), "{out}");
        assert!(out.contains("observed"), "{out}");
    }

    #[test]
    fn reopt_command_reports_switches_and_replay() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        // Undistorted estimates: the answer comes back and nothing
        // needs to switch (the report still shows the memo/replay line).
        let out = run(&mut s, &format!("\\reopt {DMV_SQL}"));
        assert!(out.contains("{J55, T21}"), "{out}");
        assert!(out.contains("0 certified switches"), "{out}");
        assert!(out.contains("re-certified bit-for-bit"), "{out}");
        // Heavily inflated estimates misprice the locked-in plan; the
        // interval violation fires a certified switch mid-flight.
        let out = run(&mut s, &format!("\\reopt x500 {DMV_SQL}"));
        assert!(out.contains("{J55, T21}"), "{out}");
        assert!(out.contains("distorted x500"), "{out}");
        assert!(out.contains("violation"), "{out}");
        let out = run(&mut s, "\\reopt xq SELECT u1.L FROM U u1");
        assert!(out.contains("bad distortion"), "{out}");
    }

    #[test]
    fn fetch_returns_records() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\fetch {DMV_SQL}"));
        assert!(out.contains("fetch plan"), "{out}");
        assert!(out.contains("fetched"), "{out}");
        assert!(out.contains("'J55'"), "{out}");
    }

    #[test]
    fn fetch_planned_and_broadcast_agree_on_records() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let planned = run(&mut s, &format!("\\fetch {DMV_SQL}"));
        let broadcast = run(&mut s, &format!("\\fetch broadcast {DMV_SQL}"));
        assert!(broadcast.contains("broadcast fetched"), "{broadcast}");
        // The DMV sources hold *different* records per item, so the
        // broadcast union is wider; every planned record must appear in
        // it (the planner picks real rows, one covering record per
        // item), and covering costs strictly less than broadcasting.
        let rows = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| l.starts_with("  ('"))
                .map(str::to_string)
                .collect()
        };
        let (p, b) = (rows(&planned), rows(&broadcast));
        assert!(!p.is_empty(), "{planned}");
        assert!(
            p.iter().all(|r| b.contains(r)),
            "{planned}\n---\n{broadcast}"
        );
        assert!(
            planned.contains("broadcast baseline would cost"),
            "{planned}"
        );
    }

    #[test]
    fn fetch_attrs_narrows_the_request_and_rejects_nonsense() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, &format!("\\fetch attrs=V {DMV_SQL}"));
        assert!(out.contains("fetch plan for {V}"), "{out}");
        assert!(out.contains("fetched"), "{out}");
        let out = run(&mut s, &format!("\\fetch attrs=Bogus {DMV_SQL}"));
        assert!(out.contains("unknown attribute"), "{out}");
        let out = run(&mut s, &format!("\\fetch attrs=L {DMV_SQL}"));
        assert!(out.contains("merge attribute"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new();
        let out = run(&mut s, "SELECT nope");
        assert!(out.starts_with("error:"), "{out}");
        let out = run(&mut s, "\\nosuch");
        assert!(out.contains("unknown command"), "{out}");
        let out = run(&mut s, "\\plan warp SELECT u1.L FROM U u1");
        assert!(out.contains("error"), "{out}");
        run(&mut s, "\\scenario dmv");
        let out = run(&mut s, "SELECT u1.Z FROM U u1 WHERE u1.Z = 'x'");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn faults_command_roundtrip() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        assert_eq!(run(&mut s, "\\faults"), "faults off");
        // A permanent outage at R3 from the first attempt: the answer
        // degrades to a subset computed from the surviving sources.
        let out = run(&mut s, "\\faults seed=7 outage=3@0");
        assert!(out.contains("outage=R3@0"), "{out}");
        let out = run(&mut s, DMV_SQL);
        assert!(out.contains("completeness: subset"), "{out}");
        assert!(out.contains("missing sources: R3"), "{out}");
        // Determinism: the same seed yields the same report.
        assert_eq!(out, run(&mut s, DMV_SQL));
        // Transient faults with retries still reach the exact answer.
        run(&mut s, "\\faults seed=7 transient=0.3");
        let out = run(&mut s, DMV_SQL);
        assert!(out.contains("{J55, T21}"), "{out}");
        assert!(out.contains("completeness: exact"), "{out}");
        let out = run(&mut s, "\\faults off");
        assert_eq!(out, "faults off");
        let out = run(&mut s, DMV_SQL);
        assert!(!out.contains("completeness"), "{out}");
    }

    #[test]
    fn faults_command_rejects_nonsense() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        assert!(run(&mut s, "\\faults transient=1.5").starts_with("error:"));
        assert!(run(&mut s, "\\faults whatever").starts_with("error:"));
        assert!(run(&mut s, "\\faults outage=0@0").starts_with("error:"));
        // Outage at a source that does not exist fails at query time.
        run(&mut s, "\\faults outage=9@0");
        assert!(run(&mut s, DMV_SQL).starts_with("error:"));
    }

    #[test]
    fn cache_command_roundtrip() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        assert_eq!(run(&mut s, "\\cache"), "cache off");
        let out = run(&mut s, "\\cache on");
        assert!(out.contains("cache on"), "{out}");
        // Cold query: every sq is a miss, answer unchanged.
        let cold = run(&mut s, DMV_SQL);
        assert!(cold.contains("{J55, T21}"), "{cold}");
        assert!(
            cold.contains("cache: 0 exact, 0 residual, 6 miss"),
            "{cold}"
        );
        // Warm repeat: everything served from cache, total cost zero.
        let warm = run(&mut s, DMV_SQL);
        assert!(warm.contains("{J55, T21}"), "{warm}");
        assert!(
            warm.contains("cache: 6 exact, 0 residual, 0 miss"),
            "{warm}"
        );
        assert!(
            warm.contains("executed cost 0.000 over 0 round trips"),
            "{warm}"
        );
        // Status shows entries, epochs, and counters.
        let status = run(&mut s, "\\cache");
        assert!(status.contains("6 entries"), "{status}");
        assert!(status.contains("R1=0"), "{status}");
        assert!(status.contains("misses 6"), "{status}");
        // Parallel execution uses the cache too.
        let par = run(&mut s, &format!("\\exec --parallel=2 {DMV_SQL}"));
        assert!(par.contains("{J55, T21}"), "{par}");
        assert!(par.contains("cache: 6 exact, 0 residual, 0 miss"), "{par}");
        // Clear drops entries; the next run misses again.
        assert_eq!(run(&mut s, "\\cache clear"), "cache cleared");
        let out = run(&mut s, DMV_SQL);
        assert!(out.contains("cache: 0 exact, 0 residual, 6 miss"), "{out}");
        assert_eq!(run(&mut s, "\\cache off"), "cache off");
        assert!(!run(&mut s, DMV_SQL).contains("cache:"));
    }

    #[test]
    fn cache_command_rejects_nonsense() {
        let mut s = Session::new();
        assert!(run(&mut s, "\\cache clear").starts_with("error:"));
        assert!(run(&mut s, "\\cache maybe").starts_with("error:"));
        assert!(run(&mut s, "\\cache on budget=lots").starts_with("error:"));
        let out = run(&mut s, "\\cache on budget=4096");
        assert!(out.contains("4096"), "{out}");
    }

    #[test]
    fn cached_faulty_run_reports_completeness() {
        let mut s = Session::new();
        run(&mut s, "\\scenario dmv");
        run(&mut s, "\\cache on");
        run(&mut s, "\\faults seed=7 transient=0.3");
        let out = run(&mut s, DMV_SQL);
        assert!(out.contains("{J55, T21}"), "{out}");
        assert!(out.contains("completeness: exact"), "{out}");
        assert!(out.contains("cache:"), "{out}");
    }

    #[test]
    fn quit_and_help() {
        let mut s = Session::new();
        let help = run(&mut s, "\\help");
        // Every command in the shared dispatch table is documented, and
        // every one of them actually dispatches (no "unknown command").
        for cmd in COMMANDS {
            assert!(
                help.contains(&format!("\\{cmd}")),
                "help is missing \\{cmd}"
            );
            let mut probe = Session::new();
            let (out, _) = probe.handle(&format!("\\{cmd}"));
            assert!(
                !out.contains("unknown command"),
                "\\{cmd} is in COMMANDS but does not dispatch: {out}"
            );
        }
        // And the table is exact: names outside it are rejected.
        let mut probe = Session::new();
        let (out, _) = probe.handle("\\nosuchcmd");
        assert!(out.contains("unknown command"), "{out}");
        let (out, ctl) = s.handle("\\quit");
        assert_eq!(ctl, Control::Quit);
        assert_eq!(out, "bye");
    }

    #[test]
    fn sessions_configure_and_preview() {
        let mut s = Session::new();
        let out = run(&mut s, "\\sessions tenants=2 queries=4 seed=7");
        assert!(out.contains("tenants=2"), "{out}");
        assert!(out.contains("tenant 0:"), "{out}");
        assert!(out.contains("tenant 1:"), "{out}");
        assert!(!out.contains("tenant 2:"), "{out}");
        assert!(run(&mut s, "\\sessions tenants=0").starts_with("error:"));
        assert!(run(&mut s, "\\sessions bogus=1").starts_with("error:"));
        assert!(run(&mut s, "\\sessions nonsense").starts_with("error:"));
    }

    #[test]
    fn serve_runs_the_session_workload_with_replay_parity() {
        let mut s = Session::new();
        run(&mut s, "\\sessions tenants=2 queries=4");
        let out = run(&mut s, "\\serve workers=2");
        assert!(
            out.contains("served 8 queries from 2 tenants over 2 workers"),
            "{out}"
        );
        assert!(out.contains("byte-identical to the serial replay"), "{out}");
        assert!(out.contains("linearization certified"), "{out}");
        assert!(out.contains("sharing on:"), "{out}");
        assert!(out.contains("selections served warm"), "{out}");
        let off = run(&mut s, "\\serve workers=2 share=off");
        assert!(
            off.contains("sharing off: 0 selections rode co-admitted fetches"),
            "{off}"
        );
        assert!(run(&mut s, "\\serve workers=0").starts_with("error:"));
        assert!(run(&mut s, "\\serve speed=11").starts_with("error:"));
        assert!(run(&mut s, "\\serve share=maybe").starts_with("error:"));
    }

    #[test]
    fn share_prints_the_certified_sharing_analysis() {
        let mut s = Session::new();
        run(&mut s, "\\sessions tenants=3 queries=4 seed=11");
        let out = run(&mut s, "\\share");
        assert!(
            out.contains("sharing analysis over 3 co-admitted plans"),
            "{out}"
        );
        assert!(out.contains("merged schedule:"), "{out}");
        assert!(out.contains("certificate:"), "{out}");
        assert!(out.contains("lints quiet"), "{out}");
        assert!(run(&mut s, "\\share bogus").starts_with("error:"));
    }

    #[test]
    fn empty_lines_are_ignored() {
        let mut s = Session::new();
        assert_eq!(run(&mut s, "   "), "");
    }
}
