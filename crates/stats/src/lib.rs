//! Statistics for fusion-query cost estimation.
//!
//! The optimizers of §3 consume cost functions `sq_cost` / `sjq_cost` that
//! "can use whatever information is available at query optimization time".
//! This crate provides that information for autonomous sources:
//!
//! * [`ColumnStats`] / [`TableStats`] — per-attribute equi-depth histograms,
//!   most-common values, distinct counts, and a deterministic value sample,
//!   built by scanning or sampling a wrapper's relation.
//! * [`estimate_selectivity`] — predicate selectivity estimation over those
//!   statistics (histogram interpolation for numeric ranges, MCV lookup for
//!   point predicates, sample evaluation as the general fallback).
//! * [`union_estimate`] / [`chain_estimate`] — cardinality arithmetic for
//!   the semijoin-set sizes `|X_i|` the SJ/SJA algorithms need.
//! * [`CostCalibration`] — least-squares fitting of per-source cost
//!   coefficients from observed exchanges, in the spirit of the query
//!   sampling method of Zhu & Larson \[25\] which the paper cites for
//!   gathering "the relevant statistical information that the cost
//!   functions need".

#![forbid(unsafe_code)]

pub mod calibration;
pub mod cardinality;
pub mod estimator;
pub mod feedback;
pub mod histogram;
pub mod sample;

pub use calibration::{CostCalibration, Observation};
pub use cardinality::{chain_estimate, intersect_estimate, union_estimate};
pub use estimator::estimate_selectivity;
pub use feedback::{CardObservation, CardinalityFeedback, ConditionFeedback};
pub use histogram::{ColumnStats, NumericHistogram, TableStats};
pub use sample::SplitMix64;
