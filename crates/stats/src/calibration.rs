//! Least-squares calibration of per-source cost coefficients.
//!
//! Autonomous Internet sources do not publish their cost parameters. The
//! paper points to query-sampling techniques (Zhu & Larson \[25\], Du et
//! al. \[5\]) for "gathering the relevant statistical information that the
//! cost functions need". We implement the core of that idea: issue sample
//! queries, observe `(request bytes, response bytes, cost)` triples, and
//! fit the affine model
//!
//! ```text
//! cost ≈ base + send · req_bytes + recv · resp_bytes
//! ```
//!
//! by ordinary least squares. The fitted coefficients parameterize a
//! per-source cost function that needs no cooperation from the source.

/// One observed exchange with a source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Request payload bytes.
    pub req_bytes: f64,
    /// Response payload bytes.
    pub resp_bytes: f64,
    /// Observed cost of the exchange.
    pub cost: f64,
}

/// A fitted affine cost model for one source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCalibration {
    /// Fixed per-query cost (overhead + round-trip latency).
    pub base: f64,
    /// Cost per request byte.
    pub send_per_byte: f64,
    /// Cost per response byte.
    pub recv_per_byte: f64,
    /// Root-mean-square residual of the fit.
    pub rms_error: f64,
}

impl CostCalibration {
    /// Fits the affine model to observations by least squares.
    ///
    /// Returns `None` with fewer than 3 observations or when the normal
    /// equations are singular (e.g. all observations identical). Negative
    /// fitted coefficients are clamped to zero (costs cannot be negative);
    /// the residual reflects the clamped model.
    pub fn fit(obs: &[Observation]) -> Option<CostCalibration> {
        if obs.len() < 3 {
            return None;
        }
        // Normal equations for X = [1, req, resp], solve (XᵀX)β = Xᵀy.
        let n = obs.len() as f64;
        let (mut sr, mut sp, mut srr, mut spp, mut srp) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let (mut sy, mut sry, mut spy) = (0.0, 0.0, 0.0);
        for o in obs {
            sr += o.req_bytes;
            sp += o.resp_bytes;
            srr += o.req_bytes * o.req_bytes;
            spp += o.resp_bytes * o.resp_bytes;
            srp += o.req_bytes * o.resp_bytes;
            sy += o.cost;
            sry += o.req_bytes * o.cost;
            spy += o.resp_bytes * o.cost;
        }
        let a = [[n, sr, sp], [sr, srr, srp], [sp, srp, spp]];
        let b = [sy, sry, spy];
        let beta = solve3(a, b)?;
        let cal = CostCalibration {
            base: beta[0].max(0.0),
            send_per_byte: beta[1].max(0.0),
            recv_per_byte: beta[2].max(0.0),
            rms_error: 0.0,
        };
        let mse = obs
            .iter()
            .map(|o| {
                let e = cal.predict(o.req_bytes, o.resp_bytes) - o.cost;
                e * e
            })
            .sum::<f64>()
            / n;
        Some(CostCalibration {
            rms_error: mse.sqrt(),
            ..cal
        })
    }

    /// Predicted cost of an exchange.
    pub fn predict(&self, req_bytes: f64, resp_bytes: f64) -> f64 {
        self.base + self.send_per_byte * req_bytes + self.recv_per_byte * resp_bytes
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Returns `None` for (near-)singular systems.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // total_cmp keeps pivoting deterministic even if an observation
        // slipped a NaN into the normal equations (the singularity check
        // below still rejects the system).
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (cell, pivot) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= f * pivot;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SplitMix64;

    fn synth_obs(base: f64, send: f64, recv: f64, noise: f64, n: usize) -> Vec<Observation> {
        let mut rng = SplitMix64::new(99);
        (0..n)
            .map(|_| {
                let req = rng.next_f64() * 10_000.0;
                let resp = rng.next_f64() * 50_000.0;
                let eps = (rng.next_f64() - 0.5) * 2.0 * noise;
                Observation {
                    req_bytes: req,
                    resp_bytes: resp,
                    cost: base + send * req + recv * resp + eps,
                }
            })
            .collect()
    }

    #[test]
    fn exact_fit_recovers_parameters() {
        let obs = synth_obs(0.5, 1e-4, 2e-4, 0.0, 20);
        let cal = CostCalibration::fit(&obs).unwrap();
        assert!((cal.base - 0.5).abs() < 1e-9);
        assert!((cal.send_per_byte - 1e-4).abs() < 1e-12);
        assert!((cal.recv_per_byte - 2e-4).abs() < 1e-12);
        assert!(cal.rms_error < 1e-9);
    }

    #[test]
    fn noisy_fit_is_close() {
        let obs = synth_obs(1.0, 5e-5, 1e-4, 0.05, 200);
        let cal = CostCalibration::fit(&obs).unwrap();
        assert!((cal.base - 1.0).abs() < 0.05, "base {}", cal.base);
        assert!((cal.send_per_byte - 5e-5).abs() < 2e-5);
        assert!((cal.recv_per_byte - 1e-4).abs() < 2e-5);
        assert!(cal.rms_error < 0.1);
    }

    #[test]
    fn too_few_or_degenerate_observations() {
        let one = Observation {
            req_bytes: 1.0,
            resp_bytes: 1.0,
            cost: 1.0,
        };
        assert!(CostCalibration::fit(&[one, one]).is_none());
        // All-identical rows → singular normal equations.
        assert!(CostCalibration::fit(&[one; 10]).is_none());
    }

    #[test]
    fn coefficients_never_negative() {
        // Data generated with a negative (nonsensical) send coefficient
        // still yields a valid non-negative model.
        let obs = synth_obs(2.0, -1e-4, 1e-4, 0.0, 50);
        let cal = CostCalibration::fit(&obs).unwrap();
        assert!(cal.send_per_byte >= 0.0);
        assert!(cal.base >= 0.0);
    }

    #[test]
    fn predict_is_affine() {
        let cal = CostCalibration {
            base: 1.0,
            send_per_byte: 0.5,
            recv_per_byte: 0.25,
            rms_error: 0.0,
        };
        assert_eq!(cal.predict(2.0, 4.0), 3.0);
    }
}
