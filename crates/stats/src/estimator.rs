//! Predicate selectivity estimation over [`TableStats`].

use crate::histogram::{ColumnStats, TableStats};
use fusion_types::{CmpOp, Predicate, Value};

/// Floor applied to every leaf estimate so downstream cardinality products
/// never collapse to exactly zero (a source can always surprise us).
pub const MIN_SELECTIVITY: f64 = 1e-6;

/// Estimates the fraction of a relation's tuples satisfying `pred`, from
/// statistics alone.
///
/// Strategy per leaf:
/// * numeric comparisons and `BETWEEN` — histogram interpolation;
/// * equality — MCV frequency when tracked, else `1 / distinct`;
/// * `IN` — sum of member estimates, capped at 1;
/// * `LIKE`, residual cases — evaluation over the retained value sample;
/// * `IS NULL` — exact null fraction.
///
/// Connectives use the independence assumptions the paper adopts:
/// `AND` multiplies, `OR` uses inclusion–exclusion, `NOT` complements.
pub fn estimate_selectivity(pred: &Predicate, stats: &TableStats) -> f64 {
    let s = match pred {
        Predicate::Cmp { attr, op, value } => match stats.column(attr) {
            Some(col) => cmp_selectivity(col, *op, value),
            None => 0.5,
        },
        Predicate::Between { attr, lo, hi } => match stats.column(attr) {
            Some(col) => between_selectivity(col, lo, hi),
            None => 0.25,
        },
        Predicate::InList { attr, values } => match stats.column(attr) {
            Some(col) => values
                .iter()
                .map(|v| cmp_selectivity(col, CmpOp::Eq, v))
                .sum::<f64>()
                .min(1.0),
            None => 0.5,
        },
        Predicate::Like { attr, pattern } => match stats.column(attr) {
            Some(col) => sample_selectivity(col, |v| match v {
                Value::Str(s) => fusion_types::condition::like_match(pattern, s),
                _ => false,
            }),
            None => 0.25,
        },
        Predicate::IsNull { attr } => match stats.column(attr) {
            Some(col) => col.nulls as f64 / col.total().max(1) as f64,
            None => 0.05,
        },
        Predicate::And(ps) => ps
            .iter()
            .map(|p| estimate_selectivity(p, stats))
            .product::<f64>(),
        Predicate::Or(ps) => {
            let mut none = 1.0;
            for p in ps {
                none *= 1.0 - estimate_selectivity(p, stats);
            }
            1.0 - none
        }
        Predicate::Not(p) => 1.0 - estimate_selectivity(p, stats),
        Predicate::Const(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
    };
    if matches!(pred, Predicate::Const(false)) {
        return 0.0;
    }
    s.clamp(MIN_SELECTIVITY, 1.0)
}

fn cmp_selectivity(col: &ColumnStats, op: CmpOp, value: &Value) -> f64 {
    match op {
        CmpOp::Eq => eq_selectivity(col, value),
        CmpOp::Ne => 1.0 - eq_selectivity(col, value),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            if let (Some(hist), Some(x)) = (&col.histogram, value.as_f64()) {
                let below = hist.fraction_below(x);
                let at = eq_selectivity(col, value);
                let frac = match op {
                    CmpOp::Lt => below,
                    CmpOp::Le => below + at,
                    CmpOp::Gt => 1.0 - below - at,
                    CmpOp::Ge => 1.0 - below,
                    _ => unreachable!(),
                };
                frac.clamp(0.0, 1.0)
            } else {
                sample_selectivity(col, |v| op.holds(v.cmp(value)))
            }
        }
    }
}

fn eq_selectivity(col: &ColumnStats, value: &Value) -> f64 {
    if let Some(f) = col.mcv_frequency(value) {
        return f;
    }
    if col.distinct == 0 {
        return 0.0;
    }
    // Mass left for non-MCV values, spread uniformly across them.
    let rest = (1.0 - col.mcv_mass()).max(0.0);
    let rest_distinct = col.distinct.saturating_sub(col.mcv.len());
    if rest_distinct == 0 {
        // Every distinct value is an MCV and `value` is not among them.
        0.0
    } else {
        rest / rest_distinct as f64
    }
}

fn between_selectivity(col: &ColumnStats, lo: &Value, hi: &Value) -> f64 {
    if let (Some(hist), Some(l), Some(h)) = (&col.histogram, lo.as_f64(), hi.as_f64()) {
        hist.range_selectivity(l, h)
    } else {
        sample_selectivity(col, |v| v >= lo && v <= hi)
    }
}

fn sample_selectivity(col: &ColumnStats, pred: impl Fn(&Value) -> bool) -> f64 {
    if col.sample.is_empty() {
        return 0.0;
    }
    // Add-one smoothing keeps rare predicates from estimating exactly 0/1.
    let hits = col.sample.iter().filter(|v| pred(v)).count();
    (hits as f64 + 1.0) / (col.sample.len() as f64 + 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::TableStats;
    use fusion_types::schema::dmv_schema;
    use fusion_types::{tuple, Relation};

    /// 1000 rows: V is 'dui' 10% / 'sp' 90%; D uniform in 1980..=1999.
    fn stats() -> TableStats {
        let rows = (0..1000)
            .map(|i| {
                tuple![
                    format!("L{i:04}"),
                    if i % 10 == 0 { "dui" } else { "sp" },
                    1980 + (i % 20)
                ]
            })
            .collect();
        TableStats::build(&Relation::from_rows(dmv_schema(), rows), 3)
    }

    #[test]
    fn eq_uses_mcv() {
        let st = stats();
        let s = estimate_selectivity(&Predicate::eq("V", "dui"), &st);
        assert!((s - 0.1).abs() < 0.01, "got {s}");
        let s = estimate_selectivity(&Predicate::eq("V", "sp"), &st);
        assert!((s - 0.9).abs() < 0.01, "got {s}");
    }

    #[test]
    fn eq_unseen_value_is_tiny() {
        let st = stats();
        let s = estimate_selectivity(&Predicate::eq("V", "hit-and-run"), &st);
        assert!(s <= 0.01, "got {s}");
    }

    #[test]
    fn numeric_range_uses_histogram() {
        let st = stats();
        let s = estimate_selectivity(&Predicate::cmp("D", CmpOp::Lt, 1990i64), &st);
        assert!((s - 0.5).abs() < 0.06, "got {s}");
        let s = estimate_selectivity(&Predicate::cmp("D", CmpOp::Ge, 1996i64), &st);
        assert!((s - 0.2).abs() < 0.06, "got {s}");
    }

    #[test]
    fn between_estimation() {
        let st = stats();
        let p = Predicate::Between {
            attr: "D".into(),
            lo: Value::Int(1985),
            hi: Value::Int(1989),
        };
        let s = estimate_selectivity(&p, &st);
        assert!((s - 0.25).abs() < 0.08, "got {s}");
    }

    #[test]
    fn in_list_sums_members() {
        let st = stats();
        let p = Predicate::InList {
            attr: "V".into(),
            values: vec![Value::str("dui"), Value::str("sp")],
        };
        let s = estimate_selectivity(&p, &st);
        assert!(s > 0.95, "got {s}");
    }

    #[test]
    fn like_uses_sample() {
        let st = stats();
        let p = Predicate::Like {
            attr: "V".into(),
            pattern: "d%".into(),
        };
        let s = estimate_selectivity(&p, &st);
        assert!((s - 0.1).abs() < 0.08, "got {s}");
    }

    #[test]
    fn connectives() {
        let st = stats();
        let a = Predicate::eq("V", "dui");
        let b = Predicate::cmp("D", CmpOp::Lt, 1990i64);
        let and = estimate_selectivity(&Predicate::And(vec![a.clone(), b.clone()]), &st);
        assert!((and - 0.05).abs() < 0.02, "got {and}");
        let or = estimate_selectivity(&Predicate::Or(vec![a.clone(), b.clone()]), &st);
        assert!((or - 0.55).abs() < 0.05, "got {or}");
        let not = estimate_selectivity(&Predicate::Not(Box::new(a)), &st);
        assert!((not - 0.9).abs() < 0.02, "got {not}");
    }

    #[test]
    fn constants_and_bounds() {
        let st = stats();
        assert_eq!(estimate_selectivity(&Predicate::Const(false), &st), 0.0);
        assert_eq!(estimate_selectivity(&Predicate::Const(true), &st), 1.0);
        let s = estimate_selectivity(&Predicate::eq("unknown_attr", 1i64), &st);
        assert!((MIN_SELECTIVITY..=1.0).contains(&s));
    }

    #[test]
    fn is_null_fraction() {
        let rel = Relation::from_rows(
            dmv_schema(),
            vec![
                tuple!["a", "dui", 1990i64],
                Tuple::new(vec![Value::str("b"), Value::Null, Value::Int(1991)]),
            ],
        );
        let st = TableStats::build(&rel, 1);
        let s = estimate_selectivity(&Predicate::IsNull { attr: "V".into() }, &st);
        assert!((s - 0.5).abs() < 1e-9);
    }

    use fusion_types::Tuple;
}
