//! Deterministic sampling utilities.

/// SplitMix64: a tiny, high-quality, deterministic PRNG.
///
/// Statistics construction must be reproducible and must not pull the
/// workspace's workload-generation RNG into scope, so this crate carries
/// its own generator (Steele et al., "Fast splittable pseudorandom number
/// generators", OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the bounds used here and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Uniform `i64` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn next_i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as usize) as i64
    }

    /// Uniform float in the half-open range `[lo, hi)`.
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniformly chooses one element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len())]
    }
}

/// Reservoir-samples up to `k` elements from `iter`, deterministically
/// under `seed` (Algorithm R).
pub fn reservoir_sample<T: Clone, I: IntoIterator<Item = T>>(
    iter: I,
    k: usize,
    seed: u64,
) -> Vec<T> {
    let mut rng = SplitMix64::new(seed);
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, x) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(x);
        } else {
            let j = rng.next_below(i + 1);
            if j < k {
                reservoir[j] = x;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = (0..5).map(|_| SplitMix64::new(42).next_u64()).collect();
        assert!(a.iter().all(|&x| x == a[0]));
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn reservoir_full_population_when_small() {
        let mut s = reservoir_sample(0..5, 10, 9);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reservoir_size_and_determinism() {
        let a = reservoir_sample(0..10_000, 100, 11);
        let b = reservoir_sample(0..10_000, 100, 11);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        let c = reservoir_sample(0..10_000, 100, 12);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Mean of a uniform sample from 0..10_000 should be near 5_000.
        let s = reservoir_sample(0..10_000u64, 500, 5);
        let mean: f64 = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
        assert!((mean - 5_000.0).abs() < 600.0, "mean {mean} too far off");
    }

    #[test]
    fn zero_k_is_empty() {
        assert!(reservoir_sample(0..100, 0, 1).is_empty());
    }
}
