//! Per-`(condition, source)` cardinality feedback from executed queries.
//!
//! The static estimates a cost model starts from (`est_sq_items`) come
//! from histograms or guesses; every executed query then *observes* the
//! true quantities. A selection `sq(c_i, R_j)` reveals `|sq(c_i, R_j)|`
//! exactly; a semijoin `sjq(c_i, R_j, X)` reveals the hit rate
//! `|out| / |X|` over the shipped binding set — an unbiased sample of the
//! per-source selectivity. [`CardinalityFeedback`] accumulates both kinds
//! keyed by `(condition, source)` — the same key the answer cache uses —
//! so the runtime re-optimizer can replace stale estimates with observed
//! ones before re-searching the remaining plan space.
//!
//! Exact counts always dominate selectivity samples: once a selection has
//! been observed for a cell, later semijoin ratios refine nothing the
//! count did not already pin down.

use fusion_types::{CondId, Condition, SourceId};
use std::collections::HashMap;

/// One calibrated belief about `|sq(c_i, R_j)|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CardObservation {
    /// A full selection ran; the answer cardinality was counted.
    Exact(f64),
    /// A semijoin probe ran; `matched / shipped` over the binding set.
    Selectivity(f64),
}

impl CardObservation {
    /// The implied `|sq(c, R)|` estimate in a `domain`-item universe.
    pub fn est_items(&self, domain: f64) -> f64 {
        match *self {
            CardObservation::Exact(v) => v,
            CardObservation::Selectivity(s) => (s * domain).clamp(0.0, domain.max(0.0)),
        }
    }
}

/// Observed cardinality calibration, keyed by `(condition, source)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CardinalityFeedback {
    m: usize,
    n: usize,
    cells: Vec<Option<CardObservation>>,
}

impl CardinalityFeedback {
    /// An empty feedback table for `m` conditions over `n` sources.
    pub fn new(m: usize, n: usize) -> CardinalityFeedback {
        CardinalityFeedback {
            m,
            n,
            cells: vec![None; m * n],
        }
    }

    /// Number of conditions.
    pub fn n_conditions(&self) -> usize {
        self.m
    }

    /// Number of sources.
    pub fn n_sources(&self) -> usize {
        self.n
    }

    fn idx(&self, cond: CondId, source: SourceId) -> usize {
        assert!(
            cond.0 < self.m && source.0 < self.n,
            "feedback key out of range"
        );
        cond.0 * self.n + source.0
    }

    /// Records an exactly counted selection result. Overrides any prior
    /// observation for the cell (exact beats sampled, newer exact beats
    /// older exact — sources drift).
    pub fn record_exact(&mut self, cond: CondId, source: SourceId, items: f64) {
        let i = self.idx(cond, source);
        self.cells[i] = Some(CardObservation::Exact(items.max(0.0)));
    }

    /// Records a semijoin probe: `out_items` survivors of an
    /// `input_items`-item binding set. Ignored when the probe shipped
    /// nothing (no information) or when an exact count is already known.
    pub fn record_semijoin(
        &mut self,
        cond: CondId,
        source: SourceId,
        out_items: f64,
        input_items: f64,
    ) {
        if input_items <= 0.0 {
            return;
        }
        let i = self.idx(cond, source);
        if matches!(self.cells[i], Some(CardObservation::Exact(_))) {
            return;
        }
        let sel = (out_items / input_items).clamp(0.0, 1.0);
        self.cells[i] = Some(CardObservation::Selectivity(sel));
    }

    /// The current belief for a cell, if anything has been observed.
    pub fn observed(&self, cond: CondId, source: SourceId) -> Option<CardObservation> {
        self.cells[self.idx(cond, source)]
    }

    /// The implied `|sq(c, R)|` for a cell, or `None` if unobserved.
    pub fn est_items(&self, cond: CondId, source: SourceId, domain: f64) -> Option<f64> {
        self.observed(cond, source).map(|o| o.est_items(domain))
    }

    /// Number of cells with at least one observation.
    pub fn observed_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.observed_cells() == 0
    }

    /// Folds another table into this one, cell by cell: an exact
    /// observation beats a selectivity sample; between observations of
    /// the same kind, `other`'s (the newer run's) wins.
    pub fn merge(&mut self, other: &CardinalityFeedback) {
        assert!(
            self.m == other.m && self.n == other.n,
            "feedback shape mismatch: {}×{} vs {}×{}",
            self.m,
            self.n,
            other.m,
            other.n
        );
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            match (&mine, theirs) {
                (_, None) => {}
                (Some(CardObservation::Exact(_)), Some(CardObservation::Selectivity(_))) => {}
                _ => *mine = *theirs,
            }
        }
    }
}

/// Cross-query cardinality feedback, keyed by the *semantic*
/// `(condition, source)` pair rather than a query's positional
/// [`CondId`]. A multi-tenant mediator serves many query shapes; what
/// one tenant's query observed about `sq(V='dui', R_2)` calibrates any
/// later query carrying that same condition, whatever position it holds
/// there. [`ConditionFeedback::project`] slices the store down to one
/// query's positional [`CardinalityFeedback`] at admission time.
#[derive(Debug, Clone, Default)]
pub struct ConditionFeedback {
    cells: HashMap<(Condition, SourceId), CardObservation>,
}

impl ConditionFeedback {
    /// An empty cross-query feedback store.
    pub fn new() -> ConditionFeedback {
        ConditionFeedback::default()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of observed `(condition, source)` cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Records one observation under the same dominance rule as
    /// [`CardinalityFeedback`]: an exact count always lands (newer
    /// exact beats older — sources drift), a selectivity sample never
    /// displaces an exact count.
    pub fn record(&mut self, cond: &Condition, source: SourceId, obs: CardObservation) {
        let key = (cond.clone(), source);
        match (self.cells.get(&key), obs) {
            (Some(CardObservation::Exact(_)), CardObservation::Selectivity(_)) => {}
            _ => {
                self.cells.insert(key, obs);
            }
        }
    }

    /// The current belief for a `(condition, source)` cell.
    pub fn observed(&self, cond: &Condition, source: SourceId) -> Option<CardObservation> {
        self.cells.get(&(cond.clone(), source)).copied()
    }

    /// Projects the store onto one query's positional table: cell
    /// `(i, j)` holds the observation recorded for
    /// `(conditions[i], R_j)`, if any.
    pub fn project(&self, conditions: &[Condition], n_sources: usize) -> CardinalityFeedback {
        let mut out = CardinalityFeedback::new(conditions.len(), n_sources);
        for (i, cond) in conditions.iter().enumerate() {
            for j in 0..n_sources {
                if let Some(obs) = self.cells.get(&(cond.clone(), SourceId(j))) {
                    match obs {
                        CardObservation::Exact(v) => out.record_exact(CondId(i), SourceId(j), *v),
                        CardObservation::Selectivity(s) => {
                            // Reconstruct a 1-item probe with the observed
                            // rate; the positional table stores the ratio.
                            out.record_semijoin(CondId(i), SourceId(j), *s, 1.0);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_beats_selectivity() {
        let mut fb = CardinalityFeedback::new(2, 2);
        assert!(fb.is_empty());
        fb.record_semijoin(CondId(0), SourceId(1), 3.0, 10.0);
        assert_eq!(
            fb.observed(CondId(0), SourceId(1)),
            Some(CardObservation::Selectivity(0.3))
        );
        fb.record_exact(CondId(0), SourceId(1), 7.0);
        // A later probe cannot displace the exact count.
        fb.record_semijoin(CondId(0), SourceId(1), 1.0, 10.0);
        assert_eq!(
            fb.observed(CondId(0), SourceId(1)),
            Some(CardObservation::Exact(7.0))
        );
        assert_eq!(fb.observed_cells(), 1);
    }

    #[test]
    fn empty_probe_carries_no_information() {
        let mut fb = CardinalityFeedback::new(1, 1);
        fb.record_semijoin(CondId(0), SourceId(0), 0.0, 0.0);
        assert!(fb.is_empty());
    }

    #[test]
    fn est_items_scales_selectivity_by_domain() {
        let mut fb = CardinalityFeedback::new(1, 2);
        fb.record_exact(CondId(0), SourceId(0), 4.0);
        fb.record_semijoin(CondId(0), SourceId(1), 5.0, 20.0);
        assert_eq!(fb.est_items(CondId(0), SourceId(0), 100.0), Some(4.0));
        assert_eq!(fb.est_items(CondId(0), SourceId(1), 100.0), Some(25.0));
        assert_eq!(fb.est_items(CondId(0), SourceId(1), 4.0), Some(1.0));
    }

    #[test]
    fn merge_prefers_exact_then_newest() {
        let mut a = CardinalityFeedback::new(1, 3);
        a.record_exact(CondId(0), SourceId(0), 5.0);
        a.record_semijoin(CondId(0), SourceId(1), 1.0, 2.0);
        let mut b = CardinalityFeedback::new(1, 3);
        b.record_semijoin(CondId(0), SourceId(0), 1.0, 10.0); // loses to a's exact
        b.record_exact(CondId(0), SourceId(1), 9.0); // beats a's sample
        b.record_semijoin(CondId(0), SourceId(2), 3.0, 4.0); // fills a hole
        a.merge(&b);
        assert_eq!(
            a.observed(CondId(0), SourceId(0)),
            Some(CardObservation::Exact(5.0))
        );
        assert_eq!(
            a.observed(CondId(0), SourceId(1)),
            Some(CardObservation::Exact(9.0))
        );
        assert_eq!(
            a.observed(CondId(0), SourceId(2)),
            Some(CardObservation::Selectivity(0.75))
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = CardinalityFeedback::new(1, 2);
        a.merge(&CardinalityFeedback::new(2, 1));
    }

    #[test]
    fn condition_feedback_projects_by_semantic_key() {
        use fusion_types::Predicate;
        let dui: Condition = Predicate::eq("V", "dui").into();
        let sp: Condition = Predicate::eq("V", "sp").into();
        let mut fb = ConditionFeedback::new();
        assert!(fb.is_empty());
        fb.record(&dui, SourceId(0), CardObservation::Exact(2.0));
        fb.record(&sp, SourceId(1), CardObservation::Selectivity(0.25));
        assert_eq!(fb.len(), 2);
        // A query carrying the same conditions in the *opposite* order
        // still gets the right cells.
        let table = fb.project(&[sp.clone(), dui.clone()], 2);
        assert_eq!(
            table.observed(CondId(1), SourceId(0)),
            Some(CardObservation::Exact(2.0))
        );
        assert_eq!(
            table.observed(CondId(0), SourceId(1)),
            Some(CardObservation::Selectivity(0.25))
        );
        assert_eq!(table.observed(CondId(0), SourceId(0)), None);
        // A query with an unseen condition projects to an empty row.
        let other: Condition = Predicate::eq("V", "none").into();
        assert!(fb.project(&[other], 2).is_empty());
    }

    #[test]
    fn condition_feedback_exact_dominance() {
        use fusion_types::Predicate;
        let dui: Condition = Predicate::eq("V", "dui").into();
        let mut fb = ConditionFeedback::new();
        fb.record(&dui, SourceId(0), CardObservation::Exact(5.0));
        fb.record(&dui, SourceId(0), CardObservation::Selectivity(0.9));
        assert_eq!(
            fb.observed(&dui, SourceId(0)),
            Some(CardObservation::Exact(5.0))
        );
        fb.record(&dui, SourceId(0), CardObservation::Exact(3.0));
        assert_eq!(
            fb.observed(&dui, SourceId(0)),
            Some(CardObservation::Exact(3.0))
        );
    }
}
