//! Cardinality arithmetic for semijoin-set estimation.
//!
//! The SJ and SJA algorithms need the expected size of
//! `X_i = X_{i-1} ∩ ⋃_j σ_{c_i}(R_j)` to price the next round's semijoin
//! queries. These helpers implement the standard urn-model estimates under
//! the independence assumption the paper adopts for optimization (§1,
//! step 3).

/// Expected size of the union of result sets drawn independently from a
/// shared item domain of size `domain`.
///
/// Each contribution of size `e_j` covers a uniform random subset of the
/// domain, so an item survives *outside* the union with probability
/// `Π_j (1 − e_j/domain)`.
pub fn union_estimate(contributions: &[f64], domain: f64) -> f64 {
    if domain <= 0.0 {
        return 0.0;
    }
    let mut miss = 1.0f64;
    for &e in contributions {
        let p = (e / domain).clamp(0.0, 1.0);
        miss *= 1.0 - p;
    }
    domain * (1.0 - miss)
}

/// Expected size of the intersection of a set of size `lhs` with an
/// independent uniform subset covering `frac` of the domain.
pub fn intersect_estimate(lhs: f64, frac: f64) -> f64 {
    lhs * frac.clamp(0.0, 1.0)
}

/// Chains per-condition global selectivities: the expected `|X_k|` after
/// conditions with global selectivities `gsels[..k]` have been applied to
/// a domain of `domain` items.
///
/// `gsel_i` is the probability that a domain item satisfies condition `i`
/// at *some* source — i.e. `union_estimate(...) / domain` for that
/// condition.
pub fn chain_estimate(domain: f64, gsels: &[f64]) -> f64 {
    gsels
        .iter()
        .fold(domain.max(0.0), |acc, &g| acc * g.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_of_nothing_is_zero() {
        assert_eq!(union_estimate(&[], 100.0), 0.0);
        assert_eq!(union_estimate(&[0.0, 0.0], 100.0), 0.0);
    }

    #[test]
    fn union_single_contribution_is_itself() {
        let u = union_estimate(&[30.0], 100.0);
        assert!((u - 30.0).abs() < 1e-9);
    }

    #[test]
    fn union_accounts_for_overlap() {
        // Two 50-item subsets of a 100-item domain: expect 75, not 100.
        let u = union_estimate(&[50.0, 50.0], 100.0);
        assert!((u - 75.0).abs() < 1e-9);
    }

    #[test]
    fn union_saturates_at_domain() {
        let u = union_estimate(&[90.0, 90.0, 90.0], 100.0);
        assert!(u <= 100.0);
        assert!(u > 99.0);
        let u = union_estimate(&[150.0], 100.0);
        assert!((u - 100.0).abs() < 1e-9, "over-full contribution clamps");
    }

    #[test]
    fn union_monotone_in_contributions() {
        let a = union_estimate(&[10.0, 10.0], 100.0);
        let b = union_estimate(&[10.0, 20.0], 100.0);
        assert!(b > a);
    }

    #[test]
    fn degenerate_domain() {
        assert_eq!(union_estimate(&[5.0], 0.0), 0.0);
        assert_eq!(chain_estimate(-3.0, &[0.5]), 0.0);
    }

    #[test]
    fn intersect_and_chain() {
        assert!((intersect_estimate(40.0, 0.25) - 10.0).abs() < 1e-9);
        assert!((chain_estimate(1000.0, &[0.1, 0.5]) - 50.0).abs() < 1e-9);
        assert_eq!(chain_estimate(1000.0, &[]), 1000.0);
        // Out-of-range selectivities clamp.
        assert!((chain_estimate(10.0, &[2.0]) - 10.0).abs() < 1e-9);
    }
}
