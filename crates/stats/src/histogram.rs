//! Per-attribute and per-table statistics.

use crate::sample::reservoir_sample;
use fusion_types::{Relation, Value};
use std::collections::HashMap;

/// Number of equi-depth buckets built for numeric attributes.
pub const DEFAULT_BUCKETS: usize = 32;

/// Number of most-common values tracked per attribute.
pub const DEFAULT_MCVS: usize = 16;

/// Default size of the retained value sample per attribute.
pub const DEFAULT_SAMPLE: usize = 256;

/// An equi-depth histogram over the numeric view of an attribute.
///
/// `bounds` has `buckets + 1` entries; bucket `b` covers
/// `[bounds[b], bounds[b+1])` (the last bucket is closed on the right) and
/// holds `depth` values each (the final bucket may hold fewer).
#[derive(Debug, Clone, PartialEq)]
pub struct NumericHistogram {
    bounds: Vec<f64>,
    depth: f64,
    total: f64,
    last_count: f64,
}

impl NumericHistogram {
    /// Builds an equi-depth histogram from (unsorted) numeric values.
    /// Returns `None` when there are no values.
    pub fn build(mut values: Vec<f64>, buckets: usize) -> Option<NumericHistogram> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        // total_cmp: a stray NaN (e.g. from a corrupt numeric column)
        // sorts to the top instead of panicking the histogram build.
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let buckets = buckets.min(n);
        let depth = n as f64 / buckets as f64;
        let mut bounds = Vec::with_capacity(buckets + 1);
        for b in 0..buckets {
            let idx = ((b as f64 * depth) as usize).min(n - 1);
            bounds.push(values[idx]);
        }
        bounds.push(values[n - 1]);
        let last_start = (((buckets - 1) as f64) * depth) as usize;
        Some(NumericHistogram {
            bounds,
            depth,
            total: n as f64,
            last_count: (n - last_start) as f64,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Smallest observed value.
    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    /// Largest observed value.
    pub fn max(&self) -> f64 {
        *self.bounds.last().expect("non-empty bounds")
    }

    /// Estimated fraction of values `< x` (linear interpolation within the
    /// containing bucket).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if x <= self.min() {
            return 0.0;
        }
        if x > self.max() {
            return 1.0;
        }
        let mut acc = 0.0;
        for b in 0..self.buckets() {
            let (lo, hi) = (self.bounds[b], self.bounds[b + 1]);
            let count = if b + 1 == self.buckets() {
                self.last_count
            } else {
                self.depth
            };
            if x > hi {
                acc += count;
            } else {
                let width = hi - lo;
                let inner = if width <= 0.0 {
                    // Degenerate bucket of one repeated value: x in (lo, hi]
                    // means all of it is below only when x > hi, handled
                    // above; here take half as the conventional estimate.
                    0.5
                } else {
                    ((x - lo) / width).clamp(0.0, 1.0)
                };
                acc += count * inner;
                break;
            }
        }
        let frac = (acc / self.total).clamp(0.0, 1.0);
        // `x == max` falls through to full-bucket interpolation, but the
        // value(s) sitting exactly at max are NOT strictly below it — at
        // least one such value exists, so cap the strict-below fraction.
        // Without the cap, `attr < max` estimates 1.0 and `attr >= max`
        // estimates 0.0 even though the max row matches.
        if x >= self.max() {
            frac.min((self.total - 1.0).max(0.0) / self.total)
        } else {
            frac
        }
    }

    /// Estimated selectivity of `lo <= v <= hi`.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        // Closed upper bound: nudge past hi by treating it as hi⁺.
        let below_hi = if hi >= self.max() {
            1.0
        } else {
            self.fraction_below(hi) + 1.0 / self.total
        };
        (below_hi.min(1.0) - self.fraction_below(lo)).clamp(0.0, 1.0)
    }
}

/// Statistics for one attribute of one source relation.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Total non-null values observed.
    pub non_null: usize,
    /// Null count.
    pub nulls: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Most common values with their counts, descending by count.
    pub mcv: Vec<(Value, usize)>,
    /// Equi-depth histogram over numeric values, when the attribute is
    /// numeric.
    pub histogram: Option<NumericHistogram>,
    /// Deterministic value sample for general-predicate estimation.
    pub sample: Vec<Value>,
}

impl ColumnStats {
    /// Builds statistics from a column of values.
    pub fn build(values: &[&Value], seed: u64) -> ColumnStats {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        let mut nulls = 0usize;
        let mut numerics: Vec<f64> = Vec::new();
        for v in values {
            if matches!(v, Value::Null) {
                nulls += 1;
                continue;
            }
            *counts.entry(*v).or_insert(0) += 1;
            if let Some(f) = v.as_f64() {
                if !f.is_nan() {
                    numerics.push(f);
                }
            }
        }
        let non_null = values.len() - nulls;
        let distinct = counts.len();
        let mut mcv: Vec<(Value, usize)> = counts.iter().map(|(v, c)| ((*v).clone(), *c)).collect();
        mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        mcv.truncate(DEFAULT_MCVS);
        let histogram = if numerics.len() == non_null && non_null > 0 {
            NumericHistogram::build(numerics, DEFAULT_BUCKETS)
        } else {
            None
        };
        let sample = reservoir_sample(
            values
                .iter()
                .filter(|v| !matches!(v, Value::Null))
                .map(|v| (*v).clone()),
            DEFAULT_SAMPLE,
            seed,
        );
        ColumnStats {
            non_null,
            nulls,
            distinct,
            mcv,
            histogram,
            sample,
        }
    }

    /// Total values observed, null or not.
    pub fn total(&self) -> usize {
        self.non_null + self.nulls
    }

    /// Frequency of `v` among all values, if `v` is a tracked MCV.
    pub fn mcv_frequency(&self, v: &Value) -> Option<f64> {
        let total = self.total().max(1) as f64;
        self.mcv
            .iter()
            .find(|(w, _)| w == v)
            .map(|(_, c)| *c as f64 / total)
    }

    /// Combined frequency mass of all tracked MCVs.
    pub fn mcv_mass(&self) -> f64 {
        let total = self.total().max(1) as f64;
        self.mcv.iter().map(|(_, c)| *c as f64).sum::<f64>() / total
    }
}

/// Statistics for one source relation, keyed by attribute name.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count of the relation.
    pub rows: usize,
    /// Distinct merge-attribute items in the relation.
    pub distinct_items: usize,
    /// Average wire size of one merge item, in bytes.
    pub avg_item_bytes: f64,
    /// Average wire size of one full tuple, in bytes.
    pub avg_tuple_bytes: f64,
    columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Scans a relation and builds complete statistics (deterministic
    /// under `seed`).
    pub fn build(rel: &Relation, seed: u64) -> TableStats {
        let schema = rel.schema();
        let mut columns = HashMap::new();
        for (idx, attr) in schema.attributes().iter().enumerate() {
            let col: Vec<&Value> = rel.rows().iter().map(|r| r.get(idx)).collect();
            columns.insert(
                attr.name.clone(),
                ColumnStats::build(&col, seed.wrapping_add(idx as u64)),
            );
        }
        let items = rel.distinct_items();
        let avg_item_bytes = if items.is_empty() {
            8.0
        } else {
            items.wire_size() as f64 / items.len() as f64
        };
        let avg_tuple_bytes = if rel.is_empty() {
            schema.arity() as f64 * 8.0
        } else {
            rel.wire_size() as f64 / rel.len() as f64
        };
        TableStats {
            rows: rel.len(),
            distinct_items: items.len(),
            avg_item_bytes,
            avg_tuple_bytes,
            columns,
        }
    }

    /// Statistics for one attribute, if known.
    pub fn column(&self, attr: &str) -> Option<&ColumnStats> {
        self.columns.get(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::schema::dmv_schema;
    use fusion_types::tuple;

    fn numeric_hist(values: Vec<f64>) -> NumericHistogram {
        NumericHistogram::build(values, 8).expect("non-empty")
    }

    #[test]
    fn histogram_uniform_fractions() {
        let h = numeric_hist((0..1000).map(f64::from).collect());
        assert!((h.fraction_below(500.0) - 0.5).abs() < 0.02);
        assert!((h.fraction_below(100.0) - 0.1).abs() < 0.02);
        assert_eq!(h.fraction_below(-1.0), 0.0);
        assert_eq!(h.fraction_below(2000.0), 1.0);
    }

    #[test]
    fn histogram_range_selectivity() {
        let h = numeric_hist((0..1000).map(f64::from).collect());
        let s = h.range_selectivity(250.0, 750.0);
        assert!((s - 0.5).abs() < 0.05, "got {s}");
        assert_eq!(h.range_selectivity(10.0, 5.0), 0.0);
        assert!((h.range_selectivity(h.min(), h.max()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_skewed_data() {
        // 90% of values are 0, rest uniform in [1, 100].
        let mut vals = vec![0.0; 900];
        vals.extend((1..=100).map(f64::from));
        let h = NumericHistogram::build(vals, 16).unwrap();
        assert!(h.fraction_below(0.5) > 0.8, "mass concentrated at 0");
    }

    #[test]
    fn histogram_single_value() {
        let h = NumericHistogram::build(vec![5.0; 10], 4).unwrap();
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.fraction_below(4.0), 0.0);
        assert_eq!(h.fraction_below(6.0), 1.0);
        assert!(h.range_selectivity(5.0, 5.0) > 0.0);
    }

    #[test]
    fn histogram_empty_is_none() {
        assert!(NumericHistogram::build(vec![], 8).is_none());
    }

    #[test]
    fn column_stats_counts() {
        let vals = [
            Value::str("a"),
            Value::str("a"),
            Value::str("b"),
            Value::Null,
        ];
        let refs: Vec<&Value> = vals.iter().collect();
        let cs = ColumnStats::build(&refs, 1);
        assert_eq!(cs.non_null, 3);
        assert_eq!(cs.nulls, 1);
        assert_eq!(cs.distinct, 2);
        assert_eq!(cs.mcv[0], (Value::str("a"), 2));
        assert!(cs.histogram.is_none(), "strings get no numeric histogram");
        assert!((cs.mcv_frequency(&Value::str("a")).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(cs.mcv_frequency(&Value::str("zzz")), None);
    }

    #[test]
    fn table_stats_from_dmv() {
        let rel = Relation::from_rows(
            dmv_schema(),
            vec![
                tuple!["J55", "dui", 1993i64],
                tuple!["T21", "sp", 1994i64],
                tuple!["T80", "dui", 1993i64],
            ],
        );
        let ts = TableStats::build(&rel, 7);
        assert_eq!(ts.rows, 3);
        assert_eq!(ts.distinct_items, 3);
        let v = ts.column("V").unwrap();
        assert_eq!(v.distinct, 2);
        assert!(ts.column("D").unwrap().histogram.is_some());
        assert!(ts.column("missing").is_none());
        assert!(ts.avg_item_bytes > 0.0);
        assert!(ts.avg_tuple_bytes > ts.avg_item_bytes);
    }

    #[test]
    fn stats_are_deterministic() {
        let rel = Relation::from_rows(
            dmv_schema(),
            (0..500)
                .map(|i| {
                    tuple![
                        format!("L{i}"),
                        if i % 3 == 0 { "dui" } else { "sp" },
                        1990 + (i % 10)
                    ]
                })
                .collect(),
        );
        let a = TableStats::build(&rel, 42);
        let b = TableStats::build(&rel, 42);
        assert_eq!(a.column("L").unwrap().sample, b.column("L").unwrap().sample);
    }
}
