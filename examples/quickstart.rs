//! Quickstart: parse a fusion query, optimize it four ways, execute the
//! best plan, and fetch the matching records.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fusion::core::postopt::sja_plus;
use fusion::core::{filter_plan, sj_optimal, sja_optimal};
use fusion::exec::{execute_plan, fetch_records};
use fusion::parse_fusion_query;
use fusion::types::schema::dmv_schema;
use fusion::workload::dmv;

fn main() {
    // The scenario of the paper's Figure 1: three DMV databases, each an
    // autonomous source behind a wrapper, reached over WAN links.
    let scenario = dmv::figure1_scenario();

    // The paper's running query, in its SQL dialect: drivers with both a
    // 'dui' and an 'sp' violation — possibly recorded in different states.
    let sql = "SELECT u1.L FROM U u1, U u2 \
               WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";
    let query = parse_fusion_query(sql, &dmv_schema()).expect("valid fusion query");
    println!("Query:\n{}\n", query.to_sql());

    // Optimize with each algorithm of the paper (§3, §4).
    let model = scenario.cost_model();
    let filter = filter_plan(&model);
    let sj = sj_optimal(&model);
    let sja = sja_optimal(&model);
    let plus = sja_plus(&model);
    println!("Estimated costs:");
    println!("  FILTER : {}", filter.cost);
    println!("  SJ     : {}", sj.cost);
    println!("  SJA    : {}", sja.cost);
    println!("  SJA+   : {}\n", plus.cost);

    println!("Best plan (SJA+), in the paper's notation:");
    println!("{}", plus.plan.listing_verbose(query.conditions()));

    // Phase one: execute the plan against the wrappers.
    let mut network = scenario.network();
    let outcome = execute_plan(&plus.plan, &query, &scenario.sources, &mut network)
        .expect("execution succeeds");
    println!("Answer: {}", outcome.answer);
    println!(
        "Executed cost: {} over {} round trips\n",
        outcome.total_cost(),
        outcome.ledger.round_trips()
    );

    // Phase two (§1): fetch the full records of the matching drivers.
    let fetched =
        fetch_records(&outcome.answer, &scenario.sources, &mut network).expect("fetch succeeds");
    println!("Phase-two records (cost {}):", fetched.cost);
    for record in &fetched.records {
        println!("  {record}");
    }
}
