//! Adaptivity under heterogeneous sources — the scenario that motivates
//! semijoin-*adaptive* plans (§2.5): when some sources support semijoins
//! natively and others only emulate them expensively, a per-source choice
//! beats any uniform strategy.
//!
//! ```sh
//! cargo run --example heterogeneous_sources
//! ```

use fusion::core::plan::SourceChoice;
use fusion::core::{filter_plan, sj_optimal, sja_optimal};
use fusion::exec::execute_plan;
use fusion::net::LinkProfile;
use fusion::source::ProcessingProfile;
use fusion::workload::synth::{synth_scenario, SynthSpec};
use fusion::workload::CapabilityMix;

fn main() {
    // 8 sources; half lack native semijoins and accept only one passed
    // binding per probe — the §2.3 emulation worst case.
    let spec = SynthSpec {
        n_sources: 8,
        domain_size: 20_000,
        rows_per_source: 4_000,
        seed: 99,
        capability_mix: CapabilityMix::FractionEmulated {
            frac: 0.5,
            batch: 1,
        },
        link: Some(LinkProfile::Wan),
        processing: ProcessingProfile::indexed_db(),
    };
    // A selective first condition, then two broader ones.
    let scenario = synth_scenario(&spec, &[0.02, 0.3, 0.5]);
    println!(
        "{}: {} sources ({} without native semijoin), m = {}\n",
        scenario.name,
        scenario.n(),
        4,
        scenario.m()
    );

    let model = scenario.cost_model();
    let filter = filter_plan(&model);
    let sj = sj_optimal(&model);
    let sja = sja_optimal(&model);

    println!("{:<8} {:>14} {:>12}", "plan", "est. cost", "executed");
    for (name, opt) in [("FILTER", &filter), ("SJ", &sj), ("SJA", &sja)] {
        let mut network = scenario.network();
        let outcome = execute_plan(&opt.plan, &scenario.query, &scenario.sources, &mut network)
            .expect("execution succeeds");
        println!(
            "{:<8} {:>14} {:>12}",
            name,
            opt.cost.to_string(),
            outcome.total_cost().to_string()
        );
    }

    // Show the adaptive choices: SJA semijoins exactly where it is cheap.
    println!("\nSJA's per-source choices (rows = rounds after the first):");
    for (r, row) in sja.spec.choices.iter().enumerate().skip(1) {
        let marks: Vec<&str> = row
            .iter()
            .map(|c| match c {
                SourceChoice::Selection => "sq ",
                SourceChoice::Semijoin => "sjq",
            })
            .collect();
        println!(
            "  round {} ({}): {}",
            r + 1,
            sja.spec.order[r],
            marks.join(" ")
        );
    }
    println!(
        "\nNote how SJA uses semijoins only at the natively capable sources \
         (the second half), while SJ must pick one strategy for all and \
         FILTER ships every condition's full result."
    );
}
