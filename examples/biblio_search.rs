//! Two-phase bibliographic search (§1): find the documents matching all
//! keywords across several digital libraries, then fetch their records.
//!
//! ```sh
//! cargo run --example biblio_search
//! ```

use fusion::core::postopt::sja_plus;
use fusion::core::sja_optimal;
use fusion::exec::{execute_plan, fetch_records, response_time};
use fusion::workload::biblio;

fn main() {
    // Six libraries of overlapping coverage, mixed link quality, every
    // third library without native semijoin support.
    let keywords = ["query", "optimization", "distributed"];
    let scenario = biblio::biblio_scenario(6, 2_000, 12_000, &keywords, 7);
    println!(
        "Searching {} libraries for documents with keywords {:?}\n",
        scenario.n(),
        keywords
    );
    println!("{}\n", scenario.query.to_sql());

    let model = scenario.cost_model();
    let sja = sja_optimal(&model);
    let plus = sja_plus(&model);
    println!(
        "SJA estimated cost {}, SJA+ {} ({:.1}% better)\n",
        sja.cost,
        plus.cost,
        plus.improvement() * 100.0
    );

    // Phase one: identify the matching documents.
    let mut network = scenario.network();
    let outcome = execute_plan(&plus.plan, &scenario.query, &scenario.sources, &mut network)
        .expect("execution succeeds");
    let rt = response_time(&plus.plan, &outcome.ledger).expect("ledger matches plan");
    println!(
        "Phase 1: {} matching documents, total work {}, parallel response time {:.3}",
        outcome.answer.len(),
        outcome.total_cost(),
        rt
    );
    assert_eq!(
        outcome.answer,
        scenario.ground_truth().expect("evaluation succeeds"),
        "plan answer must match direct evaluation"
    );

    // Phase two: fetch the records, "usually a few at a time".
    let first_few = fusion::types::ItemSet::from_items(outcome.answer.iter().take(5).cloned());
    let fetched =
        fetch_records(&first_few, &scenario.sources, &mut network).expect("fetch succeeds");
    println!(
        "Phase 2: fetched {} keyword records for the first {} documents (cost {})",
        fetched.records.len(),
        first_few.len(),
        fetched.cost
    );
    for record in fetched.records.iter().take(10) {
        println!("  {record}");
    }
    if fetched.records.len() > 10 {
        println!("  ... and {} more", fetched.records.len() - 10);
    }
}
