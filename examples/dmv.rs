//! The paper's Figure 1 worked example, end to end — then scaled up to a
//! 20-state population to show the plan classes diverging.
//!
//! ```sh
//! cargo run --example dmv
//! ```

use fusion::core::postopt::sja_plus;
use fusion::core::{filter_plan, sj_optimal, sja_optimal};
use fusion::exec::execute_plan;
use fusion::workload::dmv;

fn main() {
    // ---- Part 1: Figure 1, verbatim -----------------------------------
    let scenario = dmv::figure1_scenario();
    println!("== Figure 1: the DMV example ==\n");
    for (j, rel) in scenario.relations.iter().enumerate() {
        println!("R{} {}:", j + 1, rel.schema());
        for row in rel.rows() {
            println!("  {row}");
        }
    }
    let truth = scenario.ground_truth().expect("evaluation succeeds");
    println!("\nDrivers with both dui and sp violations: {truth}");
    assert_eq!(truth.to_string(), "{J55, T21}");

    // The simple plan P1 sketched in §1: gather dui items everywhere,
    // then check sp everywhere by semijoin.
    let model = scenario.cost_model();
    let sja = sja_optimal(&model);
    println!("\nSJA's plan for the query:\n{}", sja.plan);

    let mut network = scenario.network();
    let outcome = execute_plan(&sja.plan, &scenario.query, &scenario.sources, &mut network)
        .expect("execution succeeds");
    assert_eq!(outcome.answer, truth);
    println!(
        "Executed: answer {}, cost {}",
        outcome.answer,
        outcome.total_cost()
    );

    // ---- Part 2: 20 states, 500k drivers ------------------------------
    // A more selective query: drivers with a 1993 hit-and-run AND any
    // speeding record. The rare first condition makes semijoins pay off,
    // so the plan classes diverge.
    println!("\n== Scaled: 20 states, 40k violation records ==\n");
    let mut big = dmv::scaled_dmv_scenario(20, 500_000, 2_000, 42);
    big.query = fusion::core::query::FusionQuery::new(
        fusion::types::schema::dmv_schema(),
        vec![
            fusion::types::Predicate::And(vec![
                fusion::types::Predicate::eq("V", "hit-and-run"),
                fusion::types::Predicate::eq("D", 1993i64),
            ])
            .into(),
            fusion::types::Predicate::eq("V", "sp").into(),
        ],
    )
    .expect("valid query");
    let model = big.cost_model();
    let plans = [
        ("FILTER", filter_plan(&model)),
        ("SJ", sj_optimal(&model)),
        ("SJA", sja_optimal(&model)),
    ];
    println!("{:<8} {:>14} {:>10}", "plan", "est. cost", "executed");
    for (name, opt) in &plans {
        let mut network = big.network();
        let outcome = execute_plan(&opt.plan, &big.query, &big.sources, &mut network)
            .expect("execution succeeds");
        println!(
            "{:<8} {:>14} {:>10}",
            name,
            opt.cost.to_string(),
            outcome.total_cost().to_string()
        );
    }
    let plus = sja_plus(&model);
    let mut network = big.network();
    let outcome = execute_plan(&plus.plan, &big.query, &big.sources, &mut network)
        .expect("execution succeeds");
    println!(
        "{:<8} {:>14} {:>10}   ({} sources loaded, {} difference steps)",
        "SJA+",
        plus.cost.to_string(),
        outcome.total_cost().to_string(),
        plus.loaded_sources.len(),
        plus.difference_steps
    );
    println!(
        "\nMatching drivers: {} (of 500000 licensed)",
        big.ground_truth().expect("evaluation succeeds").len()
    );
}
