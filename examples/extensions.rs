//! The beyond-the-paper extensions in one tour: Bloom-filter semijoins,
//! the response-time objective, and mid-query re-optimization.
//!
//! ```sh
//! cargo run --release --example extensions
//! ```

use fusion::core::optimizer::{estimate_makespan, sja_response_optimal};
use fusion::core::postopt::{sja_plus_with, PostOptConfig};
use fusion::core::sja_optimal;
use fusion::exec::{execute_adaptive, execute_plan};
use fusion::net::LinkProfile;
use fusion::source::ProcessingProfile;
use fusion::workload::synth::{condition_with_selectivity, synth_query, synth_scenario, SynthSpec};
use fusion::workload::CapabilityMix;

fn main() {
    // ---- 1. Bloom-filter semijoins --------------------------------------
    // Fat semijoin sets over slow links: ship 10 bits per item instead of
    // whole items, re-intersect locally for exactness.
    println!("== Bloom-filter semijoins ==\n");
    let spec = SynthSpec {
        n_sources: 6,
        domain_size: 60_000,
        rows_per_source: 8_000,
        seed: 11_000,
        capability_mix: CapabilityMix::AllFull,
        link: Some(LinkProfile::Intercontinental),
        processing: ProcessingProfile::indexed_db(),
    };
    let scenario = synth_scenario(&spec, &[0.08, 0.3, 0.5]);
    let model = scenario.cost_model();
    let explicit = sja_plus_with(
        &model,
        PostOptConfig {
            use_difference: false,
            use_loading: false,
            use_bloom: false,
            bloom_bits: 10,
        },
    );
    let bloom = sja_plus_with(
        &model,
        PostOptConfig {
            use_difference: false,
            use_loading: false,
            use_bloom: true,
            bloom_bits: 10,
        },
    );
    let run = |plan: &fusion::core::plan::Plan| {
        let mut network = scenario.network();
        execute_plan(plan, &scenario.query, &scenario.sources, &mut network).expect("plan executes")
    };
    let (e_out, b_out) = (run(&explicit.plan), run(&bloom.plan));
    assert_eq!(e_out.answer, b_out.answer, "bloom stays exact");
    println!(
        "explicit semijoins: {}   bloom(10 bits): {}   ({:.1}% saved, identical answers)\n",
        e_out.total_cost(),
        b_out.total_cost(),
        (1.0 - b_out.total_cost().value() / e_out.total_cost().value()) * 100.0
    );

    // ---- 2. Response-time objective --------------------------------------
    // The objectives diverge when a straggler source is slow to produce
    // the first round's result: semijoins at the fast sources serialize
    // behind it, selections overlap with it.
    println!("== Response-time objective (§6 future work) ==\n");
    let mut straggler =
        fusion::core::TableCostModel::uniform(2, 4, 1.0, 200.0, 0.0, 1e9, 5.0, 1000.0);
    straggler.set_sq_cost(fusion::types::CondId(0), fusion::types::SourceId(3), 40.0);
    for j in 0..4 {
        straggler.set_sq_cost(fusion::types::CondId(1), fusion::types::SourceId(j), 20.0);
        straggler.set_sjq_cost(
            fusion::types::CondId(1),
            fusion::types::SourceId(j),
            10.0,
            0.0,
        );
    }
    straggler.set_sjq_cost(
        fusion::types::CondId(1),
        fusion::types::SourceId(3),
        0.5,
        0.0,
    );
    let work_opt = sja_optimal(&straggler);
    let rt_opt = sja_response_optimal(&straggler);
    println!(
        "work-optimal plan:  est work {}  est makespan {:.3}",
        work_opt.cost,
        estimate_makespan(&straggler, &work_opt.spec)
    );
    println!(
        "rt-optimal plan:    est work {}  est makespan {:.3}",
        rt_opt.optimized.cost, rt_opt.est_response_time
    );
    println!("(the RT plan pays extra total work to overlap the straggler)\n");

    // ---- 3. Mid-query re-optimization ------------------------------------
    // Nested conditions break the independence assumption; the adaptive
    // executor re-plans each round from the observed cardinality.
    println!("== Mid-query re-optimization under correlated conditions ==\n");
    let nested = vec![
        condition_with_selectivity(1, 0.30),
        condition_with_selectivity(1, 0.32), // superset of the first!
        condition_with_selectivity(2, 0.90),
    ];
    let spec = SynthSpec {
        n_sources: 6,
        domain_size: 40_000,
        rows_per_source: 3_000,
        seed: 13_999,
        capability_mix: CapabilityMix::AllFull,
        link: Some(LinkProfile::Intercontinental),
        processing: ProcessingProfile::indexed_db(),
    };
    let mut corr = synth_scenario(&spec, &[0.3, 0.32, 0.9]);
    corr.query =
        fusion::core::query::FusionQuery::new(synth_query(&[0.5]).schema().clone(), nested)
            .expect("valid query");
    let model = corr.cost_model();
    let static_plan = sja_optimal(&model);
    let mut network = corr.network();
    let static_out = execute_plan(&static_plan.plan, &corr.query, &corr.sources, &mut network)
        .expect("static executes");
    let mut network = corr.network();
    let adaptive_out = execute_adaptive(&corr.query, &corr.sources, &mut network, &model)
        .expect("adaptive executes");
    assert_eq!(static_out.answer, adaptive_out.answer);
    println!(
        "static SJA: {}   adaptive: {}   ({:.1}% saved)",
        static_out.total_cost(),
        adaptive_out.total_cost(),
        (1.0 - adaptive_out.total_cost().value() / static_out.total_cost().value()) * 100.0
    );
    for round in &adaptive_out.rounds {
        println!(
            "  round {}: predicted |X| ≈ {:.0}, observed {}",
            round.cond, round.predicted_size, round.actual_size
        );
    }
}
