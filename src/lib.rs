//! Fusion query processing over autonomous Internet databases.
//!
//! A faithful, production-quality reproduction of *"Fusion Queries over
//! Internet Databases"* (Yerneni, Papakonstantinou, Abiteboul,
//! Garcia-Molina; EDBT 1998). A **fusion query** searches for entities
//! whose qualifying evidence may be scattered across many autonomous,
//! overlapping sources:
//!
//! ```sql
//! SELECT u1.L FROM U u1, U u2
//! WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'
//! ```
//!
//! This umbrella crate re-exports the workspace and provides the
//! end-to-end conveniences ([`parse_fusion_query`], [`run`]). See the
//! individual crates for the pieces:
//!
//! * [`types`] — values, relations, conditions, item-set algebra;
//! * [`sql`] — the fusion-query SQL dialect parser;
//! * [`stats`] — histograms, selectivity estimation, cost calibration;
//! * [`net`] — the deterministic network cost simulator;
//! * [`source`] — source engines, wrappers, capabilities;
//! * [`core`] — plans, cost models, the FILTER/SJ/SJA/SJA+ optimizers;
//! * [`cache`] — the semantic answer cache: subsumption reuse, epoch
//!   invalidation, cache-aware cost decoration;
//! * [`exec`] — the mediator executor, response-time scheduling, and
//!   two-phase record fetch;
//! * [`check`] — the deterministic schedule model-checker for the
//!   parallel/cached executors;
//! * [`workload`] — deterministic scenarios and synthetic populations.
//!
//! # Quickstart
//!
//! ```
//! use fusion::workload::dmv;
//! use fusion::core::sja_optimal;
//! use fusion::exec::execute_plan;
//!
//! let scenario = dmv::figure1_scenario();
//! let model = scenario.cost_model();
//! let best = sja_optimal(&model);
//! let mut network = scenario.network();
//! let outcome =
//!     execute_plan(&best.plan, &scenario.query, &scenario.sources, &mut network).unwrap();
//! assert_eq!(outcome.answer.to_string(), "{J55, T21}");
//! ```

#![forbid(unsafe_code)]

pub use fusion_cache as cache;
pub use fusion_check as check;
pub use fusion_core as core;
pub use fusion_exec as exec;
pub use fusion_net as net;
pub use fusion_source as source;
pub use fusion_sql as sql;
pub use fusion_stats as stats;
pub use fusion_types as types;
pub use fusion_workload as workload;

use fusion_core::query::FusionQuery;
use fusion_types::error::Result;
use fusion_types::Schema;

/// Parses fusion-dialect SQL into an optimizable [`FusionQuery`] against
/// the given common schema.
///
/// # Errors
/// Fails on syntax errors and on queries that are not fusion-shaped
/// (§2.2): wrong projection, broken merge-equality chain, or conditions
/// spanning several query variables.
///
/// ```
/// use fusion::parse_fusion_query;
/// use fusion::types::schema::dmv_schema;
///
/// let q = parse_fusion_query(
///     "SELECT u1.L FROM U u1, U u2 \
///      WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
///     &dmv_schema(),
/// )
/// .unwrap();
/// assert_eq!(q.m(), 2);
/// ```
pub fn parse_fusion_query(sql_text: &str, schema: &Schema) -> Result<FusionQuery> {
    let parsed = fusion_sql::parse_query(sql_text)?;
    let shape = fusion_sql::into_fusion_shape(&parsed, schema)?;
    FusionQuery::new(
        schema.clone(),
        shape.conditions.into_iter().map(Into::into).collect(),
    )
}

/// One-call pipeline: optimize a scenario's query with SJA+ and execute
/// the resulting plan, returning the answer and executed cost.
///
/// # Errors
/// Propagates optimization and execution failures.
pub fn run(scenario: &workload::Scenario) -> Result<exec::ExecutionOutcome> {
    let model = scenario.cost_model();
    let plus = fusion_core::postopt::sja_plus(&model);
    let mut network = scenario.network();
    fusion_exec::execute_plan(&plus.plan, &scenario.query, &scenario.sources, &mut network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_types::schema::dmv_schema;
    use fusion_types::ItemSet;

    #[test]
    fn parse_and_run_end_to_end() {
        let scenario = workload::dmv::figure1_scenario();
        let q = parse_fusion_query(
            "SELECT u1.L FROM U u1, U u2 \
             WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
            &dmv_schema(),
        )
        .unwrap();
        assert_eq!(q.to_sql(), scenario.query.to_sql());
        let out = run(&scenario).unwrap();
        assert_eq!(out.answer, ItemSet::from_items(["J55", "T21"]));
    }

    #[test]
    fn parse_rejects_non_fusion_sql() {
        assert!(parse_fusion_query("SELECT u1.V FROM U u1", &dmv_schema()).is_err());
        assert!(parse_fusion_query("not sql at all", &dmv_schema()).is_err());
    }
}
